#!/usr/bin/env python3
"""Regenerate every experiment table (E1-E19) into a single report.

Runs the benchmark suite in analysis mode (timings disabled, stdout
captured) and writes the concatenated paper-vs-measured tables to
``experiments_report.txt``.  This is the artifact EXPERIMENTS.md's
numbers were copied from.

Usage:  python scripts/run_all_experiments.py [output_path]
"""

import pathlib
import subprocess
import sys


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    output_path = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else repo_root / "experiments_report.txt"
    )
    completed = subprocess.run(
        [
            sys.executable, "-m", "pytest", "benchmarks/",
            "--benchmark-disable", "-s", "-q",
        ],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    output_path.write_text(completed.stdout)
    tables = completed.stdout.count(" / ")
    print(f"wrote {output_path} ({len(completed.stdout.splitlines())} lines, "
          f"~{tables} table headers); pytest exit code {completed.returncode}")
    return completed.returncode


if __name__ == "__main__":
    raise SystemExit(main())
