#!/usr/bin/env python
"""Run mypy with the repo policy (mypy.ini); skip when unavailable.

The container image this repo is developed in does not ship mypy, so
the wrapper degrades to a no-op there instead of failing every local
gate; CI installs mypy and this same entry point then enforces the
strict packages (repro.pipeline, repro.engine.merge, repro.analysis)
for real.  Exit code is mypy's own when it runs, 0 when skipped.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    if importlib.util.find_spec("mypy") is None:
        print("typecheck: mypy not installed; skipping (CI installs it)")
        return 0
    return subprocess.call(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
        ],
        cwd=REPO_ROOT,
    )


if __name__ == "__main__":
    raise SystemExit(main())
