"""Quick throughput benchmark: per-item vs engine (batch) ingestion.

Reuses the contender list and measurement loops from
``benchmarks/bench_throughput.py`` (single source of truth for the
workloads and the acceptance bars), runs

* the standard Zipf workload through every streaming structure in both
  modes, and
* end-to-end Star Detection (the full Lemma 3.3 degree-guess ladder
  over a 10^6-update bipartite double cover) per-item vs as a single
  engine pass,

then writes a ``BENCH_throughput.json`` artifact (by default into the
repository root) so the performance trajectory can be tracked across
PRs.  Exits non-zero if the batch engine loses its required speedup on
the hash-heavy sketches / Algorithm 2 (5x) or on end-to-end star
detection (3x).

Run:  PYTHONPATH=src python scripts/bench_quick.py [--records N]
          [--star-updates N | --skip-star] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_throughput import (  # noqa: E402 (needs the path tweak above)
    ALPHA,
    CHUNK,
    D,
    N,
    REQUIRED_ON,
    REQUIRED_SPEEDUP,
    REQUIRED_STAR_SPEEDUP,
    STAR_ALPHA,
    STAR_DEGREE,
    STAR_EPS,
    STAR_VERTICES,
    make_star_cover,
    make_stream,
    measure_rates,
    measure_star_rates,
)

from repro.streams.columnar import ColumnarEdgeStream  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=30000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--star-updates", type=int, default=1_000_000)
    parser.add_argument("--skip-star", action="store_true",
                        help="skip the end-to-end star detection pass")
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_throughput.json"
    )
    args = parser.parse_args()

    stream = make_stream(args.records)
    columnar = ColumnarEdgeStream.from_edge_stream(stream)
    item_rates, batch_rates = measure_rates(stream, columnar, args.repeats)
    results = {
        name: {
            "item_updates_per_s": item_rates[name],
            "batch_updates_per_s": batch_rates[name],
            "batch_speedup": batch_rates[name] / item_rates[name],
        }
        for name in item_rates
    }
    artifact = {
        "benchmark": "throughput_zipf",
        "config": {
            "n": N,
            "records": args.records,
            "d": D,
            "alpha": ALPHA,
            "chunk_size": CHUNK,
            "repeats": args.repeats,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }

    if not args.skip_star:
        cover = make_star_cover(n_updates=args.star_updates)
        star_item, star_batch = measure_star_rates(cover)
        artifact["star_detection"] = {
            "config": {
                "n_vertices": STAR_VERTICES,
                "star_degree": STAR_DEGREE,
                "alpha": STAR_ALPHA,
                "eps": STAR_EPS,
                "updates": len(cover),
                "guesses": "geometric ladder over [1, n]",
            },
            "item_updates_per_s": star_item,
            "batch_updates_per_s": star_batch,
            "batch_speedup": star_batch / star_item,
        }
        results["StarDetection (end-to-end)"] = {
            "item_updates_per_s": star_item,
            "batch_updates_per_s": star_batch,
            "batch_speedup": star_batch / star_item,
        }

    args.out.write_text(json.dumps(artifact, indent=2) + "\n")

    header = f"{'structure':32s} {'item k-upd/s':>13s} {'batch k-upd/s':>14s} {'speedup':>8s}"
    print(header)
    print("-" * len(header))
    for name, row in results.items():
        print(
            f"{name:32s} {row['item_updates_per_s'] / 1e3:13.1f} "
            f"{row['batch_updates_per_s'] / 1e3:14.1f} "
            f"{row['batch_speedup']:7.1f}x"
        )
    print(f"\nartifact written to {args.out}")

    failed = [
        name
        for name in REQUIRED_ON
        if results[name]["batch_speedup"] < REQUIRED_SPEEDUP
    ]
    if not args.skip_star:
        star_speedup = results["StarDetection (end-to-end)"]["batch_speedup"]
        if star_speedup < REQUIRED_STAR_SPEEDUP:
            failed.append(
                f"StarDetection (end-to-end, {REQUIRED_STAR_SPEEDUP}x bar)"
            )
    if failed:
        print(
            "FAIL: batch speedup below the required bar for: "
            + ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
