"""Quick throughput benchmark: per-item vs engine (batch) vs sharded.

Reuses the contender list and measurement loops from
``benchmarks/bench_throughput.py`` (single source of truth for the
workloads and the acceptance bars), runs

* the standard Zipf workload through every streaming structure in both
  modes,
* end-to-end Star Detection (the full Lemma 3.3 degree-guess ladder
  over a 10^6-update bipartite double cover) per-item vs as a single
  engine pass, and
* Algorithm 3's exact-mode ℓ₀ sampler bank (the stacked s-sparse
  recovery kernels) over a dedup'd random edge stream, per-item (short
  prefix) vs batch, and
* the multi-core pass: Algorithm 2 over a 10^6-update Zipf stream
  persisted as a v2 file and memory-mapped, through a ShardedRunner at
  1, 2 and 4 workers, and
* the windowed pass: Algorithm 2 under the engine's window policies
  (tumbling, and the smooth-histogram sliding window) over the same
  Zipf workload, and
* the spec-driven pass: a declarative JSON job spec executed through
  ``repro.pipeline.Pipeline.from_dict`` (generator source resolved by
  registry, sliding window, fanout backend), recording that the
  pipeline front door sustains engine rates,

then writes a ``BENCH_throughput.json`` artifact (by default into the
repository root) so the performance trajectory can be tracked across
PRs.  Every entry carries host metadata (python, machine, effective
core count) and the sharded entries carry their worker counts plus a
``gated`` flag — a worker count the host cannot physically scale to
(``effective_cores < workers``, or no fork) is recorded but excluded
from the scaling gate and the trend report.

The artifact is an *appendable run history*: the top level mirrors the
latest run (so older readers keep working) and a ``history`` array
accumulates one entry per run — each stamped with host + git metadata
— via the same crash-safe tmp+replace writer.  ``repro bench report``
prints the per-structure trend across those entries.

Exits non-zero if the batch engine loses its required speedup on the
hash-heavy sketches / Algorithm 2 (5x), on end-to-end star detection
(3x), or — on hosts with at least 4 effective cores — if the 4-worker
sharded pass drops below 1.5x single-core.  Independently of those
*relative* gates, every structure must clear its absolute
``FLOOR_UPDATES_PER_S`` batch-rate floor — enforced even under
``--smoke`` (the ci.yml gate), disable with ``--no-floors``.

Run:  PYTHONPATH=src python scripts/bench_quick.py [--records N]
          [--only STRUCTURE ...]
          [--star-updates N | --skip-star] [--skip-exact-bank]
          [--sharded-updates N | --skip-sharded]
          [--skip-windowed] [--smoke] [--profile] [--out PATH]

``--smoke`` shrinks every workload and disables the speedup gates — the
CI-sized sanity pass that still exercises all three pipelines.
``--only <structure>`` (repeatable) runs only the passes whose name
contains the given case-insensitive substring — the iteration loop when
tuning one structure: ``--only "exact bank"`` re-measures just the ℓ₀
bank, ``--only sliding --only probes`` just the windowed + probe
passes.  Floors and speedup gates apply only to what actually ran.
``--profile`` runs the single-core measurement passes (Zipf contenders,
star detection, exact bank) under cProfile, prints the top 20
functions by cumulative time, and writes the full report next to the
artifact (``--profile-out``; ci.yml uploads it from the smoke job) —
the first stop when a floor trips.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_throughput import (  # noqa: E402 (needs the path tweak above)
    ALPHA,
    CHUNK,
    D,
    FLOOR_PROBES_PER_S,
    FLOOR_UPDATES_PER_S,
    N,
    REQUIRED_ON,
    EXACT_BANK_COUNT,
    EXACT_BANK_DELTA,
    EXACT_BANK_N,
    make_exact_bank_stream,
    measure_exact_bank_rates,
    REQUIRED_EXACT_BANK_SPEEDUP,
    REQUIRED_SHARDED_SPEEDUP,
    REQUIRED_SPEEDUP,
    REQUIRED_STAR_SPEEDUP,
    SHARDED_GATE_MIN_CORES,
    SHARDED_WORKERS,
    sharded_gate_applies,
    STAR_ALPHA,
    STAR_DEGREE,
    STAR_EPS,
    STAR_VERTICES,
    effective_cores,
    make_sharded_file,
    make_star_cover,
    make_stream,
    measure_probe_rates,
    measure_rates,
    measure_sharded_rates,
    measure_star_rates,
    measure_window_rates,
    WINDOW_FLOOR_UPDATES_PER_S,
    WINDOW_RATIO,
    WINDOW_SPAN,
)

from repro.pipeline import Pipeline  # noqa: E402
from repro.streams.columnar import ColumnarEdgeStream  # noqa: E402


def git_metadata(repo_root: Path) -> dict:
    """Commit + branch of the benched tree (best-effort; CI detached
    heads and non-git checkouts degrade to nulls, never to a failure)."""
    import subprocess

    def capture(*argv):
        try:
            return subprocess.run(
                ["git", "-C", str(repo_root), *argv],
                capture_output=True, text=True, timeout=10, check=True,
            ).stdout.strip() or None
        except Exception:
            return None

    return {
        "commit": capture("rev-parse", "--short", "HEAD"),
        "branch": capture("rev-parse", "--abbrev-ref", "HEAD"),
        "dirty": bool(capture("status", "--porcelain")),
    }


def append_history(out: Path, entry: dict, keep: int = 50) -> list:
    """The run history with ``entry`` appended (latest last).

    Reads the previous artifact when present; a pre-history artifact
    (one bare run dict) is adopted as the first history element, so
    converting the format loses nothing.  ``keep`` bounds the file's
    growth.
    """
    history = []
    if out.exists():
        try:
            previous = json.loads(out.read_text())
        except (OSError, ValueError):
            previous = None
        if isinstance(previous, dict):
            if isinstance(previous.get("history"), list):
                history = previous["history"]
            elif "results" in previous:
                history = [previous]
    history.append(entry)
    return history[-keep:]


def pipeline_spec(records: int, span: int) -> dict:
    """The JSON job spec of the declarative-pipeline pass: the zipf
    workload resolved through the generator registry, Algorithm 2 under
    the sliding window, one fanout pass.  Exactly what a user would put
    in a ``repro run --spec job.json`` file.

    The registry workload derives ``n_records = min(m, 8 * d)`` (the
    CLI's sizing rule), so the generator ``d`` is set to ``records/8``
    to make the stream exactly ``records`` updates long — comparable
    with the other passes.  The processor keeps the benchmark's real
    threshold ``D``.  No processor seed: windowed specs seed buckets
    from ``window.seed``.
    """
    return {
        "source": {
            "kind": "generator",
            "generator": "zipf",
            "params": {"n": N, "m": records,
                       "d": max(D, -(-records // 8)), "alpha": ALPHA,
                       "seed": 61},
            "chunk_size": CHUNK,
        },
        "processors": [
            {
                "name": "insertion-only",
                "label": "alg2",
                "params": {"n": N, "d": D, "alpha": ALPHA},
            }
        ],
        "window": {
            "policy": "sliding",
            "window": span,
            "bucket_ratio": WINDOW_RATIO,
            "seed": 3,
        },
    }


def measure_pipeline(records: int, span: int) -> dict:
    """Run the spec-driven pass and summarise it for the artifact."""
    spec = pipeline_spec(records, span)
    result = Pipeline.from_dict(spec).run()
    answer = result["alg2"]
    assert answer is not None, "spec-driven sliding pass produced no answer"
    return {
        "spec": spec,
        "updates_per_s": result.report.updates_per_s,
        "updates": result.report.n_updates,
        "answer": result.to_dict()["answers"]["alg2"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--records", type=int, default=30000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--only", action="append", metavar="STRUCTURE",
        help="run only passes whose name contains this case-insensitive "
             "substring (repeatable).  Matches the Zipf contender names "
             "(e.g. 'CountMin', 'Algorithm 2') and the pass names "
             "'star', 'exact bank', 'windowed', 'probes', 'pipeline', "
             "'sharded'.  Floors/gates apply only to what ran.")
    parser.add_argument("--star-updates", type=int, default=1_000_000)
    parser.add_argument("--skip-star", action="store_true",
                        help="skip the end-to-end star detection pass")
    parser.add_argument("--skip-exact-bank", action="store_true",
                        help="skip the exact-mode ℓ₀ sampler-bank pass")
    parser.add_argument("--profile", action="store_true",
                        help="run the single-core measurement passes "
                             "under cProfile and print the top 20 "
                             "functions by cumulative time")
    parser.add_argument(
        "--profile-out", type=Path, default=None,
        help="where to write the full cProfile report when --profile "
             "is on (default: BENCH_profile.txt next to --out; ci.yml "
             "uploads it as an artifact from the smoke job)")
    parser.add_argument("--sharded-updates", type=int, default=1_000_000)
    parser.add_argument("--skip-sharded", action="store_true",
                        help="skip the multi-core sharded pass")
    parser.add_argument("--skip-windowed", action="store_true",
                        help="skip the window-policy pass")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: tiny workloads, no speedup gates")
    parser.add_argument("--no-floors", action="store_true",
                        help="skip the absolute per-structure "
                             "updates_per_s floors (enforced even in "
                             "--smoke otherwise)")
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_throughput.json"
    )
    args = parser.parse_args()

    if args.smoke:
        args.records = min(args.records, 4000)
        args.star_updates = min(args.star_updates, 50_000)
        args.sharded_updates = min(args.sharded_updates, 50_000)
        args.repeats = 1

    def wants(*names: str) -> bool:
        """True when the pass survives the ``--only`` filter."""
        if not args.only:
            return True
        return any(
            pattern.lower() in name.lower()
            for pattern in args.only
            for name in names
        )

    cores = effective_cores()
    host = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "effective_cores": cores,
    }

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    def profiled(fn, *fn_args, **fn_kwargs):
        """One measurement pass, under the profiler when asked.

        Only the single-core laggard passes run profiled (the sharded
        pass forks workers the parent profiler cannot see, and the
        windowed/pipeline passes are engine-dominated) — exactly the
        passes a tripped floor points at.
        """
        if profiler is None:
            return fn(*fn_args, **fn_kwargs)
        profiler.enable()
        try:
            return fn(*fn_args, **fn_kwargs)
        finally:
            profiler.disable()

    stream = make_stream(args.records)
    columnar = ColumnarEdgeStream.from_edge_stream(stream)
    item_rates, batch_rates = profiled(
        measure_rates, stream, columnar, args.repeats, only=args.only
    )
    results = {
        name: {
            "item_updates_per_s": item_rates[name],
            "batch_updates_per_s": batch_rates[name],
            "batch_speedup": batch_rates[name] / item_rates[name],
        }
        for name in item_rates
    }
    import time as time_module

    artifact = {
        "benchmark": "throughput_zipf",
        "config": {
            "n": N,
            "records": args.records,
            "d": D,
            "alpha": ALPHA,
            "chunk_size": CHUNK,
            "repeats": args.repeats,
            "smoke": args.smoke,
        },
        "host": host,
        "git": git_metadata(REPO_ROOT),
        "timestamp": time_module.strftime("%Y-%m-%dT%H:%M:%S%z"),
        # kept for backwards compatibility with older artifact readers
        "python": host["python"],
        "machine": host["machine"],
        "results": results,
    }

    run_star = not args.skip_star and wants(
        "star", "StarDetection (end-to-end)"
    )
    if run_star:
        cover = make_star_cover(n_updates=args.star_updates)
        star_item, star_batch = profiled(measure_star_rates, cover)
        star_row = {
            "item_updates_per_s": star_item,
            "batch_updates_per_s": star_batch,
            "batch_speedup": star_batch / star_item,
        }
        artifact["star_detection"] = {
            "config": {
                "n_vertices": STAR_VERTICES,
                "star_degree": STAR_DEGREE,
                "alpha": STAR_ALPHA,
                "eps": STAR_EPS,
                "updates": len(cover),
                "guesses": "geometric ladder over [1, n]",
            },
            **star_row,
        }
        results["StarDetection (end-to-end)"] = dict(star_row)

    run_exact_bank = not args.skip_exact_bank and wants(
        "exact bank", "exact-bank", "Algorithm 3 (FEwW, exact bank)"
    )
    if run_exact_bank:
        bank_columnar = make_exact_bank_stream(args.records)
        bank_item, bank_batch = profiled(
            measure_exact_bank_rates, bank_columnar
        )
        bank_row = {
            "item_updates_per_s": bank_item,
            "batch_updates_per_s": bank_batch,
            "batch_speedup": bank_batch / bank_item,
        }
        artifact["exact_bank"] = {
            "config": {
                "n": EXACT_BANK_N,
                "m": EXACT_BANK_N,
                "count": EXACT_BANK_COUNT,
                "delta": EXACT_BANK_DELTA,
                "updates": len(bank_columnar),
                "mode": "exact (stacked s-sparse recovery kernels)",
            },
            **bank_row,
        }
        results["Algorithm 3 (FEwW, exact bank)"] = dict(bank_row)

    window_rates = None
    if not args.skip_windowed and wants("windowed", "tumbling", "sliding"):
        # Smoke runs shrink the stream, so shrink the window with it to
        # keep several buckets in play.
        span = min(WINDOW_SPAN, max(64, args.records // 8))
        window_rates = measure_window_rates(columnar, span=span)
        artifact["windowed"] = {
            "config": {
                "n": N,
                "records": args.records,
                "d": D,
                "alpha": ALPHA,
                "window": span,
                "bucket_ratio": WINDOW_RATIO,
                "chunk_size": CHUNK,
            },
            "host": host,
            "entries": [
                {"policy": name, "updates_per_s": rate}
                for name, rate in window_rates.items()
            ],
        }

    # Probe-latency pass: cached sliding query() calls per second at
    # chunk-quantized probe points (the Pipeline probe_every hook).
    probe_rate = None
    if not args.skip_windowed and wants("probes", "probe latency"):
        probe_span = min(WINDOW_SPAN, max(64, args.records // 8))
        probe_every = max(256, min(CHUNK, args.records // 8))
        probe_rate = measure_probe_rates(
            columnar, span=probe_span, probe_every=probe_every
        )
        artifact["probes"] = {
            "config": {
                "n": N,
                "records": args.records,
                "window": probe_span,
                "bucket_ratio": WINDOW_RATIO,
                "probe_every": probe_every,
            },
            "host": host,
            "probes_per_s": probe_rate,
        }

    # Spec-driven pass: the same workload family through a JSON job
    # spec (Pipeline.from_dict), so the artifact records that the
    # declarative front door sustains engine rates.
    pipeline_row = None
    if wants("pipeline", "spec"):
        pipeline_span = min(WINDOW_SPAN, max(64, args.records // 8))
        pipeline_row = measure_pipeline(args.records, pipeline_span)
        artifact["pipeline"] = {"host": host, **pipeline_row}

    sharded_rates = None
    if not args.skip_sharded and wants("sharded"):
        with tempfile.TemporaryDirectory() as tmp:
            path = make_sharded_file(
                Path(tmp) / "sharded.npz", n_updates=args.sharded_updates
            )
            sharded_rates = measure_sharded_rates(path, SHARDED_WORKERS)
        def sharded_entry(workers: int) -> dict:
            """One worker count's record, honest about hosts that can't
            scale to it: a ``speedup_vs_single`` measured with more
            workers than effective cores is timesharing overhead, not a
            scaling result, so such entries are flagged ``gated: false``
            (excluded from the scaling gate and the trend report)."""
            entry = {
                "workers": workers,
                "updates_per_s": sharded_rates[workers],
                "speedup_vs_single": sharded_rates[workers] / sharded_rates[1],
            }
            if cores < workers:
                entry["gated"] = False
                entry["gate_skip_reason"] = (
                    f"host has {cores} effective core(s) < {workers} "
                    f"workers; timesharing ratio, not a scaling result"
                )
            elif not sharded_gate_applies():
                entry["gated"] = False
                entry["gate_skip_reason"] = (
                    f"scaling gate needs >= {SHARDED_GATE_MIN_CORES} "
                    f"effective cores and a fork-capable platform"
                )
            else:
                entry["gated"] = True
            return entry

        artifact["sharded"] = {
            "config": {
                "n": N,
                "d": D,
                "alpha": ALPHA,
                "updates": args.sharded_updates,
                "chunk_size": CHUNK,
                "source": "v2 file, mmap, workers self-read",
            },
            "host": host,
            "entries": [
                sharded_entry(workers) for workers in sorted(sharded_rates)
            ],
        }

    # Appendable run history: the top level mirrors this run (older
    # readers keep finding `results` where they always did) and the
    # `history` array accumulates every run, this one last.  Atomic
    # publish: a run interrupted mid-write must never leave a torn
    # artifact where a previous good one stood.
    out = Path(args.out)
    published = dict(artifact)
    published["history"] = append_history(out, artifact)
    scratch = out.with_name(out.name + ".tmp")
    scratch.write_text(json.dumps(published, indent=2) + "\n")
    os.replace(scratch, out)

    header = f"{'structure':32s} {'item k-upd/s':>13s} {'batch k-upd/s':>14s} {'speedup':>8s}"
    print(header)
    print("-" * len(header))
    for name, row in results.items():
        print(
            f"{name:32s} {row['item_updates_per_s'] / 1e3:13.1f} "
            f"{row['batch_updates_per_s'] / 1e3:14.1f} "
            f"{row['batch_speedup']:7.1f}x"
        )
    if window_rates is not None:
        print(f"\nwindowed Algorithm 2 ({args.records} updates, window "
              f"{artifact['windowed']['config']['window']}):")
        for name, rate in window_rates.items():
            print(f"  {name:10s} {rate / 1e3:10.1f} k-upd/s")
    if probe_rate is not None:
        print(f"\nprobe latency (cached sliding query() at "
              f"{artifact['probes']['config']['probe_every']}-update "
              f"probe points): {probe_rate:10.1f} probes/s")
    if pipeline_row is not None:
        print(f"\nspec-driven pipeline (sliding window over "
              f"{pipeline_row['updates']} zipf updates): "
              f"{pipeline_row['updates_per_s'] / 1e3:10.1f} k-upd/s")
    if sharded_rates is not None:
        print(f"\nsharded Algorithm 2 ({args.sharded_updates} updates, "
              f"mmap v2 file, {cores} effective core(s)):")
        for workers in sorted(sharded_rates):
            print(f"  {workers} worker(s): "
                  f"{sharded_rates[workers] / 1e3:10.1f} k-upd/s "
                  f"({sharded_rates[workers] / sharded_rates[1]:.2f}x vs 1)")
    print(f"\nartifact written to {args.out}")

    if profiler is not None:
        import pstats

        print("\n--profile: top 20 by cumulative time "
              "(zipf contenders + star + exact-bank passes)")
        pstats.Stats(profiler, stream=sys.stdout) \
            .sort_stats("cumulative").print_stats(20)
        # Full report to disk so CI can keep it as an artifact (the
        # smoke job uploads it) — the terminal shows the top 20, the
        # file keeps everything a regression hunt needs.
        profile_out = args.profile_out or out.with_name("BENCH_profile.txt")
        with open(profile_out, "w") as handle:
            pstats.Stats(profiler, stream=handle) \
                .sort_stats("cumulative").print_stats()
        print(f"full profile written to {profile_out}")

    # Absolute floors apply in every mode, smoke included — ci.yml's
    # smoke step is what gates them on every push.
    if not args.no_floors:
        below = [
            f"{name} ({results[name]['batch_updates_per_s'] / 1e3:.0f} "
            f"< {floor / 1e3:.0f} k-upd/s)"
            for name, floor in FLOOR_UPDATES_PER_S.items()
            if name in results
            and results[name]["batch_updates_per_s"] < floor
        ]
        if window_rates is not None:
            below.extend(
                f"windowed/{policy} ({window_rates[policy] / 1e3:.0f} "
                f"< {floor / 1e3:.0f} k-upd/s)"
                for policy, floor in WINDOW_FLOOR_UPDATES_PER_S.items()
                if policy in window_rates and window_rates[policy] < floor
            )
        if probe_rate is not None and probe_rate < FLOOR_PROBES_PER_S:
            below.append(
                f"probe latency ({probe_rate:.0f} < "
                f"{FLOOR_PROBES_PER_S} probes/s)"
            )
        if below:
            print(
                "FAIL: batch throughput below the absolute floor for: "
                + ", ".join(below),
                file=sys.stderr,
            )
            return 1

    if args.smoke:
        print("smoke mode: relative speedup gates skipped "
              "(absolute floors enforced)")
        return 0

    failed = [
        name
        for name in REQUIRED_ON
        if name in results
        and results[name]["batch_speedup"] < REQUIRED_SPEEDUP
    ]
    if run_star:
        star_speedup = results["StarDetection (end-to-end)"]["batch_speedup"]
        if star_speedup < REQUIRED_STAR_SPEEDUP:
            failed.append(
                f"StarDetection (end-to-end, {REQUIRED_STAR_SPEEDUP}x bar)"
            )
    if run_exact_bank:
        bank_speedup = results["Algorithm 3 (FEwW, exact bank)"][
            "batch_speedup"
        ]
        if bank_speedup < REQUIRED_EXACT_BANK_SPEEDUP:
            failed.append(
                f"exact ℓ₀ bank ({REQUIRED_EXACT_BANK_SPEEDUP}x bar)"
            )
    if sharded_rates is not None:
        best = max(sharded_rates)
        sharded_speedup = sharded_rates[best] / sharded_rates[1]
        if sharded_gate_applies():
            if sharded_speedup < REQUIRED_SHARDED_SPEEDUP:
                failed.append(
                    f"ShardedRunner ({best} workers, "
                    f"{REQUIRED_SHARDED_SPEEDUP}x bar)"
                )
        else:
            print(
                f"sharded gate skipped: needs >= {SHARDED_GATE_MIN_CORES} "
                f"effective cores (host has {cores}) and a fork-capable "
                f"platform (rates recorded regardless)"
            )
    if failed:
        print(
            "FAIL: speedup below the required bar for: " + ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
