"""E7 — Theorem 5.4 (correctness): Algorithm 3 on insertion-deletion
streams.

Workloads cover both analysis regimes: deletion churn leaving a single
star (sparse — edge sampling must fire, Lemma 5.3) and dense graphs
with many heavy vertices (vertex sampling must fire, Lemma 5.2), plus
the alpha > sqrt(n) regime.  Every output is verified against the final
graph (witnesses must survive deletions).
"""

import math

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.neighbourhood import verify_neighbourhood
from repro.streams.generators import (
    GeneratorConfig,
    deletion_churn_stream,
    random_bipartite_graph,
)

from _tables import fmt, render_table

TRIALS = 25
SCALE = 0.25


def churn_case(n, m, d, churn, seed):
    stream = deletion_churn_stream(
        GeneratorConfig(n=n, m=m, seed=seed), star_degree=d, churn_edges=churn
    )
    return stream, d


def dense_case(n, m, seed):
    stream = random_bipartite_graph(
        GeneratorConfig(n=n, m=m, seed=seed), n_edges=n * (m // 3)
    )
    return stream, min(stream.final_degrees().values())


def test_e7_success_across_regimes(benchmark):
    cases = [
        ("churn sparse", *churn_case(32, 64, 16, 300, seed=1), 2.0),
        ("churn sparse", *churn_case(48, 96, 24, 500, seed=2), 3.0),
        ("dense", *dense_case(24, 48, seed=3), 2.0),
        ("alpha > sqrt(n)", *churn_case(16, 64, 32, 200, seed=4), 8.0),
    ]
    rows = []
    for name, stream, d, alpha in cases:
        failures = 0
        for seed in range(TRIALS):
            algorithm = InsertionDeletionFEwW(
                stream.n, stream.m, d, alpha, seed=seed, scale=SCALE
            )
            algorithm.process(stream)
            if not algorithm.successful:
                failures += 1
                continue
            verify_neighbourhood(algorithm.result(), stream, d, alpha)
        regime = "a<=sqrt(n)" if alpha <= math.sqrt(stream.n) else "a>sqrt(n)"
        rows.append(
            (name, stream.n, d, alpha, regime, fmt(1 - failures / TRIALS))
        )
    print(
        render_table(
            f"E7 / Theorem 5.4 — Algorithm 3 success on turnstile streams "
            f"({TRIALS} trials, scale={SCALE})",
            ("workload", "n", "d", "alpha", "regime", "measured success"),
            rows,
        )
    )
    for row in rows:
        assert float(row[5]) >= 0.9

    stream, d = churn_case(32, 64, 16, 300, seed=1)

    def run_once():
        InsertionDeletionFEwW(32, 64, d, 2.0, seed=0, scale=SCALE).process(stream)

    benchmark(run_once)
