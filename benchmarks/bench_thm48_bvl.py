"""E6 — Theorems 4.7/4.8 and Figures 1-2: Bit-Vector-Learning.

Three demonstrations:

1. the Figure-1 instance end-to-end (the FEwW protocol recovers >= 1.01k
   bits of some Z_I, all correct);
2. the trivial zero-communication protocol recovers exactly k bits —
   the gap the lower bound formalises;
3. over random instances, protocol messages (algorithm memory) are
   compared against the ``Omega(k n^{1/(p-1)} / p)`` bound.
"""

import math
import random

from repro.comm.bit_vector_learning import (
    figure1_instance,
    random_instance,
    solve_bvl_via_feww,
    trivial_bvl_protocol,
)

from _tables import fmt, render_table

TRIALS = 20


def test_e6_figure1_instance(benchmark):
    instance = figure1_instance()
    result = solve_bvl_via_feww(instance, seed=3)
    trivial_index, trivial_bits = trivial_bvl_protocol(instance)
    print(
        render_table(
            "E6a / Figure 1 — Bit-Vector-Learning(3, 4, 5) example instance",
            ("protocol", "index", "bits learned", "needed", "correct"),
            [
                ("FEwW reduction", result.index, result.n_bits,
                 math.ceil(1.01 * 5), result.correct),
                ("trivial (0 comm.)", trivial_index, len(trivial_bits),
                 math.ceil(1.01 * 5), True),
            ],
        )
    )
    assert result.correct
    assert result.n_bits >= math.ceil(1.01 * instance.k)
    assert len(trivial_bits) == instance.k  # strictly below the target

    benchmark(lambda: solve_bvl_via_feww(figure1_instance(), seed=3))


def test_e6_random_instances_sweep(benchmark):
    rows = []
    for p, n, k in [(2, 8, 8), (3, 16, 8), (3, 64, 8), (4, 27, 6)]:
        successes, bits, message = 0, 0, 0
        for seed in range(TRIALS):
            instance = random_instance(p, n, k, random.Random(seed))
            result = solve_bvl_via_feww(instance, seed=seed + 500)
            ok = result.correct and result.n_bits >= 1.01 * k
            successes += ok
            bits += result.n_bits
            message = max(message, result.log.max_message_words())
        lower = (0.005 * k - 1) * n ** (1.0 / (p - 1)) / (p - 1)
        rows.append(
            (
                p, n, k,
                fmt(successes / TRIALS),
                fmt(bits / TRIALS, 1),
                math.ceil(1.01 * k),
                message,
                fmt(max(lower, 0), 2),
            )
        )
    print(
        render_table(
            f"E6b / Theorem 4.8 — BVL via FEwW over random instances ({TRIALS} trials)",
            ("p", "n", "k", "success", "avg bits", "needed", "msg (words)",
             "Thm4.7 bound"),
            rows,
        )
    )
    for row in rows:
        assert float(row[3]) >= 0.9

    instance = random_instance(3, 16, 8, random.Random(0))
    benchmark(lambda: solve_bvl_via_feww(instance, seed=1))
