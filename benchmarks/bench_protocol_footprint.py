"""E18 — communication footprint of streaming algorithms.

Section 4's lower bounds work by viewing a streaming algorithm as a
one-way protocol whose messages are memory snapshots.  This bench runs
that view directly with the generic driver
(:mod:`repro.comm.simulate`): a planted-star stream is split among p
parties and each algorithm's maximum handoff size is measured, next to
the Theorem 4.1 floor and the trivial witness floor.

Shape checks: every correct FEwW algorithm's footprint sits above both
floors; Algorithm 2's footprint is far below full storage; and higher
alpha buys a smaller footprint.
"""

from repro.baselines import FullStorage
from repro.comm.simulate import run_streaming_protocol, split_among_parties
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.theory.bounds import (
    set_disjointness_lower_bound_words,
    trivial_witness_lower_bound_words,
)

from _tables import fmt, render_table

N, M, D = 512, 2048, 256
PARTIES = 4


def test_e18_protocol_footprint(benchmark):
    config = GeneratorConfig(n=N, m=M, seed=71)
    stream = planted_star_graph(config, star_degree=D, background_degree=6)
    shares = split_among_parties(stream, PARTIES)

    contenders = [
        ("FullStorage", FullStorage(N, M)),
        ("Algorithm 2, alpha=1", InsertionOnlyFEwW(N, D, 1, seed=1)),
        ("Algorithm 2, alpha=2", InsertionOnlyFEwW(N, D, 2, seed=2)),
        ("Algorithm 2, alpha=4", InsertionOnlyFEwW(N, D, 4, seed=3)),
    ]
    rows, footprints = [], {}
    for name, algorithm in contenders:
        _, log = run_streaming_protocol(algorithm, shares)
        alpha = getattr(algorithm, "alpha", 1)
        footprints[name] = log.max_message_words()
        rows.append(
            (
                name,
                PARTIES,
                log.max_message_words(),
                fmt(set_disjointness_lower_bound_words(N, max(alpha, 1)), 1),
                fmt(trivial_witness_lower_bound_words(D, max(alpha, 1)), 1),
            )
        )
    print(
        render_table(
            f"E18 / §4 view — max memory handoff across {PARTIES} parties "
            f"(planted star, n={N}, d={D})",
            ("algorithm", "parties", "max message (words)",
             "Omega(n/a^2) floor", "Omega(d/a) floor"),
            rows,
        )
    )
    # alpha=1 legitimately exceeds full storage (its bound is O~(n d));
    # the win over storing everything starts at alpha >= 2.
    for name in ("Algorithm 2, alpha=2", "Algorithm 2, alpha=4"):
        assert footprints[name] < footprints["FullStorage"]
    assert (
        footprints["Algorithm 2, alpha=4"]
        < footprints["Algorithm 2, alpha=2"]
        < footprints["Algorithm 2, alpha=1"]
    )
    # every footprint respects the floors for its own alpha
    for (name, _), row in zip(contenders, rows):
        assert row[2] >= float(row[3]) and row[2] >= float(row[4])

    def run_once():
        run_streaming_protocol(InsertionOnlyFEwW(N, D, 2, seed=2), shares)

    benchmark(run_once)
