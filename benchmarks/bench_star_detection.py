"""E4 — Lemma 3.3 / Corollary 3.4: Star Detection via FEwW.

Power-law-ish social graphs with a planted influencer; the wrapper runs
FEwW for every geometric degree guess.  Shape checks: the reported star
centre is the true maximum-degree vertex, the neighbourhood size meets
the ``Delta / ((1+eps) alpha)`` guarantee, and the semi-streaming
configuration (``alpha = log n``) stays within its budget too.
"""

import math

from repro.core.star_detection import StarDetection
from repro.streams.adapters import bipartite_double_cover
from repro.streams.generators import social_network_stream

from _tables import fmt, render_table


def test_e4_star_detection_quality(benchmark):
    rows = []
    for n_users, followers, alpha in [
        (128, 40, 2),
        (256, 64, 2),
        (256, 64, 4),
        (128, 40, round(math.log2(128))),  # Corollary 3.4 parameters
    ]:
        edges, _ = social_network_stream(
            n_users=n_users,
            n_followers=followers,
            n_background=2 * n_users,
            seed=n_users + alpha,
        )
        stream = bipartite_double_cover(edges, n_users)
        delta = stream.max_degree()
        detector = StarDetection(n_users, alpha=alpha, eps=0.5, seed=alpha)
        detector.process(stream)
        result = detector.result()
        guarantee = delta / detector.approximation_ratio()
        rows.append(
            (
                n_users,
                alpha,
                delta,
                result.vertex,
                result.size,
                fmt(guarantee, 1),
                "yes" if result.size >= guarantee else "NO",
            )
        )
    print(
        render_table(
            "E4 / Lemma 3.3 — Star Detection ((1+eps)alpha-approx, eps=0.5)",
            ("n", "alpha", "Delta", "centre", "|S|", "Delta/((1+eps)a)", "meets"),
            rows,
        )
    )
    for row in rows:
        assert row[3] == 0  # the planted influencer
        assert row[6] == "yes"

    edges, n_users = social_network_stream(
        n_users=128, n_followers=40, n_background=256, seed=5
    )

    def run_once():
        StarDetection(n_users, alpha=2, eps=0.5, seed=1).process_undirected(edges)

    benchmark(run_once)


def test_e4b_turnstile_star_detection(benchmark):
    """Corollary 5.5's model: Star Detection over insertion-deletion
    streams (friendships form and dissolve).  The planted influencer
    must be recovered from the surviving graph."""
    rows = []
    for n_users, followers in ((32, 12), (48, 16)):
        edges, _ = social_network_stream(
            n_users=n_users, n_followers=followers,
            n_background=n_users, seed=n_users,
        )
        background = [(u, v) for u, v in edges if 0 not in (u, v)]
        all_edges = edges + background
        signs = [1] * len(edges) + [-1] * len(background)
        detector = StarDetection(
            n_users, alpha=2, eps=1.0, model="insertion-deletion",
            seed=7, scale=0.15,
        )
        detector.process_undirected(all_edges, signs)
        result = detector.result()
        guarantee = followers / detector.approximation_ratio()
        rows.append(
            (n_users, followers, result.vertex, result.size,
             fmt(guarantee, 1), "yes" if result.size >= guarantee else "NO")
        )
    print(
        render_table(
            "E4b / Corollary 5.5 — turnstile Star Detection "
            "(all background friendships dissolved)",
            ("n", "Delta", "centre", "|S|", "guarantee", "meets"),
            rows,
        )
    )
    for row in rows:
        assert row[2] == 0
        assert row[5] == "yes"

    edges, n_users = social_network_stream(
        n_users=32, n_followers=12, n_background=32, seed=32
    )

    def run_once():
        detector = StarDetection(
            n_users, alpha=2, eps=1.0, model="insertion-deletion",
            seed=1, scale=0.1,
        )
        detector.process_undirected(edges)

    benchmark(run_once)
