"""E17 — update throughput of every streaming structure.

Not a paper claim, but the number downstream users ask first: how many
stream updates per second does each structure sustain?  One common
Zipf stream is pushed through each algorithm/baseline; pytest-benchmark
reports wall-clock per full pass, and the analysis table derives
updates/second.

Shape check (loose, machine-independent): the classical counter
summaries are at least as fast as the witness-collecting algorithms,
which do strictly more work per update.
"""

import time

from repro.baselines import (
    CountMinSketch,
    CountSketch,
    FullStorage,
    MisraGries,
    SpaceSaving,
)
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.streams.generators import GeneratorConfig, zipf_frequency_stream

from _tables import fmt, render_table

N, RECORDS = 256, 6000
D, ALPHA = 200, 2


def make_stream():
    config = GeneratorConfig(n=N, m=RECORDS, seed=61)
    return zipf_frequency_stream(config, n_records=RECORDS, exponent=1.4)


def contenders():
    return [
        ("Misra-Gries", lambda: MisraGries(64)),
        ("SpaceSaving", lambda: SpaceSaving(64)),
        ("CountMin", lambda: CountMinSketch(0.01, 0.01, seed=1)),
        ("CountSketch", lambda: CountSketch(256, rows=5, seed=2)),
        ("FullStorage", lambda: FullStorage(N, RECORDS)),
        ("Algorithm 2 (FEwW)", lambda: InsertionOnlyFEwW(N, D, ALPHA, seed=3)),
        (
            "Algorithm 3 (FEwW, fast bank)",
            lambda: InsertionDeletionFEwW(N, RECORDS, D, ALPHA, seed=4, scale=0.1),
        ),
    ]


def test_e17_throughput(benchmark):
    stream = make_stream()
    rows = []
    rates = {}
    for name, factory in contenders():
        algorithm = factory()
        start = time.perf_counter()
        for item in stream:
            algorithm.process_item(item)
        elapsed = time.perf_counter() - start
        rate = len(stream) / elapsed
        rates[name] = rate
        rows.append((name, len(stream), fmt(elapsed * 1000, 1), fmt(rate / 1000, 1)))
    print(
        render_table(
            f"E17 / throughput — one pass over a {RECORDS}-update Zipf stream",
            ("structure", "updates", "time (ms)", "k-updates/s"),
            rows,
        )
    )
    assert rates["Misra-Gries"] > rates["Algorithm 2 (FEwW)"] * 0.5

    algorithm = InsertionOnlyFEwW(N, D, ALPHA, seed=3)

    def run_once():
        fresh = InsertionOnlyFEwW(N, D, ALPHA, seed=3)
        for item in stream:
            fresh.process_item(item)

    benchmark(run_once)
