"""E17 — update throughput of every streaming structure.

Not a paper claim, but the number downstream users ask first: how many
stream updates per second does each structure sustain?  One common
Zipf stream is pushed through each algorithm/baseline twice — once item
by item (`process_item`) and once through the columnar batch engine
(`process_batch` over `ColumnarEdgeStream` chunks) — and the analysis
table reports both rates plus the batch speedup.

Shape checks (loose, machine-independent): the classical counter
summaries are at least as fast as the witness-collecting algorithms,
which do strictly more work per update; and the batch engine delivers
at least 5x the per-item rate on the hash-heavy sketches and on
Algorithm 2 (equivalence of the two paths is covered by
tests/integration/test_batch_equivalence.py).
"""

import time

from repro.baselines import (
    CountMinSketch,
    CountSketch,
    FullStorage,
    MisraGries,
    SpaceSaving,
)
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.streams.columnar import ColumnarEdgeStream, process_columnar
from repro.streams.generators import GeneratorConfig, zipf_frequency_stream

from _tables import fmt, render_table

N, RECORDS = 256, 30000
D, ALPHA = 200, 2
CHUNK = 8192

#: Structures that must show at least this batch speedup (the PR's
#: acceptance bar; scripts/bench_quick.py enforces the same constants).
REQUIRED_SPEEDUP = 5.0
REQUIRED_ON = ("CountMin", "CountSketch", "Algorithm 2 (FEwW)")


def make_stream(records: int = RECORDS):
    config = GeneratorConfig(n=N, m=records, seed=61)
    return zipf_frequency_stream(config, n_records=records, exponent=1.4)


def contenders(records: int = RECORDS):
    return [
        ("Misra-Gries", lambda: MisraGries(64)),
        ("SpaceSaving", lambda: SpaceSaving(64)),
        ("CountMin", lambda: CountMinSketch(0.01, 0.01, seed=1)),
        ("CountSketch", lambda: CountSketch(256, rows=5, seed=2)),
        ("FullStorage", lambda: FullStorage(N, records)),
        ("Algorithm 2 (FEwW)", lambda: InsertionOnlyFEwW(N, D, ALPHA, seed=3)),
        (
            "Algorithm 3 (FEwW, fast bank)",
            lambda: InsertionDeletionFEwW(N, records, D, ALPHA, seed=4, scale=0.1),
        ),
    ]


def measure_rates(stream, columnar, repeats: int = 3):
    """Best-of-N per-item and batch rates for every contender."""
    item_rates, batch_rates = {}, {}
    for name, factory in contenders(stream.m):
        best_item = best_batch = float("inf")
        for _ in range(repeats):
            algorithm = factory()
            start = time.perf_counter()
            for item in stream:
                algorithm.process_item(item)
            best_item = min(best_item, time.perf_counter() - start)
            algorithm = factory()
            start = time.perf_counter()
            process_columnar(algorithm, columnar, chunk_size=CHUNK)
            best_batch = min(best_batch, time.perf_counter() - start)
        item_rates[name] = len(stream) / best_item
        batch_rates[name] = len(stream) / best_batch
    return item_rates, batch_rates


def test_e17_throughput(benchmark):
    stream = make_stream()
    columnar = ColumnarEdgeStream.from_edge_stream(stream)
    item_rates, batch_rates = measure_rates(stream, columnar)
    rows = [
        (
            name,
            len(stream),
            fmt(item_rates[name] / 1000, 1),
            fmt(batch_rates[name] / 1000, 1),
            fmt(batch_rates[name] / item_rates[name], 1),
        )
        for name, _ in contenders()
    ]
    print(
        render_table(
            f"E17 / throughput — one pass over a {RECORDS}-update Zipf stream",
            ("structure", "updates", "item k-upd/s", "batch k-upd/s", "speedup"),
            rows,
        )
    )
    assert item_rates["Misra-Gries"] > item_rates["Algorithm 2 (FEwW)"] * 0.5
    for name in REQUIRED_ON:
        speedup = batch_rates[name] / item_rates[name]
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{name}: batch speedup {speedup:.1f}x < {REQUIRED_SPEEDUP}x"
        )

    def run_once():
        fresh = InsertionOnlyFEwW(N, D, ALPHA, seed=3)
        process_columnar(fresh, columnar, chunk_size=CHUNK)

    benchmark(run_once)
