"""E17 — update throughput of every streaming structure.

Not a paper claim, but the number downstream users ask first: how many
stream updates per second does each structure sustain?  One common
Zipf stream is pushed through each algorithm/baseline twice — once item
by item (`process_item`) and once through the columnar batch engine
(`process_batch` over `ColumnarEdgeStream` chunks) — and the analysis
table reports both rates plus the batch speedup.

Shape checks (loose, machine-independent): the classical counter
summaries are at least as fast as the witness-collecting algorithms,
which do strictly more work per update; and the batch engine delivers
at least 5x the per-item rate on the hash-heavy sketches and on
Algorithm 2 (equivalence of the two paths is covered by
tests/integration/test_batch_equivalence.py).
"""

import itertools
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.baselines import (
    CountMinSketch,
    CountSketch,
    FullStorage,
    MisraGries,
    SpaceSaving,
)
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.star_detection import StarDetection
from repro.sketch.l0 import L0EdgeBank
from repro.core.windowed import Alg2WindowFactory
from repro.engine import FanoutRunner, ShardedRunner
from repro.engine.windows import SlidingPolicy, WindowedProcessor
from repro.pipeline import Pipeline
from repro.streams.adapters import bipartite_double_cover_columnar
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.generators import (
    GeneratorConfig,
    planted_star_undirected,
    zipf_frequency_columnar,
    zipf_frequency_stream,
)
from repro.streams.persist import dump_stream

from _tables import fmt, render_table

N, RECORDS = 256, 30000
D, ALPHA = 200, 2
CHUNK = 8192

#: Structures that must show at least this batch speedup (the PR's
#: acceptance bar; scripts/bench_quick.py enforces the same constants).
REQUIRED_SPEEDUP = 5.0
REQUIRED_ON = ("CountMin", "CountSketch", "Algorithm 2 (FEwW)")

#: Absolute per-structure batch-throughput floors (updates/s), enforced
#: by scripts/bench_quick.py in *every* mode including ``--smoke`` —
#: ci.yml's smoke step therefore gates on them.  Calibrated ~10x below
#: the smoke-workload rates of a single-core CI-class host, so only a
#: genuine kernel regression (a fused kernel falling back to a Python
#: loop, say) can trip them — not machine noise.
FLOOR_UPDATES_PER_S = {
    "Misra-Gries": 800_000,
    "SpaceSaving": 600_000,
    "CountMin": 450_000,
    "CountSketch": 400_000,
    "FullStorage": 250_000,
    "Algorithm 2 (FEwW)": 250_000,
    "Algorithm 3 (FEwW, fast bank)": 180_000,
    "StarDetection (end-to-end)": 140_000,
    # Deferred bank ingest: the batch pass buffers and nets update
    # columns (consolidation is forced — and asserted live — by the
    # sample_all() read after the timed region), so the in-band rate is
    # memory-bandwidth-bound.  A floor this high is only passable by
    # the deferred path: the old eager per-sampler fan-out peaked in
    # the tens of k-upd/s.
    "Algorithm 3 (FEwW, exact bank)": 2_000_000,
}

#: Windowed-pipeline floors (updates/s by policy), enforced by
#: scripts/bench_quick.py in every mode including ``--smoke``.
#: Calibrated against the *smoke* workload (4000 updates, span 500 —
#: a bucket closes every 125 updates, so per-bucket overhead dominates
#: and rates sit far below the full-size run), with ~5x slack for
#: CI-class hosts: tripping one means the window wrapper's bucket path
#: regressed structurally, not that the host was slow.
WINDOW_FLOOR_UPDATES_PER_S = {
    "tumbling": 400_000,
    "sliding": 150_000,
}

#: Mid-stream probe floor (cached ``query()`` calls per second on the
#: sliding wrapper, see :func:`measure_probe_rates`).  The suffix-merge
#: cache makes repeat probes a clone + one merge instead of a
#: O(retained) re-fold; a rate below this floor means the cache stopped
#: serving (every probe re-merging every retained bucket).
FLOOR_PROBES_PER_S = 50

#: Exact-mode ℓ₀ sampler-bank workload: Algorithm 3's rigorous-mode
#: edge bank (stacked s-sparse recovery kernels) over a dedup'd random
#: edge stream on a 256x256 incidence vector.  The per-item reference
#: loop is orders of magnitude slower than the stacked batch kernels,
#: so it runs over a short prefix only (rates are per-update either
#: way).
EXACT_BANK_N = 256
EXACT_BANK_COUNT = 8
EXACT_BANK_DELTA = 0.05
EXACT_BANK_ITEM_UPDATES = 2_000
REQUIRED_EXACT_BANK_SPEEDUP = 3.0

#: End-to-end Star Detection workload (Lemma 3.3 wrapper: the whole
#: guess ladder over the bipartite double cover) and its acceptance bar.
STAR_VERTICES = 4096
STAR_DEGREE = 3000
STAR_ALPHA = 4
STAR_EPS = 3.0
STAR_UPDATES = 1_000_000
REQUIRED_STAR_SPEEDUP = 3.0

#: Multi-core pass: Algorithm 2 over a 10^6-update Zipf stream read
#: from a memory-mapped v2 file, sharded across worker processes.  The
#: 4-worker run must beat single-core by this factor — but only on
#: hosts that actually have the cores (scripts/bench_quick.py records
#: the host's effective core count alongside the rates).
SHARDED_UPDATES = 1_000_000
SHARDED_WORKERS = (1, 2, 4)
REQUIRED_SHARDED_SPEEDUP = 1.5
SHARDED_GATE_MIN_CORES = 4

#: Windowed pass: Algorithm 2 under the engine's window policies over
#: the standard Zipf stream.  The sliding (smooth histogram) policy
#: runs ceil(1/ratio)+1 concurrent bucket summaries, so its rate is
#: bounded below by roughly the tumbling rate divided by that factor —
#: recorded, not gated (policy overhead is workload-dependent).
WINDOW_SPAN = 4096
WINDOW_RATIO = 0.25


def effective_cores() -> int:
    """CPUs this process may actually use (affinity-aware).

    Delegates to the engine's single source of truth
    (:func:`repro.engine.effective_cores`) so benchmark artifacts and
    pipeline run reports can never disagree about the host.
    """
    from repro.engine import effective_cores as engine_effective_cores

    return engine_effective_cores()


def sharded_gate_applies() -> bool:
    """The 1.5x multi-core bar only binds where it can physically be
    met: enough cores AND a working fork backend (ShardedRunner falls
    back to serial execution — correct answers, no parallelism —
    on platforms without fork)."""
    from repro.engine.sharded import fork_available

    return effective_cores() >= SHARDED_GATE_MIN_CORES and fork_available()


def make_stream(records: int = RECORDS):
    config = GeneratorConfig(n=N, m=records, seed=61)
    return zipf_frequency_stream(config, n_records=records, exponent=1.4)


def contenders(records: int = RECORDS):
    return [
        ("Misra-Gries", lambda: MisraGries(64)),
        ("SpaceSaving", lambda: SpaceSaving(64)),
        ("CountMin", lambda: CountMinSketch(0.01, 0.01, seed=1)),
        ("CountSketch", lambda: CountSketch(256, rows=5, seed=2)),
        ("FullStorage", lambda: FullStorage(N, records)),
        ("Algorithm 2 (FEwW)", lambda: InsertionOnlyFEwW(N, D, ALPHA, seed=3)),
        (
            "Algorithm 3 (FEwW, fast bank)",
            lambda: InsertionDeletionFEwW(N, records, D, ALPHA, seed=4, scale=0.1),
        ),
    ]


def measure_rates(stream, columnar, repeats: int = 3, only=None):
    """Best-of-N per-item and engine (batch) rates for every contender.

    ``only`` optionally restricts the pass: a contender runs when any
    of the given case-insensitive substrings matches its name (``None``
    runs everything) — what ``scripts/bench_quick.py --only`` uses to
    re-measure one structure without paying for the rest.
    """
    item_rates, batch_rates = {}, {}
    for name, factory in contenders(stream.m):
        if only and not any(
            pattern.lower() in name.lower() for pattern in only
        ):
            continue
        best_item = best_batch = float("inf")
        for _ in range(repeats):
            algorithm = factory()
            start = time.perf_counter()
            for item in stream:
                algorithm.process_item(item)
            best_item = min(best_item, time.perf_counter() - start)
            algorithm = factory()
            runner = FanoutRunner({name: algorithm}, chunk_size=CHUNK)
            start = time.perf_counter()
            runner.process(columnar)
            # Inside the clock on purpose: structures with deferred
            # *ingest* work (FullStorage's netting backlog) must pay
            # for materialisation here, not in a later untimed read.
            # Query-side work (finalize sampling the banks) stays
            # untimed — this measures update throughput.
            flush = getattr(algorithm, "_flush", None)
            if flush is not None:
                flush()
            best_batch = min(best_batch, time.perf_counter() - start)
        item_rates[name] = len(stream) / best_item
        batch_rates[name] = len(stream) / best_batch
    return item_rates, batch_rates


def make_star_cover(
    n_updates: int = STAR_UPDATES,
    n_vertices: int = STAR_VERTICES,
    seed: int = 17,
) -> ColumnarEdgeStream:
    """Double cover of a planted-star graph with ``n_updates`` updates."""
    u, v = planted_star_undirected(
        n_vertices,
        n_updates // 2,
        min(STAR_DEGREE, n_vertices - 1),
        seed=seed,
    )
    return bipartite_double_cover_columnar(u, v, n_vertices)


def measure_star_rates(cover: ColumnarEdgeStream, repeats: int = 1):
    """End-to-end Star Detection rates: per-item loop vs engine pass.

    Both paths run the full Lemma 3.3 wrapper — every degree guess over
    the entire double cover — from the same seed, and must report the
    same star centre (asserted; the engine path is bit-identical).
    """
    items = cover.to_edge_stream()
    best_item = best_batch = float("inf")
    winner_item = winner_batch = None
    for _ in range(repeats):
        detector = StarDetection(cover.n, STAR_ALPHA, eps=STAR_EPS, seed=5)
        start = time.perf_counter()
        for item in items:
            detector.process_item(item)
        best_item = min(best_item, time.perf_counter() - start)
        winner_item = detector.result().vertex

        detector = StarDetection(cover.n, STAR_ALPHA, eps=STAR_EPS, seed=5)
        start = time.perf_counter()
        detector.process(cover)
        best_batch = min(best_batch, time.perf_counter() - start)
        winner_batch = detector.result().vertex
    assert winner_item == winner_batch, (
        f"engine pass disagrees with per-item: {winner_batch} vs {winner_item}"
    )
    return len(cover) / best_item, len(cover) / best_batch


def make_exact_bank_stream(records: int = RECORDS) -> ColumnarEdgeStream:
    """Dedup'd random edge stream on the 256x256 incidence vector."""
    rng = np.random.default_rng(23)
    a = rng.integers(0, EXACT_BANK_N, size=records)
    b = rng.integers(0, EXACT_BANK_N, size=records)
    _, first = np.unique(a * EXACT_BANK_N + b, return_index=True)
    first.sort()
    return ColumnarEdgeStream(
        a[first], b[first], n=EXACT_BANK_N, m=EXACT_BANK_N
    )


def make_exact_bank() -> L0EdgeBank:
    return L0EdgeBank(
        EXACT_BANK_N, EXACT_BANK_N, EXACT_BANK_COUNT,
        delta=EXACT_BANK_DELTA, seed=7, mode="exact",
    )


def measure_exact_bank_rates(
    columnar: ColumnarEdgeStream,
    item_updates: int = EXACT_BANK_ITEM_UPDATES,
    repeats: int = 1,
):
    """Exact-mode ℓ₀ bank: per-item loop vs stacked batch kernels.

    The per-item loop pays the full per-level recovery bookkeeping per
    update, so it is timed over a short prefix; the batch path pushes
    the whole stream through the engine.  Both rates are per update.

    Batch ingest is *deferred*: the bank buffers and cross-chunk-nets
    update columns during ``process``, and the fused bank-wide kernel
    consolidates on the first read.  The timed region is therefore the
    stream's in-band cost (what a pipeline sees between chunks) —
    consolidation is forced by the ``sample_all()`` immediately after
    it, which must find a live sampler (asserted), so a kernel
    regression can neither hide behind the buffering nor behind a fast
    but broken pass.
    """
    best_item = best_batch = float("inf")
    item_count = min(item_updates, len(columnar))
    for _ in range(repeats):
        bank = make_exact_bank()
        prefix = list(
            itertools.islice(columnar.to_edge_stream(), item_count)
        )
        start = time.perf_counter()
        for item in prefix:
            bank.process_item(item)
        best_item = min(best_item, time.perf_counter() - start)

        bank = make_exact_bank()
        runner = FanoutRunner({"bank": bank}, chunk_size=CHUNK)
        start = time.perf_counter()
        runner.process(columnar)
        best_batch = min(best_batch, time.perf_counter() - start)
        samples = bank.sample_all()
        assert len(samples) == EXACT_BANK_COUNT
        assert any(sample is not None for sample in samples), (
            "every exact-mode sampler failed on a live vector"
        )
    return item_count / best_item, len(columnar) / best_batch


def window_pipeline(columnar, policy: str, span: int = WINDOW_SPAN) -> Pipeline:
    """The declarative pipeline of one windowed pass (Algorithm 2
    under ``policy`` over an in-memory columnar stream)."""
    return (
        Pipeline.builder()
        .memory(columnar)
        .chunk_size(CHUNK)
        .processor("insertion-only", label="win", n=N, d=D, alpha=ALPHA)
        .window(policy, span, bucket_ratio=WINDOW_RATIO, seed=3)
        .build()
    )


def measure_window_rates(columnar, span: int = WINDOW_SPAN, repeats: int = 1):
    """Algorithm 2 under each window policy: engine updates per second.

    Each pass is a :class:`~repro.pipeline.Pipeline` run; every run
    must produce a non-empty windowed answer (tumbling: at least one
    completed window; sliding: a covered span within the
    smooth-histogram bucket bound of the requested window).
    """
    rates = {}
    for name in ("tumbling", "sliding"):
        pipeline = window_pipeline(columnar, name, span)
        best = float("inf")
        for _ in range(repeats):
            result = pipeline.run()
            answer = result["win"]
            best = min(best, result.report.elapsed_s)
        if name == "tumbling":
            assert len(answer) >= 1, "tumbling pass completed no windows"
        else:
            limit = span + answer.bucket
            assert answer.span <= min(limit, len(columnar)), (
                f"sliding span {answer.span} above the bucket bound {limit}"
            )
        rates[name] = len(columnar) / best
    return rates


def measure_probe_rates(
    columnar, span: int = WINDOW_SPAN, probe_every: int = CHUNK
) -> float:
    """Mid-stream probe latency: cached sliding ``query()`` calls/s.

    Drives Algorithm 2 under the sliding policy chunk by chunk —
    exactly the Pipeline's ``probe_every`` hook — and times only the
    ``query()`` calls at each probe point (two per point: the second
    is the pure cache-hit a monitoring dashboard polling an idle
    stream would see).  With the suffix-merge cache a probe is one
    clone plus one merge of the in-progress bucket; without it every
    probe re-folds all retained buckets.
    """
    wrapper = WindowedProcessor(
        Alg2WindowFactory(N, D, ALPHA),
        SlidingPolicy(span, bucket_ratio=WINDOW_RATIO),
        seed=3,
    )
    position, next_probe = 0, probe_every
    probes, spent = 0, 0.0
    # Probes quantize to chunk ends, so cap the chunk at the probe
    # interval — otherwise a coarse chunking would skip probe points.
    for a, b, sign in columnar.chunks(min(CHUNK, probe_every)):
        wrapper.process_batch(a, b, sign)
        position += len(a)
        if position >= next_probe:
            start = time.perf_counter()
            answer = wrapper.query()
            answer = wrapper.query()
            spent += time.perf_counter() - start
            probes += 2
            assert answer is not None, "mid-stream probe produced no answer"
            while next_probe <= position:
                next_probe += probe_every
    assert probes > 0, "stream too short for a single probe"
    return probes / spent if spent > 0 else float("inf")


def make_sharded_file(
    destination: Path,
    n_updates: int = SHARDED_UPDATES,
    seed: int = 61,
) -> Path:
    """Persist the sharded-pass workload as a v2 (NPZ) stream file."""
    columnar = zipf_frequency_columnar(
        GeneratorConfig(n=N, m=n_updates, seed=seed), n_updates, exponent=1.4
    )
    dump_stream(columnar, destination, format="v2")
    return destination


def sharded_pipeline(path: Path, workers: int) -> Pipeline:
    """The declarative pipeline of one sharded pass (Algorithm 2 over
    a memory-mapped v2 file).  Every worker count uses the sharded
    backend — 1 worker is its degenerate single-core path — so the
    auto-enabled mmap readahead applies uniformly and the
    speedup-vs-single ratios compare identical I/O configurations."""
    return (
        Pipeline.builder()
        .file(path, mmap=True)
        .chunk_size(CHUNK)
        .processor("insertion-only", label="alg2", n=N, d=D, alpha=ALPHA,
                   seed=3)
        .sharded(workers)
        .build()
    )


def measure_sharded_rates(path: Path, worker_counts=SHARDED_WORKERS):
    """Algorithm 2 throughput at each worker count, mmap-fed from disk.

    Each pass is a :class:`~repro.pipeline.Pipeline` run; workers read
    the file themselves (no data IPC).  Every worker count must succeed
    and report a neighbourhood meeting the ``d/alpha`` witness
    threshold (Algorithm 2 returns *any* successful run's answer, so
    different worker counts may legitimately name different heavy
    vertices — the guarantee, not the identity, is asserted; the
    bit-level equivalences live in
    tests/integration/test_sharded_equivalence.py).
    """
    import math

    rates = {}
    for workers in worker_counts:
        result = sharded_pipeline(path, workers).run()
        rates[workers] = result.report.updates_per_s
        answer = result["alg2"]
        assert answer is not None, f"{workers}-worker run failed"
        assert answer.size >= math.ceil(D / ALPHA), (
            f"{workers}-worker answer below threshold: {answer.size}"
        )
    return rates


def test_e17_throughput(benchmark):
    stream = make_stream()
    columnar = ColumnarEdgeStream.from_edge_stream(stream)
    item_rates, batch_rates = measure_rates(stream, columnar)
    rows = [
        (
            name,
            len(stream),
            fmt(item_rates[name] / 1000, 1),
            fmt(batch_rates[name] / 1000, 1),
            fmt(batch_rates[name] / item_rates[name], 1),
        )
        for name, _ in contenders()
    ]
    print(
        render_table(
            f"E17 / throughput — one pass over a {RECORDS}-update Zipf stream",
            ("structure", "updates", "item k-upd/s", "batch k-upd/s", "speedup"),
            rows,
        )
    )
    assert item_rates["Misra-Gries"] > item_rates["Algorithm 2 (FEwW)"] * 0.5
    for name in REQUIRED_ON:
        speedup = batch_rates[name] / item_rates[name]
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{name}: batch speedup {speedup:.1f}x < {REQUIRED_SPEEDUP}x"
        )

    def run_once():
        fresh = InsertionOnlyFEwW(N, D, ALPHA, seed=3)
        FanoutRunner({"alg2": fresh}, chunk_size=CHUNK).process(columnar)

    benchmark(run_once)


def test_e18_star_detection_end_to_end(benchmark):
    """E18 — the whole guess ladder in one engine pass vs per-item.

    A reduced-size (10^5-update) version of the acceptance workload so
    the benchmark suite stays quick; scripts/bench_quick.py records the
    full 10^6-update run in BENCH_throughput.json.
    """
    cover = make_star_cover(n_updates=100_000)
    item_rate, batch_rate = measure_star_rates(cover)
    speedup = batch_rate / item_rate
    print(
        render_table(
            "E18 / star detection — end-to-end over the double cover",
            ("path", "updates", "k-upd/s"),
            [
                ("per-item ladder", len(cover), fmt(item_rate / 1000, 1)),
                ("engine pass", len(cover), fmt(batch_rate / 1000, 1)),
                ("speedup", "", fmt(speedup, 1)),
            ],
        )
    )
    assert speedup >= REQUIRED_STAR_SPEEDUP

    def run_once():
        detector = StarDetection(cover.n, STAR_ALPHA, eps=STAR_EPS, seed=5)
        detector.process(cover)

    benchmark(run_once)


def test_e21_exact_bank_throughput(benchmark):
    """E21 — Algorithm 3's exact-mode ℓ₀ bank: stacked kernels vs loop.

    A reduced-size (10^4-update) version so the benchmark suite stays
    quick; scripts/bench_quick.py records the full workload in
    BENCH_throughput.json and gates its absolute floor.
    """
    columnar = make_exact_bank_stream(records=10_000)
    item_rate, batch_rate = measure_exact_bank_rates(
        columnar, item_updates=500
    )
    speedup = batch_rate / item_rate
    print(
        render_table(
            "E21 / exact ℓ₀ bank — stacked recovery kernels",
            ("path", "updates", "k-upd/s"),
            [
                ("per-item loop", 500, fmt(item_rate / 1000, 1)),
                ("engine pass", len(columnar), fmt(batch_rate / 1000, 1)),
                ("speedup", "", fmt(speedup, 1)),
            ],
        )
    )
    assert speedup >= REQUIRED_EXACT_BANK_SPEEDUP

    def run_once():
        bank = make_exact_bank()
        FanoutRunner({"bank": bank}, chunk_size=CHUNK).process(columnar)

    benchmark(run_once)


def test_e20_windowed_throughput(benchmark):
    """E20 — Algorithm 2 under engine window policies.

    Records tumbling vs sliding (smooth histogram) rates over the
    standard Zipf stream; scripts/bench_quick.py persists the same
    numbers into BENCH_throughput.json.
    """
    stream = make_stream()
    columnar = ColumnarEdgeStream.from_edge_stream(stream)
    rates = measure_window_rates(columnar, span=4096)
    print(
        render_table(
            "E20 / windowed throughput — Algorithm 2 under window policies",
            ("policy", "updates", "k-upd/s"),
            [
                (name, len(columnar), fmt(rate / 1000, 1))
                for name, rate in rates.items()
            ],
        )
    )
    assert rates["tumbling"] > 0 and rates["sliding"] > 0

    def run_once():
        processor = WindowedProcessor(
            Alg2WindowFactory(N, D, ALPHA), SlidingPolicy(4096), seed=3
        )
        FanoutRunner({"win": processor}, chunk_size=CHUNK).run(columnar)

    benchmark(run_once)


def test_e19_sharded_throughput(benchmark):
    """E19 — multi-core sharded pass vs single core, mmap-fed from disk.

    A reduced-size (10^5-update) version of the acceptance workload so
    the benchmark suite stays quick; scripts/bench_quick.py records the
    full 10^6-update run in BENCH_throughput.json.  The 1.5x speedup
    gate only applies on hosts with enough cores to deliver it.
    """
    with tempfile.TemporaryDirectory() as tmp:
        path = make_sharded_file(Path(tmp) / "zipf.npz", n_updates=100_000)
        rates = measure_sharded_rates(path)
        rows = [
            (f"{workers} worker(s)", fmt(rates[workers] / 1000, 1),
             fmt(rates[workers] / rates[1], 2))
            for workers in sorted(rates)
        ]
        print(
            render_table(
                f"E19 / sharded throughput — Algorithm 2, mmap v2 file, "
                f"{effective_cores()} effective core(s)",
                ("configuration", "k-upd/s", "speedup vs 1"),
                rows,
            )
        )
        if sharded_gate_applies():
            speedup = rates[max(rates)] / rates[1]
            assert speedup >= REQUIRED_SHARDED_SPEEDUP, (
                f"sharded speedup {speedup:.2f}x < "
                f"{REQUIRED_SHARDED_SPEEDUP}x with {max(rates)} workers"
            )

        def run_once():
            ShardedRunner(
                {"alg2": InsertionOnlyFEwW(N, D, ALPHA, seed=3)},
                n_workers=2,
                chunk_size=CHUNK,
                mmap=True,
            ).run(path)

        benchmark(run_once)
