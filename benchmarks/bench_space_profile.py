"""E16 — space over the stream's lifetime: the sublinear plateau.

The defining property of a streaming algorithm is that its working
space does not follow the stream.  We track word-level space every few
updates while a long Zipf stream plays, for Algorithm 2, the naive
first-k collector, and full storage.  Shape checks: full storage grows
linearly with the stream (final ~ updates), while Algorithm 2's witness
machinery plateaus — its final space is within a small factor of its
space at 25% of the stream.
"""

from repro.baselines import FirstKWitnessCollector, FullStorage
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.spacemeter import SpaceTracker
from repro.streams.generators import GeneratorConfig, zipf_frequency_stream

from _tables import fmt, render_table

N, RECORDS = 256, 8000
D, ALPHA = 300, 2


def track(algorithm, stream):
    return SpaceTracker(algorithm, sample_every=RECORDS // 8).process(stream)


def test_e16_space_profiles(benchmark):
    config = GeneratorConfig(n=N, m=RECORDS, seed=51)
    stream = zipf_frequency_stream(config, n_records=RECORDS, exponent=1.4)

    feww = track(InsertionOnlyFEwW(N, D, ALPHA, seed=52), stream)
    naive = track(FirstKWitnessCollector(N, D // ALPHA), stream)
    full = track(FullStorage(N, RECORDS), stream)

    rows = []
    for name, tracker in (("Algorithm 2", feww), ("first-k naive", naive),
                          ("full storage", full)):
        quarter = tracker.trace[len(tracker.trace) // 4][1]
        rows.append(
            (
                name,
                quarter,
                tracker.peak_words,
                tracker.final_words(),
                fmt(tracker.final_words() / max(quarter, 1), 2),
            )
        )
    print(
        render_table(
            f"E16 / space profile over a {RECORDS}-update Zipf stream "
            f"(n={N}, d={D}, alpha={ALPHA})",
            ("algorithm", "words @25%", "peak words", "final words",
             "final/quarter"),
            rows,
        )
    )
    feww_row, naive_row, full_row = rows
    assert float(feww_row[4]) < 2.5          # plateau
    assert float(full_row[4]) > 3.0          # linear growth
    assert full_row[3] > feww_row[3]         # streaming wins outright

    def run_once():
        SpaceTracker(
            InsertionOnlyFEwW(N, D, ALPHA, seed=0), sample_every=1000
        ).process(stream)

    benchmark(run_once)
