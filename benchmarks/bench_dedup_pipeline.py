"""E20 — the dedup substrate: raw feeds violate simplicity; the Bloom
pair-filter restores it in small space.

FEwW's model is a simple graph: a witness certifies one unit of
frequency once.  Raw feeds repeat (item, witness) pairs, and feeding
repeats straight into Algorithm 1's degree counter inflates degrees —
a vertex can cross the threshold d with fewer than d *distinct*
witnesses, so the promise check and the output size are computed
against the wrong quantity.  The pipeline benchmark measures all three
options on the same duplicated feed:

* raw (broken): degrees counted with duplicates;
* exact dedup: a hash-set of all pairs (space ~ #pairs);
* Bloom dedup: the DuplicateFilter at ~1% false positives.

Shape checks: raw degree overestimates the distinct degree; both dedup
variants recover it (Bloom within its fp budget); Bloom space is well
below exact-dedup space.
"""

import random

from repro.sketch.bloom import DuplicateFilter
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.streams.transforms import with_duplicates

from _tables import fmt, render_table

N, M, D = 128, 512, 64
DUPLICATION = 2.0  # every pair arrives ~3 times


def duplicated_feed():
    config = GeneratorConfig(n=N, m=M, seed=91)
    stream = planted_star_graph(config, star_degree=D, background_degree=4)
    return stream, with_duplicates(stream, DUPLICATION, seed=92)


def test_e20_dedup_pipeline(benchmark):
    stream, raw = duplicated_feed()
    true_degree = stream.degree_of(0)

    raw_degree = sum(1 for item in raw if item.edge.a == 0)

    exact_seen = set()
    exact_degree = 0
    for item in raw:
        key = (item.edge.a, item.edge.b)
        if key not in exact_seen:
            exact_seen.add(key)
            exact_degree += item.edge.a == 0
    exact_words = 2 * len(exact_seen)

    bloom = DuplicateFilter(N, M, capacity=len(stream), fp_rate=0.01,
                            rng=random.Random(93))
    bloom_degree = 0
    for item in raw:
        if bloom.admit(item.edge.a, item.edge.b):
            bloom_degree += item.edge.a == 0
    bloom_words = bloom.space_words()

    rows = [
        ("raw (duplicates counted)", raw_degree, "-", "-"),
        ("exact dedup (hash set)", exact_degree, exact_words, "-"),
        ("Bloom dedup (1% fp)", bloom_degree, bloom_words,
         fmt(bloom_words / exact_words, 2)),
    ]
    print(
        render_table(
            f"E20 / dedup substrate — heavy vertex degree through a "
            f"{DUPLICATION + 1:.0f}x-duplicated feed (true distinct degree "
            f"{true_degree})",
            ("pipeline", "measured degree", "space (words)", "vs exact"),
            rows,
        )
    )
    assert raw_degree > 1.5 * true_degree          # duplicates inflate
    assert exact_degree == true_degree             # exact dedup recovers
    assert true_degree * 0.95 <= bloom_degree <= true_degree
    assert bloom_words < exact_words / 2           # the space win

    def run_once():
        dedup = DuplicateFilter(N, M, capacity=len(stream), fp_rate=0.01,
                                rng=random.Random(0))
        for item in raw:
            dedup.admit(item.edge.a, item.edge.b)

    benchmark(run_once)
