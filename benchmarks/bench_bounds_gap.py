"""E19 — upper vs lower bound curves: tightness up to polylog factors.

Section 1.1 claims the insertion-only algorithm is optimal for every
poly-logarithmic alpha, and the insertion-deletion algorithm optimal
for alpha <= sqrt(n).  This bench traces the paper's upper-bound and
lower-bound formulas — plus the algorithm's measured space — across
alpha, and checks that the gap between the curves stays bounded by a
polylog factor of n as alpha grows (rather than opening polynomially).
"""

import math

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.theory.bounds import (
    insertion_deletion_lower_bound_words,
    insertion_deletion_space_words,
    insertion_only_lower_bound_words,
    insertion_only_space_words,
)

from _tables import fmt, render_table


def test_e19_insertion_only_gap(benchmark):
    n, d = 1024, 128
    config = GeneratorConfig(n=n, m=4 * d, seed=81)
    stream = planted_star_graph(config, star_degree=d, background_degree=4)
    rows, gaps = [], []
    for alpha in (2, 3, 4, 5):
        upper = insertion_only_space_words(n, d, alpha)
        lower = insertion_only_lower_bound_words(n, d, alpha)
        algorithm = InsertionOnlyFEwW(n, d, alpha, seed=alpha).process(stream)
        measured = algorithm.space_words()
        gaps.append(upper / lower)
        rows.append(
            (alpha, fmt(lower, 1), measured, upper, fmt(upper / lower, 2))
        )
    print(
        render_table(
            f"E19a / §1.1 — insertion-only upper vs lower bound "
            f"(n={n}, d={d})",
            ("alpha", "lower bound", "measured", "upper bound", "gap factor"),
            rows,
        )
    )
    polylog_budget = math.log(n) ** 3
    assert all(gap < polylog_budget for gap in gaps)

    benchmark(lambda: insertion_only_space_words(n, d, 3))


def test_e19_insertion_deletion_gap(benchmark):
    n = m = 256
    d = 16
    rows, gaps = [], []
    for alpha in (1, 2, 4, 8, 16):  # optimality claimed for alpha <= sqrt(n)
        upper = insertion_deletion_space_words(n, m, d, alpha)
        lower = insertion_deletion_lower_bound_words(n, d, alpha)
        gaps.append(upper / lower)
        rows.append((alpha, fmt(lower, 1), upper, fmt(upper / lower, 1)))
    print(
        render_table(
            f"E19b / §1.1 — insertion-deletion upper vs lower bound "
            f"(n=m={n}, d={d}, alpha <= sqrt(n))",
            ("alpha", "lower bound", "upper bound", "gap factor"),
            rows,
        )
    )
    # The gap carries the paper's polylog factors (log^2(nm) per sampler
    # x ln-factor sampler counts) but must not *grow* with alpha: that
    # would indicate a polynomial gap, i.e. non-optimality.
    assert max(gaps) / min(gaps) < 8

    benchmark(lambda: insertion_deletion_space_words(n, m, d, 4))
