"""E11 — Ablation: why Algorithm 2 needs alpha parallel threshold runs.

The proof of Theorem 3.2 shows some run must face a bounded candidate
ratio; a *single* run cannot guarantee that.  On a geometric degree
cascade, each individual threshold's Deg-Res-Sampling has only moderate
success probability with the theorem's reservoir size divided across
runs, while the parallel union succeeds almost always.

Shape checks: the full algorithm's success rate strictly exceeds the
best single run's on the cascade, and the union rate is near 1.
"""

import random

from repro.core.deg_res_sampling import DegResSampling
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.generators import GeneratorConfig, degree_cascade_graph

from _tables import fmt, render_table

N, M = 512, 512
D, ALPHA = 64, 4
TRIALS = 60
SMALL_RESERVOIR = 3  # stress regime: tiny reservoirs make single runs fail


def test_e11_parallel_runs_ablation(benchmark):
    stream = degree_cascade_graph(
        GeneratorConfig(n=N, m=M, seed=31), d=D, alpha=ALPHA, ratio=8.0
    )
    # Per-threshold success with a tiny reservoir.
    single_rates = []
    d2 = -(-D // ALPHA)
    for i in range(ALPHA):
        d1 = max(1, (i * D) // ALPHA)
        successes = 0
        for seed in range(TRIALS):
            run = DegResSampling(N, d1, d2, SMALL_RESERVOIR, random.Random(seed))
            run.process(stream)
            successes += run.successful
        single_rates.append(successes / TRIALS)
    # Full algorithm with the same tiny reservoir per run.
    union_successes = 0
    for seed in range(TRIALS):
        algorithm = InsertionOnlyFEwW(
            N, D, ALPHA, seed=seed, reservoir_override=SMALL_RESERVOIR
        )
        algorithm.process(stream)
        union_successes += algorithm.successful
    union_rate = union_successes / TRIALS

    rows = [
        (f"single run i={i} (d1={max(1, (i * D) // ALPHA)})", fmt(rate))
        for i, rate in enumerate(single_rates)
    ]
    rows.append(("parallel union (Algorithm 2)", fmt(union_rate)))
    print(
        render_table(
            f"E11 / ablation — single-threshold runs vs Algorithm 2 on a "
            f"degree cascade (d={D}, alpha={ALPHA}, s={SMALL_RESERVOIR}, "
            f"{TRIALS} trials)",
            ("configuration", "success rate"),
            rows,
        )
    )
    assert union_rate >= max(single_rates)
    assert union_rate >= 0.9

    def run_once():
        InsertionOnlyFEwW(
            N, D, ALPHA, seed=0, reservoir_override=SMALL_RESERVOIR
        ).process(stream)

    benchmark(run_once)
