"""E2 — Theorem 3.2 (correctness): Algorithm 2 succeeds w.p. >= 1 - 1/n
and returns >= ceil(d/alpha) genuine witnesses, on every workload class.

Workloads: planted star with noise, degree cascade (the adversarial
profile of the proof), adversarial arrival order, and a Zipf frequency
stream.  Shape check: failure rate stays near the 1/n budget and every
output verifies against ground truth.
"""

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import verify_neighbourhood
from repro.streams.generators import (
    GeneratorConfig,
    adversarial_interleaved_stream,
    degree_cascade_graph,
    planted_star_graph,
    zipf_frequency_stream,
)

from _tables import fmt, render_table

TRIALS = 40


def workloads():
    config = GeneratorConfig(n=128, m=4096, seed=21)
    star = planted_star_graph(config, star_degree=64, background_degree=6)
    cascade = degree_cascade_graph(GeneratorConfig(n=256, m=512, seed=22), d=64, alpha=4)
    adversarial = adversarial_interleaved_stream(
        GeneratorConfig(n=64, m=4096, seed=23), star_degree=64,
        n_decoys=50, decoy_degree=30,
    )
    zipf = zipf_frequency_stream(GeneratorConfig(n=128, m=4096, seed=24), n_records=4000)
    return [
        ("planted star", star, 64),
        ("degree cascade", cascade, 64),
        ("adversarial order", adversarial, 64),
        ("zipf", zipf, zipf.max_degree()),
    ]


def test_e2_success_across_workloads(benchmark):
    rows = []
    for name, stream, d in workloads():
        for alpha in (1, 2, 4):
            failures = 0
            min_size = None
            for seed in range(TRIALS):
                algorithm = InsertionOnlyFEwW(stream.n, d, alpha, seed=seed)
                algorithm.process(stream)
                if not algorithm.successful:
                    failures += 1
                    continue
                result = algorithm.result()
                verify_neighbourhood(result, stream, d, alpha)
                min_size = result.size if min_size is None else min(min_size, result.size)
            rows.append(
                (
                    name,
                    alpha,
                    d,
                    fmt(1 - 1 / stream.n),
                    fmt(1 - failures / TRIALS),
                    min_size if min_size is not None else "-",
                )
            )
    print(
        render_table(
            f"E2 / Theorem 3.2 — Algorithm 2 success rate ({TRIALS} trials each)",
            ("workload", "alpha", "d", "paper >= 1-1/n", "measured", "min |S|"),
            rows,
        )
    )
    for row in rows:
        assert float(row[4]) >= 0.9  # near the 1 - 1/n guarantee

    _, stream, d = workloads()[0][:3]

    def run_once():
        InsertionOnlyFEwW(stream.n, d, 2, seed=0).process(stream)

    benchmark(run_once)
