"""E10 — §1.3 contrast: witness-free FE space falls with d, witness
space necessarily grows with d.

On a fixed Zipf stream we tune each classical FE baseline to threshold
``d`` (Misra-Gries / SpaceSaving with k = ceil(L/d) counters) and
compare with Algorithm 2's retained words and the trivial ``d/alpha``
witness floor, sweeping d.  Shape checks: baseline space is decreasing
in d, FEwW space is increasing in d, and the classical baselines store
zero witnesses while FEwW reports >= d/alpha of them.
"""

import math

from repro.baselines import FirstKWitnessCollector, MisraGries, SpaceSaving
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.generators import GeneratorConfig, planted_star_graph

from _tables import render_table

ALPHA = 2
N, M = 512, 4096


def test_e10_witness_vs_witness_free_space(benchmark):
    rows = []
    mg_words, feww_words, witness_counts = [], [], []
    for d in (32, 64, 128, 256):
        config = GeneratorConfig(n=N, m=M, seed=d)
        stream = planted_star_graph(config, star_degree=d, background_degree=8)
        length = len(stream)

        counters = max(1, math.ceil(length / d))
        misra = MisraGries(counters).process(stream)
        saving = SpaceSaving(counters).process(stream)
        feww = InsertionOnlyFEwW(N, d, ALPHA, seed=d).process(stream)
        naive = FirstKWitnessCollector(N, math.ceil(d / ALPHA)).process(stream)
        result = feww.result()

        mg_words.append(misra.space_words())
        feww_words.append(feww.space_words() - N)  # witness machinery only
        witness_counts.append(result.size)
        rows.append(
            (
                d,
                misra.space_words(),
                saving.space_words(),
                feww.space_words(),
                naive.space_words(),
                0,
                result.size,
                math.ceil(d / ALPHA),
            )
        )
    print(
        render_table(
            "E10 / paper §1.3 — classical FE vs FEwW as d grows "
            f"(planted star, n={N}, alpha={ALPHA})",
            ("d", "MG words", "SS words", "FEwW words", "naive words",
             "MG witnesses", "FEwW witnesses", "d/alpha floor"),
            rows,
        )
    )
    # classical FE space behaves like m/d: decreasing in d
    assert mg_words == sorted(mg_words, reverse=True)
    # witness machinery grows with d (>= the trivial d/alpha floor)
    assert feww_words == sorted(feww_words)
    for count, row in zip(witness_counts, rows):
        assert count >= row[7]

    config = GeneratorConfig(n=N, m=M, seed=64)
    stream = planted_star_graph(config, star_degree=64, background_degree=8)

    def run_once():
        MisraGries(64).process(stream)

    benchmark(run_once)
