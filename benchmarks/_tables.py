"""Shared table rendering for the benchmark harness.

Every benchmark prints a paper-vs-measured table through
:func:`render_table`; run ``pytest benchmarks/ --benchmark-only -s`` to
see them inline.  The assertions in the benchmarks check the *shape* of
each claim (who wins, monotonicity, crossovers), not absolute numbers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table with a title banner."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(column) for column in header]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(name.ljust(width) for name, width in zip(header, widths))
    separator = "-" * len(line)
    body = [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in materialised
    ]
    return "\n".join(["", "=" * len(line), title, "=" * len(line), line, separator, *body, ""])


def fmt(value: float, digits: int = 3) -> str:
    """Compact float formatting for table cells."""
    if isinstance(value, int):
        return str(value)
    return f"{value:.{digits}f}"
