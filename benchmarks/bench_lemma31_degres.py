"""E1 — Lemma 3.1: Deg-Res-Sampling success probability.

Paper claim: on a graph with at most ``n1`` vertices of degree >= d1 and
at least ``n2`` vertices of degree >= d1 + d2 - 1, the run succeeds with
probability at least ``1 - (1 - s/n1)^{n2}``.

We plant exactly that profile, sweep the reservoir size ``s``, and print
the measured success rate next to the paper's bound.  Shape check: the
measured rate dominates the bound (within noise) for every ``s``, and is
monotone in ``s``.
"""

import random

from repro.core.deg_res_sampling import DegResSampling
from repro.streams.edge import Edge
from repro.streams.stream import stream_from_edges
from repro.theory.bounds import deg_res_success_lower_bound

from _tables import fmt, render_table

N1, N2 = 24, 4
D1, D2 = 2, 4
N, M = 40, 600
TRIALS = 250


def build_instance(order_seed: int):
    """n1 candidate vertices, the first n2 of them heavy (deg d1+d2-1)."""
    edges = []
    for a in range(N1):
        degree = D1 + D2 - 1 if a < N2 else D1
        edges.extend(Edge(a, a * 20 + j) for j in range(degree))
    random.Random(order_seed).shuffle(edges)
    return stream_from_edges(edges, N, M)


def success_rate(s: int) -> float:
    successes = 0
    for seed in range(TRIALS):
        stream = build_instance(order_seed=seed)
        algorithm = DegResSampling(N, D1, D2, s, random.Random(1000 + seed))
        algorithm.process(stream)
        successes += algorithm.successful
    return successes / TRIALS


def test_e1_success_probability_vs_bound(benchmark):
    rows = []
    measured = []
    for s in (1, 2, 4, 8, 16, 32):
        bound = deg_res_success_lower_bound(N1, N2, s)
        rate = success_rate(s)
        measured.append(rate)
        rows.append((s, fmt(bound), fmt(rate), "yes" if rate >= bound - 0.07 else "NO"))
    print(
        render_table(
            f"E1 / Lemma 3.1 — Deg-Res-Sampling(d1={D1}, d2={D2}, s) success "
            f"(n1={N1}, n2={N2}, {TRIALS} trials)",
            ("s", "paper bound", "measured", "meets bound"),
            rows,
        )
    )
    # Shape: measured rate >= paper bound (within noise), monotone in s.
    for (_, _, _, verdict) in rows:
        assert verdict == "yes"
    assert measured[-1] >= measured[0]
    assert measured[-1] == 1.0  # s >= n1: reservoir stores every candidate

    stream = build_instance(order_seed=0)

    def run_once():
        DegResSampling(N, D1, D2, 8, random.Random(7)).process(stream)

    benchmark(run_once)
