"""E15 — Lemma 6.1 demonstrated: a correct protocol's output carries
almost all of H(X_J) in mutual information.

The insertion-deletion lower bound rests on Lemma 6.1:
``I(X_J : Bob's view) >= (1 - eps) m - 1``.  We make that measurable on
a tiny Augmented-Matrix-Row-Index distribution (n=3, m=4, k=1): run the
Lemma 6.3 protocol over many sampled inputs, collect (X_J, recovered
row) pairs, and plug-in-estimate the mutual information.  A correct
protocol must land near H(X_J) = m bits; a no-communication baseline
(Bob outputs a fixed guess) must land near 0.

Shape checks: protocol MI >= (1 - eps_hat) * m - 1 for the measured
error rate eps_hat, and baseline MI near zero.
"""

import random

from repro.comm.matrix_row_index import random_instance, solve_amri_via_feww
from repro.theory.information import empirical_mutual_information

from _tables import fmt, render_table

N, M, K = 3, 4, 1
SAMPLES = 260


def test_e15_mutual_information_of_protocol_output(benchmark):
    protocol_pairs = []
    baseline_pairs = []
    errors = 0
    for seed in range(SAMPLES):
        instance = random_instance(N, M, K, random.Random(seed))
        truth = instance.target_row_bits()
        result = solve_amri_via_feww(
            instance, alpha=1.0, seed=seed + 10_000,
            repetition_constant=2, scale=0.15,
        )
        errors += not result.correct
        protocol_pairs.append((truth, result.recovered_row))
        baseline_pairs.append((truth, (0,) * M))  # Bob guesses blind
    protocol_mi = empirical_mutual_information(protocol_pairs)
    baseline_mi = empirical_mutual_information(baseline_pairs)
    eps_hat = errors / SAMPLES
    lemma_bound = (1 - eps_hat) * M - 1
    print(
        render_table(
            f"E15 / Lemma 6.1 — I(X_J : output) on AMRI({N},{M},{K}), "
            f"{SAMPLES} sampled inputs",
            ("protocol", "error rate", "I(X_J:out) bits", "Lemma 6.1 bound",
             "H(X_J)=m"),
            [
                ("Lemma 6.3 via FEwW", fmt(eps_hat), fmt(protocol_mi),
                 fmt(lemma_bound), M),
                ("no-communication guess", "1.0 (a.s.)", fmt(baseline_mi),
                 "-", M),
            ],
        )
    )
    assert protocol_mi >= lemma_bound - 0.3  # plug-in estimator noise
    assert protocol_mi > 0.8 * M
    assert baseline_mi < 0.1

    instance = random_instance(N, M, K, random.Random(0))
    benchmark(
        lambda: solve_amri_via_feww(
            instance, alpha=1.0, seed=1, repetition_constant=2, scale=0.15
        )
    )
