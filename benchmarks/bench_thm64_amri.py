"""E9 — Lemma 6.3 / Theorem 6.4 and Figure 3: Augmented-Matrix-Row-Index.

Runs the full Lemma 6.3 protocol (random column permutations, Bob's
deletions, Theta(alpha log n) repetitions, bit-inversion fallback) on
the Figure-3 instance and on random instances, and compares the
protocol's message volume against the Theorem 6.2 bound
``(n-1)(k-1-eps*m)``.
"""

import random

from repro.comm.matrix_row_index import (
    figure3_instance,
    random_instance,
    solve_amri_via_feww,
)

from _tables import fmt, render_table

TRIALS = 10


def test_e9_figure3_instance(benchmark):
    instance = figure3_instance()
    result = solve_amri_via_feww(
        instance, alpha=1.0, seed=1, repetition_constant=4, scale=0.3
    )
    print(
        render_table(
            "E9a / Figure 3 — Augmented-Matrix-Row-Index(4, 6, 2)",
            ("target row", "truth", "recovered", "correct", "reps", "via"),
            [
                (
                    instance.target_row + 1,  # paper is 1-indexed
                    "".join(map(str, instance.target_row_bits())),
                    "".join(map(str, result.recovered_row)),
                    result.correct,
                    result.repetitions,
                    "inverted" if result.used_inverted else "direct",
                )
            ],
        )
    )
    assert result.correct

    benchmark(
        lambda: solve_amri_via_feww(
            figure3_instance(), alpha=1.0, seed=1,
            repetition_constant=2, scale=0.2,
        )
    )


def test_e9_random_instances(benchmark):
    rows = []
    for n, m, k, alpha in [(4, 8, 1, 2.0), (6, 8, 1, 2.0), (4, 12, 2, 2.0)]:
        correct, message = 0, 0
        for seed in range(TRIALS):
            instance = random_instance(n, m, k, random.Random(seed))
            result = solve_amri_via_feww(
                instance, alpha=alpha, seed=seed + 900,
                repetition_constant=6, scale=0.25,
            )
            correct += result.correct
            message = max(message, result.log.max_message_words())
        epsilon = 0.1
        lower_bits = (n - 1) * (k - 1 - epsilon * m)
        rows.append(
            (
                n, m, k, alpha,
                fmt(correct / TRIALS),
                message,
                fmt(max(lower_bits, 0), 1),
            )
        )
    print(
        render_table(
            f"E9b / Theorem 6.2 — AMRI via FEwW over random instances "
            f"({TRIALS} trials)",
            ("n", "m", "k", "alpha", "accuracy", "msg (words)",
             "Thm6.2 bits (eps=.1)"),
            rows,
        )
    )
    for row in rows:
        assert float(row[4]) >= 0.9

    instance = random_instance(4, 8, 1, random.Random(0))
    benchmark(
        lambda: solve_amri_via_feww(
            instance, alpha=2.0, seed=7, repetition_constant=3, scale=0.2
        )
    )
