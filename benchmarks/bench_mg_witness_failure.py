"""E13 — why classical FE summaries cannot just "keep witnesses".

Misra–Gries with witness lists attached to its counters
(:class:`repro.baselines.mg_witness.MisraGriesWithWitnesses`) loses the
entire witness list whenever the decrement step evicts an item.  On
bursty streams where the heavy item's arrivals are spread between waves
of fresh noise, its witness list is reset over and over, while
Algorithm 2's degree-triggered reservoir is immune (other items'
arrivals never touch a resident's witnesses).

Shape check: on the bursty workload the strawman retains well under
half the witnesses while Algorithm 2 reports at least d/alpha; on a
burst-free workload both succeed (the strawman is not artificially
crippled).
"""

from repro.baselines.mg_witness import MisraGriesWithWitnesses
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.edge import Edge, StreamItem
from repro.streams.stream import EdgeStream, stream_from_edges

from _tables import fmt, render_table


def bursty_stream(n_bursts: int, noise_per_burst: int, n=400, m=20_000):
    """Heavy item appears once per burst, drowned in fresh noise."""
    items, b, noise_vertex = [], 0, 1
    for _ in range(n_bursts):
        items.append(StreamItem(Edge(0, b))); b += 1
        for _ in range(noise_per_burst):
            items.append(StreamItem(Edge(noise_vertex, b)))
            noise_vertex = 1 + (noise_vertex % (n - 1))
            b += 1
    return EdgeStream(items, n, m)


def contiguous_stream(degree: int, n=400, m=20_000):
    """Heavy item's edges arrive together and the noise volume stays
    below its count, so Misra-Gries never evicts it: the kind regime."""
    noise = [Edge(1 + i, degree + i) for i in range(degree - 10)]
    return stream_from_edges([Edge(0, b) for b in range(degree)] + noise, n, m)


def test_e13_witness_loss(benchmark):
    d, alpha = 40, 2
    rows = []
    for name, stream in (
        ("bursty", bursty_stream(n_bursts=d, noise_per_burst=12)),
        ("contiguous", contiguous_stream(degree=d)),
    ):
        strawman = MisraGriesWithWitnesses(4, d).process(stream)
        mg_witnesses = len(strawman.witnesses_of(0))
        algorithm = InsertionOnlyFEwW(stream.n, d, alpha, seed=1).process(stream)
        result = algorithm.result()
        rows.append(
            (
                name,
                d,
                mg_witnesses,
                strawman.witnesses_lost,
                result.size,
                d // alpha,
            )
        )
    print(
        render_table(
            "E13 / extension — Misra-Gries+witnesses strawman vs Algorithm 2 "
            f"(d={d}, alpha={alpha})",
            ("workload", "true degree", "MG+w witnesses", "MG+w lost",
             "Alg2 witnesses", "d/alpha floor"),
            rows,
        )
    )
    bursty, contiguous = rows
    assert bursty[2] < d / 2          # the strawman loses the witnesses
    assert bursty[4] >= d // alpha    # Algorithm 2 does not
    assert contiguous[2] >= d / 2     # the strawman is fine without bursts
    assert contiguous[4] >= d // alpha

    stream = bursty_stream(n_bursts=d, noise_per_burst=12)
    benchmark(lambda: MisraGriesWithWitnesses(4, d).process(stream))
