"""E3 — Theorem 3.2 (space): measured words track
``O(n log n + n^{1/alpha} d log^2 n)``.

Two sweeps on planted-star inputs: (i) fix d, alpha and grow n — the
degree-table term ``n`` must dominate asymptotically; (ii) fix n, d and
grow alpha — the witness term must shrink like ``n^{1/alpha} d``.  The
table prints measured retained words next to the paper's formula
(:func:`repro.theory.bounds.insertion_only_space_words`); the shape
checks assert the measured/predicted ratio stays within a constant band
across the sweep (same growth rate).
"""

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.theory.bounds import insertion_only_space_words

from _tables import fmt, render_table


def measure(n: int, d: int, alpha: int, seed: int) -> int:
    config = GeneratorConfig(n=n, m=4 * d, seed=seed)
    stream = planted_star_graph(config, star_degree=d, background_degree=min(4, d - 1))
    algorithm = InsertionOnlyFEwW(n, d, alpha, seed=seed).process(stream)
    return algorithm.space_words()


def test_e3_space_scaling_in_n(benchmark):
    d, alpha = 32, 2
    rows, ratios = [], []
    for n in (256, 512, 1024, 2048, 4096):
        measured = measure(n, d, alpha, seed=1)
        predicted = insertion_only_space_words(n, d, alpha)
        ratios.append(measured / predicted)
        rows.append((n, d, alpha, predicted, measured, fmt(measured / predicted)))
    print(
        render_table(
            "E3a / Theorem 3.2 — space vs n (d=32, alpha=2)",
            ("n", "d", "alpha", "paper words", "measured words", "ratio"),
            rows,
        )
    )
    # Same growth rate: ratio varies by at most ~3x across a 16x n sweep.
    assert max(ratios) / min(ratios) < 3.0

    benchmark(lambda: measure(1024, d, alpha, seed=1))


def test_e3_space_scaling_in_alpha(benchmark):
    n, d = 2048, 64
    rows = []
    measured_words = []
    for alpha in (1, 2, 3, 4):
        measured = measure(n, d, alpha, seed=2)
        predicted = insertion_only_space_words(n, d, alpha)
        measured_words.append(measured)
        rows.append((alpha, predicted, measured, fmt(measured / predicted)))
    print(
        render_table(
            "E3b / Theorem 3.2 — space vs alpha (n=2048, d=64)",
            ("alpha", "paper words", "measured words", "ratio"),
            rows,
        )
    )
    # The witness term n^{1/alpha} d shrinks with alpha; alpha=1 pays the
    # full n*d-ish reservoir, alpha=4 is close to the n-word floor.
    assert measured_words[0] > 2 * measured_words[1]
    assert measured_words == sorted(measured_words, reverse=True)

    benchmark(lambda: measure(n, d, 2, seed=2))


def test_e3_space_scaling_in_d(benchmark):
    n, alpha = 1024, 2
    rows = []
    measured_words = []
    for d in (16, 32, 64, 128):
        measured = measure(n, d, alpha, seed=3)
        predicted = insertion_only_space_words(n, d, alpha)
        measured_words.append(measured)
        rows.append((d, predicted, measured, fmt(measured / predicted)))
    print(
        render_table(
            "E3c / Theorem 3.2 — space vs d (n=1024, alpha=2): witness "
            "space grows with d (inverse of classical FE, paper §1.3)",
            ("d", "paper words", "measured words", "ratio"),
            rows,
        )
    )
    assert measured_words == sorted(measured_words)

    benchmark(lambda: measure(n, 64, alpha, seed=3))
