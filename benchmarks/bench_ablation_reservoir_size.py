"""E21 — ablation: the reservoir size ``s = ceil(ln n * n^{1/alpha})``.

Theorem 3.2's proof needs ``s >= n^{1/alpha} ln n`` to force a
contradiction; the natural question is how sharp that choice is.  We
sweep the reservoir as a fraction of the paper's value on the degree
cascade (the profile the proof's counting argument is about) and
measure Algorithm 2's success rate.

Shape checks: success is monotone (within noise) in the reservoir
fraction, the paper's choice (fraction 1.0) sits in the saturated
regime, and severely starved reservoirs (<= 5% of the paper's) fail
noticeably — i.e. the knee is below 1.0 but not far below, so the
paper's choice is safe without being wildly conservative.
"""

import math

from repro.core.insertion_only import InsertionOnlyFEwW, reservoir_size
from repro.streams.generators import GeneratorConfig, degree_cascade_graph

from _tables import fmt, render_table

N, M = 512, 512
D, ALPHA = 64, 4
TRIALS = 50


def success_rate(stream, s: int) -> float:
    successes = 0
    for seed in range(TRIALS):
        algorithm = InsertionOnlyFEwW(
            N, D, ALPHA, seed=seed, reservoir_override=s
        )
        algorithm.process(stream)
        successes += algorithm.successful
    return successes / TRIALS


def test_e21_reservoir_size_knee(benchmark):
    stream = degree_cascade_graph(
        GeneratorConfig(n=N, m=M, seed=101), d=D, alpha=ALPHA, ratio=6.0
    )
    paper_s = reservoir_size(N, ALPHA)
    fractions = (0.02, 0.05, 0.1, 0.25, 0.5, 1.0)
    rows, rates = [], []
    for fraction in fractions:
        s = max(1, math.ceil(fraction * paper_s))
        rate = success_rate(stream, s)
        rates.append(rate)
        rows.append((fmt(fraction, 2), s, fmt(rate)))
    print(
        render_table(
            f"E21 / ablation — Algorithm 2 success vs reservoir fraction "
            f"(paper s = ceil(ln n * n^(1/a)) = {paper_s}; cascade, d={D}, "
            f"alpha={ALPHA}, {TRIALS} trials)",
            ("fraction of paper s", "s", "success rate"),
            rows,
        )
    )
    # paper's choice saturates
    assert rates[-1] >= 0.95
    # the half-size reservoir is still fine (choice is not razor-thin)
    assert rates[-2] >= 0.9
    # a starved reservoir visibly degrades: the parameter matters
    assert min(rates[0], rates[1]) < rates[-1]
    # monotone within noise
    assert rates[0] <= rates[-1] and rates[1] <= rates[-1] + 0.05

    def run_once():
        InsertionOnlyFEwW(
            N, D, ALPHA, seed=0, reservoir_override=paper_s
        ).process(stream)

    benchmark(run_once)
