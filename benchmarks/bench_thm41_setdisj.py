"""E5 — Theorem 4.1: the Set-Disjointness reduction.

The executable protocol distinguishes pairwise-disjoint from
uniquely-intersecting instances using Algorithm 2's memory state as the
message.  Shape checks: near-perfect accuracy over the promise
distribution, and the message size (= algorithm memory) grows linearly
in the universe size n — consistent with the ``Omega(n / alpha^2)``
bound being driven by the degree table.
"""

import random

from repro.comm.set_disjointness import (
    disjoint_instance,
    intersecting_instance,
    solve_set_disjointness_via_feww,
)
from repro.theory.bounds import set_disjointness_lower_bound_words

from _tables import fmt, render_table

P, K = 3, 4
TRIALS = 30


def accuracy(n: int) -> tuple[float, int]:
    correct, max_message = 0, 0
    for seed in range(TRIALS):
        rng = random.Random(seed)
        if seed % 2 == 0:
            instance = intersecting_instance(P, n, rng)
        else:
            instance = disjoint_instance(P, n, rng)
        answer, log = solve_set_disjointness_via_feww(instance, k=K, seed=seed)
        correct += answer == instance.intersecting
        max_message = max(max_message, log.max_message_words())
    return correct / TRIALS, max_message


def test_e5_set_disjointness_reduction(benchmark):
    rows = []
    messages = []
    for n in (32, 64, 128, 256):
        rate, message_words = accuracy(n)
        lower = set_disjointness_lower_bound_words(n, P - 1)
        messages.append(message_words)
        rows.append((n, P, K, fmt(rate), message_words, fmt(lower, 1)))
    print(
        render_table(
            f"E5 / Theorem 4.1 — Set-Disjointness_p via FEwW "
            f"(p={P}, k={K}, d=kp={K * P}, {TRIALS} trials)",
            ("n", "p", "k", "accuracy", "max message (words)", "Omega(n/a^2)"),
            rows,
        )
    )
    for row in rows:
        assert float(row[3]) >= 0.9
    # message grows with n (the reduction's message carries the degree
    # table): doubling n roughly doubles the message.
    assert messages[-1] > 4 * messages[0]

    rng = random.Random(0)
    instance = intersecting_instance(P, 128, rng)

    def run_once():
        solve_set_disjointness_via_feww(instance, k=K, seed=0)

    benchmark(run_once)
