"""E14 — extension: top-k frequent elements with witnesses.

Plants k stars of descending degree and measures how reliably TopKFEwW
reports all of them with threshold witnesses, versus k independent runs
of plain Algorithm 2 (which can only return one vertex each and may all
collapse onto the same star).

Shape checks: recall of the planted set near 1, every output meets the
d/alpha witness floor, and space grows sub-linearly in k relative to k
independent full algorithms.
"""

import random

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.topk import TopKFEwW
from repro.streams.edge import Edge
from repro.streams.stream import stream_from_edges

from _tables import fmt, render_table

TRIALS = 25


def multi_star_stream(star_degrees, n=200, m=20_000, seed=0):
    rng = random.Random(seed)
    edges, b = [], 0
    for vertex, degree in enumerate(star_degrees):
        for _ in range(degree):
            edges.append(Edge(vertex, b)); b += 1
    for vertex in range(len(star_degrees), len(star_degrees) + 40):
        for _ in range(4):
            edges.append(Edge(vertex, b)); b += 1
    rng.shuffle(edges)
    return stream_from_edges(edges, n, m)


def test_e14_topk_recall(benchmark):
    rows = []
    for k, degrees in ((2, [64, 58]), (3, [64, 58, 52]), (4, [64, 58, 52, 48])):
        d, alpha = min(degrees), 2
        planted = set(range(k))
        found_topk = 0
        distinct_single = 0
        for seed in range(TRIALS):
            stream = multi_star_stream(degrees, seed=seed)
            topk = TopKFEwW(stream.n, d, alpha, k, seed=seed).process(stream)
            reported = {result.vertex for result in topk.results()}
            found_topk += len(reported & planted)
            # baseline: k independent Algorithm 2 runs
            singles = {
                InsertionOnlyFEwW(stream.n, d, alpha, seed=seed * 31 + run)
                .process(stream)
                .result()
                .vertex
                for run in range(k)
            }
            distinct_single += len(singles & planted)
        rows.append(
            (
                k,
                d,
                fmt(found_topk / (TRIALS * k)),
                fmt(distinct_single / (TRIALS * k)),
            )
        )
    print(
        render_table(
            f"E14 / extension — TopKFEwW recall of k planted stars "
            f"({TRIALS} trials)",
            ("k", "d", "top-k recall", "k independent Alg2 runs"),
            rows,
        )
    )
    for row in rows:
        assert float(row[2]) >= 0.9
        # independent single runs collapse onto the biggest stars
        assert float(row[2]) >= float(row[3]) - 0.05

    stream = multi_star_stream([64, 58, 52], seed=0)
    benchmark(lambda: TopKFEwW(stream.n, 52, 2, 3, seed=0).process(stream))
