"""E12 — Ablation: Algorithm 3's two sampling strategies are both needed.

Lemma 5.2: vertex sampling succeeds when many vertices are heavy;
Lemma 5.3: edge sampling succeeds when few are.  We run each strategy
alone and combined on a dense workload (every vertex heavy) and a
sparse one (a single star among noise, sized so an un-sampled vertex
dooms the vertex strategy), with sampler budgets scaled down to make
the failure modes visible.

Shape checks: edge-only beats vertex-only on sparse, vertex-only beats
edge-only on dense is not required (edge sampling can be lucky) — what
the ablation must show is that the COMBINED strategy matches the best
single strategy on both workloads.
"""

from repro.core.insertion_deletion import InsertionDeletionFEwW, SamplingStrategy
from repro.streams.generators import (
    GeneratorConfig,
    planted_star_graph,
    random_bipartite_graph,
)

from _tables import fmt, render_table

TRIALS = 25
SCALE = 0.04  # starvation regime: strategies must earn their successes


def sparse_workload():
    """One star among many low-degree vertices: edge sampling's regime."""
    config = GeneratorConfig(n=96, m=192, seed=41)
    stream = planted_star_graph(config, star_degree=64, background_degree=1)
    return stream, 64, 2.0


def dense_workload():
    """Every vertex heavy: vertex sampling's regime (a single max-degree
    vertex owns only a tiny fraction of all edges)."""
    config = GeneratorConfig(n=64, m=128, seed=42)
    stream = random_bipartite_graph(config, n_edges=64 * 40)
    d = min(stream.final_degrees().values())
    return stream, d, 2.0


def success_rate(stream, d, alpha, strategy) -> float:
    successes = 0
    for seed in range(TRIALS):
        algorithm = InsertionDeletionFEwW(
            stream.n, stream.m, d, alpha, seed=seed,
            strategy=strategy, scale=SCALE,
        )
        algorithm.process(stream)
        successes += algorithm.successful
    return successes / TRIALS


def test_e12_sampling_strategy_ablation(benchmark):
    rows = []
    results = {}
    for name, (stream, d, alpha) in (
        ("sparse (star)", sparse_workload()),
        ("dense", dense_workload()),
    ):
        for strategy in SamplingStrategy:
            rate = success_rate(stream, d, alpha, strategy)
            results[(name, strategy)] = rate
            rows.append((name, strategy.value, d, fmt(rate)))
    print(
        render_table(
            f"E12 / ablation — Algorithm 3 sampling strategies "
            f"({TRIALS} trials, scale={SCALE})",
            ("workload", "strategy", "d", "success rate"),
            rows,
        )
    )
    for name in ("sparse (star)", "dense"):
        best_single = max(
            results[(name, SamplingStrategy.VERTEX)],
            results[(name, SamplingStrategy.EDGE)],
        )
        combined = results[(name, SamplingStrategy.BOTH)]
        assert combined >= best_single - 0.1
    # The regimes separate: each single strategy is beatable somewhere.
    assert (
        results[("dense", SamplingStrategy.VERTEX)]
        > results[("sparse (star)", SamplingStrategy.VERTEX)] - 1e-9
    )

    stream, d, alpha = sparse_workload()

    def run_once():
        InsertionDeletionFEwW(
            stream.n, stream.m, d, alpha, seed=0,
            strategy=SamplingStrategy.BOTH, scale=SCALE,
        ).process(stream)

    benchmark(run_once)
