"""E8 — Theorem 5.4 (space): ``O~(dn/alpha^2)`` for alpha <= sqrt(n),
``O~(sqrt(n) d / alpha)`` beyond, with the crossover at alpha = sqrt(n).

The accounted sampler space (paper formula per sampler x the algorithm's
actual sampler counts) is swept across alpha through the crossover, and
across n and d.  Shape checks: monotone decay in alpha, super-linear
decay below the crossover, ~linear decay above it, and linear growth in
both d and n.
"""

import math

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.theory.bounds import (
    insertion_deletion_lower_bound_words,
    insertion_deletion_space_words,
)

from _tables import fmt, render_table


def measured_words(n, m, d, alpha) -> int:
    return InsertionDeletionFEwW(n, m, d, alpha, seed=0).space_words()


def test_e8_space_vs_alpha_crossover(benchmark):
    n = m = 256  # sqrt(n) = 16
    d = 16
    alphas = (1, 2, 4, 8, 16, 32, 64)
    rows, words = [], []
    for alpha in alphas:
        measured = measured_words(n, m, d, alpha)
        predicted = insertion_deletion_space_words(n, m, d, alpha)
        lower = insertion_deletion_lower_bound_words(n, d, alpha)
        regime = "a<=sqrt(n)" if alpha <= math.sqrt(n) else "a>sqrt(n)"
        words.append(measured)
        rows.append((alpha, regime, predicted, measured, fmt(lower, 1)))
    print(
        render_table(
            "E8a / Theorem 5.4 — accounted space vs alpha (n=m=256, d=16)",
            ("alpha", "regime", "paper formula", "measured words", "Omega(nd/a^2)"),
            rows,
        )
    )
    assert words == sorted(words, reverse=True)
    # below the crossover: super-linear decay per alpha doubling
    assert words[0] / words[2] > 4  # alpha 1 -> 4 shrinks > 4x
    # above the crossover: decay flattens to ~1/alpha
    assert words[4] / words[6] < 8  # alpha 16 -> 64 shrinks < 8x

    benchmark(lambda: measured_words(n, m, d, 4))


def test_e8_space_vs_n_and_d(benchmark):
    rows = []
    n_words, d_words = [], []
    for n in (64, 128, 256, 512):
        measured = measured_words(n, n, 8, 4)
        n_words.append(measured)
        rows.append(("n sweep", n, 8, 4, measured))
    for d in (4, 8, 16, 32):
        measured = measured_words(128, 128, d, 4)
        d_words.append(measured)
        rows.append(("d sweep", 128, d, 4, measured))
    print(
        render_table(
            "E8b / Theorem 5.4 — accounted space vs n and d (alpha=4)",
            ("sweep", "n", "d", "alpha", "measured words"),
            rows,
        )
    )
    assert n_words == sorted(n_words)
    assert d_words == sorted(d_words)
    # ~linear in d: 8x d gives ~8x words (within 2x band)
    assert 4 < d_words[-1] / d_words[0] < 16

    benchmark(lambda: measured_words(128, 128, 8, 4))
