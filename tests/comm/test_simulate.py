"""Tests for the generic one-way-protocol simulation driver."""

import pytest

from repro.baselines import FullStorage
from repro.comm.simulate import run_streaming_protocol, split_among_parties
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.edge import Edge
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.streams.stream import stream_from_edges


def star_stream():
    config = GeneratorConfig(n=64, m=256, seed=1)
    return planted_star_graph(config, star_degree=32, background_degree=3)


class TestSplit:
    def test_rejects_bad_parties(self):
        with pytest.raises(ValueError):
            split_among_parties(star_stream(), 0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            split_among_parties(star_stream(), 2, mode="random")

    def test_contiguous_partition_covers_everything(self):
        stream = star_stream()
        shares = split_among_parties(stream, 4)
        recombined = [item for share in shares for item in share]
        assert recombined == list(stream)

    def test_round_robin_covers_everything(self):
        stream = star_stream()
        shares = split_among_parties(stream, 3, mode="round-robin")
        assert sum(len(share) for share in shares) == len(stream)
        # deal pattern: share i holds updates i, i+3, i+6, ...
        assert shares[0][0] == stream[0]
        assert shares[1][0] == stream[1]
        assert shares[2][0] == stream[2]

    def test_single_party_gets_all(self):
        stream = star_stream()
        (share,) = split_among_parties(stream, 1)
        assert list(share) == list(stream)

    def test_more_parties_than_items(self):
        stream = stream_from_edges([Edge(0, 0)], 4, 4)
        shares = split_among_parties(stream, 5)
        assert sum(len(share) for share in shares) == 1


class TestRunProtocol:
    def test_result_matches_direct_processing(self):
        """The protocol is just a re-bracketed pass: same final answer
        as feeding the stream directly with the same seed."""
        stream = star_stream()
        direct = InsertionOnlyFEwW(64, 32, 2, seed=9).process(stream)
        shares = split_among_parties(stream, 4)
        via_protocol, _ = run_streaming_protocol(
            InsertionOnlyFEwW(64, 32, 2, seed=9), shares
        )
        assert direct.result() == via_protocol.result()

    def test_one_message_per_handoff(self):
        shares = split_among_parties(star_stream(), 5)
        _, log = run_streaming_protocol(FullStorage(64, 256), shares)
        assert len(log) == 4

    def test_message_sizes_are_space_at_handoff(self):
        """With FullStorage, the i-th message equals the edges seen so
        far: monotone non-decreasing, final message ~ whole prefix."""
        stream = star_stream()
        shares = split_among_parties(stream, 4)
        _, log = run_streaming_protocol(FullStorage(64, 256), shares)
        sizes = [words for _, _, words in log.messages]
        assert sizes == sorted(sizes)
        prefix = sum(len(share) for share in shares[:3])
        assert sizes[-1] >= prefix  # >= 2 words/edge minus vertex sharing

    def test_streaming_algorithm_messages_sublinear(self):
        """Algorithm 2's handoffs are far below FullStorage's on the
        same split — the whole point of a streaming protocol."""
        stream = star_stream()
        shares = split_among_parties(stream, 4)
        _, full_log = run_streaming_protocol(FullStorage(64, 256), shares)
        _, feww_log = run_streaming_protocol(
            InsertionOnlyFEwW(64, 32, 4, seed=2), shares
        )
        assert feww_log.max_message_words() < full_log.max_message_words()
