"""Tests for the Set-Disjointness instances and the Theorem 4.1 reduction."""

import random

import pytest

from repro.comm.set_disjointness import (
    disjoint_instance,
    intersecting_instance,
    solve_set_disjointness_via_feww,
)


class TestInstances:
    def test_disjoint_promise(self, rng):
        instance = disjoint_instance(4, 64, rng)
        assert not instance.intersecting
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (instance.sets[i] & instance.sets[j])

    def test_intersecting_promise(self, rng):
        instance = intersecting_instance(4, 64, rng)
        assert instance.intersecting
        common = set.intersection(*map(set, instance.sets))
        assert len(common) == 1
        # removing the shared element leaves the sets pairwise disjoint
        (shared,) = common
        stripped = [s - {shared} for s in instance.sets]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (stripped[i] & stripped[j])

    def test_rejects_single_party(self, rng):
        with pytest.raises(ValueError):
            disjoint_instance(1, 10, rng)

    def test_rejects_oversized_sets(self, rng):
        with pytest.raises(ValueError):
            disjoint_instance(4, 10, rng, set_size=5)

    def test_custom_set_size(self, rng):
        instance = disjoint_instance(3, 60, rng, set_size=7)
        assert all(len(s) == 7 for s in instance.sets)


class TestReduction:
    def test_detects_intersection(self):
        rng = random.Random(1)
        instance = intersecting_instance(3, 48, rng)
        answer, _ = solve_set_disjointness_via_feww(instance, k=4, seed=2)
        assert answer is True

    def test_detects_disjointness(self):
        rng = random.Random(3)
        instance = disjoint_instance(3, 48, rng)
        answer, _ = solve_set_disjointness_via_feww(instance, k=4, seed=4)
        assert answer is False

    def test_accuracy_over_many_instances(self):
        """The protocol inherits Algorithm 2's success probability."""
        correct = 0
        trials = 30
        for seed in range(trials):
            rng = random.Random(seed)
            if seed % 2 == 0:
                instance = intersecting_instance(3, 48, rng)
            else:
                instance = disjoint_instance(3, 48, rng)
            answer, _ = solve_set_disjointness_via_feww(instance, k=4, seed=seed)
            correct += answer == instance.intersecting
        assert correct >= trials - 2

    def test_messages_logged_per_handoff(self):
        rng = random.Random(5)
        instance = intersecting_instance(4, 64, rng)
        _, log = solve_set_disjointness_via_feww(instance, k=3, seed=6)
        assert len(log) == 3  # p-1 handoffs
        assert log.max_message_words() > 0

    def test_more_parties_still_works(self):
        rng = random.Random(7)
        instance = intersecting_instance(5, 100, rng)
        answer, _ = solve_set_disjointness_via_feww(instance, k=5, seed=8)
        assert answer is True
