"""Byte-level reproduction of the paper's three figures as constructions.

Figure 1: the Bit-Vector-Learning(3, 4, 5) example instance;
Figure 2: the graph encoding of Alice's strings in that instance;
Figure 3: the Augmented-Matrix-Row-Index(4, 6, 2) example instance.
"""

from repro.comm.bit_vector_learning import (
    bvl_graph_stream,
    decode_witness,
    figure1_instance,
    party_edges,
)
from repro.comm.matrix_row_index import figure3_instance


class TestFigure1:
    def test_alice_strings(self):
        instance = figure1_instance()
        alice = instance.strings[0]
        assert alice[0] == (1, 0, 0, 1, 0)
        assert alice[1] == (0, 1, 0, 0, 0)
        assert alice[2] == (0, 1, 0, 1, 1)
        assert alice[3] == (0, 1, 1, 1, 1)

    def test_bob_strings(self):
        instance = figure1_instance()
        bob = instance.strings[1]
        assert set(bob) == {0, 3}
        assert bob[0] == (1, 1, 0, 1, 1)
        assert bob[3] == (0, 1, 0, 1, 0)

    def test_charlie_strings(self):
        instance = figure1_instance()
        charlie = instance.strings[2]
        assert set(charlie) == {3}
        assert charlie[3] == (0, 0, 0, 1, 1)

    def test_charlie_must_output_six_positions(self):
        """Caption: at least 1.01 * 5, i.e. at least 6 positions."""
        instance = figure1_instance()
        import math

        assert math.ceil(1.01 * instance.k) == 6


class TestFigure2:
    def test_alice_block_reads_bit_strings_left_to_right(self):
        """Caption: the labels of the B_1-vertices connected to a_j,
        read left-to-right, spell Y_1^j."""
        instance = figure1_instance()
        alice_edges = party_edges(instance, 0)
        for vertex in range(4):
            incident = sorted(
                edge.b for edge in alice_edges if edge.a == vertex
            )
            bits = tuple(decode_witness(b, instance.k)[2] for b in incident)
            assert bits == instance.strings[0][vertex]

    def test_one_b_vertex_pair_per_bit(self):
        """Each bit position owns two B-vertices (the 1/0 pair drawn in
        the figure); exactly one of each pair is used per A-vertex."""
        instance = figure1_instance()
        for party in range(instance.p):
            for edge in party_edges(instance, party):
                _, position, _ = decode_witness(edge.b, instance.k)
                assert 0 <= position < instance.k

    def test_total_edge_count(self):
        """|E_i| = k * |X_i|: 20 + 10 + 5 edges for the example."""
        instance = figure1_instance()
        stream = bvl_graph_stream(instance)
        assert len(stream) == 5 * (4 + 2 + 1)


class TestFigure3:
    def test_alice_matrix_rows(self):
        instance = figure3_instance()
        assert instance.matrix == (
            (0, 1, 1, 1, 0, 0),
            (1, 1, 0, 0, 1, 0),
            (0, 0, 0, 0, 1, 0),
            (1, 0, 1, 0, 1, 0),
        )

    def test_bob_target_is_row_three(self):
        """Caption: Bob outputs row 3 (1-indexed), unknown to him."""
        instance = figure3_instance()
        assert instance.target_row == 2  # 0-indexed
        assert instance.target_row not in instance.known_positions

    def test_bob_known_values_match_figure(self):
        """Bob's displayed partial rows: (0,1,1,_,0,_), (1,1,0,_,1,_),
        (1,0,1,_,1,_) at known columns {0,1,2,4}."""
        instance = figure3_instance()
        values = {
            row: tuple(instance.known_value(row, c) for c in (0, 1, 2, 4))
            for row in (0, 1, 3)
        }
        assert values[0] == (0, 1, 1, 0)
        assert values[1] == (1, 1, 0, 1)
        assert values[3] == (1, 0, 1, 1)

    def test_parameters_match_caption(self):
        """Caption: Bob knows 6 - 2 = 4 random positions per other row."""
        instance = figure3_instance()
        assert instance.m - instance.k == 4
