"""Property tests over the communication-problem instance generators:
every sampled instance satisfies its problem's structural invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.bit_vector_learning import (
    bvl_graph_stream,
    random_instance as bvl_instance,
)
from repro.comm.matrix_row_index import random_instance as amri_instance
from repro.comm.set_disjointness import disjoint_instance, intersecting_instance


class TestBvlInstanceInvariants:
    @settings(max_examples=40)
    @given(st.integers(2, 4), st.integers(2, 4), st.integers(1, 6),
           st.integers(0, 1000))
    def test_structural_invariants(self, p, base, k, seed):
        n = base ** (p - 1)
        instance = bvl_instance(p, n, k, random.Random(seed))
        # nested sets with the prescribed sizes
        for i in range(p):
            expected = round(n ** (1.0 - i / (p - 1)))
            assert len(instance.index_sets[i]) == expected
            if i:
                assert set(instance.index_sets[i]) <= set(
                    instance.index_sets[i - 1]
                )
        # Z-string lengths: k bits per party containing the index
        for j in range(n):
            containing = sum(
                1 for i in range(p) if j in instance.strings[i]
            )
            assert len(instance.z_string(j)) == containing * k

    @settings(max_examples=25)
    @given(st.integers(2, 3), st.integers(2, 4), st.integers(1, 5),
           st.integers(0, 500))
    def test_graph_degrees_match_membership(self, p, base, k, seed):
        """In the Figure-2 graph, vertex j's degree is k times the number
        of parties whose set contains j; the max is k*p."""
        n = base ** (p - 1)
        instance = bvl_instance(p, n, k, random.Random(seed))
        stream = bvl_graph_stream(instance)
        degrees = stream.final_degrees()
        for j in range(n):
            containing = sum(1 for i in range(p) if j in instance.strings[i])
            assert degrees.get(j, 0) == containing * k
        assert stream.max_degree() == k * p


class TestAmriInstanceInvariants:
    @settings(max_examples=40)
    @given(st.integers(2, 6), st.integers(2, 10), st.integers(0, 1000))
    def test_structural_invariants(self, n, m, seed):
        rng = random.Random(seed)
        k = rng.randint(1, m)
        instance = amri_instance(n, m, k, rng)
        assert 0 <= instance.target_row < n
        assert set(instance.known_positions) == set(range(n)) - {
            instance.target_row
        }
        for row, columns in instance.known_positions.items():
            assert len(columns) == m - k
            assert len(set(columns)) == m - k
            assert all(0 <= column < m for column in columns)
        assert all(
            bit in (0, 1) for row in instance.matrix for bit in row
        )


class TestSetDisjointnessInvariants:
    @settings(max_examples=40)
    @given(st.integers(2, 6), st.integers(0, 1000))
    def test_promise_always_holds(self, p, seed):
        rng = random.Random(seed)
        n = p * 8
        disjoint = disjoint_instance(p, n, rng)
        for i in range(p):
            for j in range(i + 1, p):
                assert not (disjoint.sets[i] & disjoint.sets[j])
        intersecting = intersecting_instance(p, n, rng)
        common = set.intersection(*map(set, intersecting.sets))
        assert len(common) == 1
