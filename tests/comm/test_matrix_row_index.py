"""Tests for Augmented-Matrix-Row-Index and the Lemma 6.3 reduction."""

import random

import pytest

from repro.comm.matrix_row_index import (
    figure3_instance,
    random_instance,
    solve_amri_via_feww,
)


class TestInstanceDistribution:
    def test_shape(self):
        instance = random_instance(6, 10, 3, random.Random(0))
        assert len(instance.matrix) == 6
        assert all(len(row) == 10 for row in instance.matrix)
        assert 0 <= instance.target_row < 6

    def test_known_positions_cover_all_other_rows(self):
        instance = random_instance(6, 10, 3, random.Random(1))
        assert set(instance.known_positions) == set(range(6)) - {
            instance.target_row
        }
        assert all(
            len(columns) == 10 - 3
            for columns in instance.known_positions.values()
        )

    def test_known_value_lookup(self):
        instance = random_instance(5, 8, 2, random.Random(2))
        row = next(iter(instance.known_positions))
        column = instance.known_positions[row][0]
        assert instance.known_value(row, column) == instance.matrix[row][column]

    def test_known_value_rejects_target_row(self):
        instance = random_instance(5, 8, 2, random.Random(3))
        with pytest.raises(KeyError):
            instance.known_value(instance.target_row, 0)

    def test_known_value_rejects_unknown_column(self):
        instance = random_instance(5, 8, 2, random.Random(4))
        row = next(iter(instance.known_positions))
        unknown = next(
            column
            for column in range(8)
            if column not in instance.known_positions[row]
        )
        with pytest.raises(KeyError):
            instance.known_value(row, unknown)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            random_instance(5, 8, 0, random.Random(0))
        with pytest.raises(ValueError):
            random_instance(5, 8, 9, random.Random(0))


class TestFigure3:
    def test_matches_paper(self):
        instance = figure3_instance()
        assert (instance.n, instance.m, instance.k) == (4, 6, 2)
        assert instance.target_row == 2
        assert instance.target_row_bits() == (0, 0, 0, 0, 1, 0)
        assert instance.matrix[0] == (0, 1, 1, 1, 0, 0)

    def test_bob_knows_four_positions_per_other_row(self):
        instance = figure3_instance()
        assert set(instance.known_positions) == {0, 1, 3}
        assert all(len(cols) == 4 for cols in instance.known_positions.values())


class TestReduction:
    def test_figure3_end_to_end(self):
        instance = figure3_instance()
        result = solve_amri_via_feww(
            instance, alpha=1.0, seed=0, repetition_constant=4, scale=0.3
        )
        assert result.correct
        assert result.recovered_row == (0, 0, 0, 0, 1, 0)

    def test_row_with_many_ones_uses_direct_runs(self):
        """A target row of >= d ones is recovered from the non-inverted
        runs (first branch of the decision rule)."""
        rng = random.Random(5)
        while True:
            instance = random_instance(5, 8, 1, rng)
            if sum(instance.target_row_bits()) >= 4:  # d = m/2 = 4
                break
        result = solve_amri_via_feww(
            instance, alpha=2.0, seed=6, repetition_constant=6, scale=0.3
        )
        assert result.correct
        assert not result.used_inverted

    def test_row_with_few_ones_uses_inverted_runs(self):
        rng = random.Random(7)
        while True:
            instance = random_instance(5, 8, 1, rng)
            if sum(instance.target_row_bits()) < 4:
                break
        result = solve_amri_via_feww(
            instance, alpha=2.0, seed=8, repetition_constant=6, scale=0.3
        )
        assert result.correct
        assert result.used_inverted

    def test_rejects_k_too_large_for_alpha(self):
        instance = random_instance(4, 8, 3, random.Random(9))
        # d = 4, alpha = 2 -> threshold 2, need k <= 1 but k = 3
        with pytest.raises(ValueError):
            solve_amri_via_feww(instance, alpha=2.0, seed=0)

    def test_success_rate_over_distribution(self):
        correct = 0
        trials = 12
        for seed in range(trials):
            instance = random_instance(4, 8, 1, random.Random(seed))
            result = solve_amri_via_feww(
                instance, alpha=2.0, seed=seed + 50,
                repetition_constant=6, scale=0.25,
            )
            correct += result.correct
        assert correct >= trials - 1

    def test_messages_logged_per_repetition(self):
        instance = figure3_instance()
        result = solve_amri_via_feww(
            instance, alpha=1.0, seed=1, repetition_constant=2, scale=0.2
        )
        # two directions (plain + inverted) per repetition
        assert len(result.log) == 2 * result.repetitions
