"""Tests for the figure renderers shared by CLI and examples."""

from repro.comm.figures import (
    render_figure1,
    render_figure2,
    render_figure3,
    render_figures,
)


class TestRenderers:
    def test_figure1_contains_all_strings(self):
        text = render_figure1()
        for fragment in (
            "Y^1_1=10010",
            "Y^4_2=01010",
            "Y^4_3=00011",
            "Z_1 = 1001011011",
            "Z_4 = 011110101000011",
        ):
            assert fragment in text

    def test_figure2_reports_correct_protocol(self):
        text = render_figure2(seed=1)
        assert "Delta = k*p = 15" in text
        assert "all correct: True" in text
        assert "only 5 bits" in text

    def test_figure3_recovers_row(self):
        text = render_figure3(seed=2)
        assert "000010" in text
        assert "correct: True" in text
        assert "<- row J" in text

    def test_combined_output_has_all_figures(self):
        text = render_figures()
        assert text.count("Figure") == 3

    def test_renderers_deterministic_given_seed(self):
        assert render_figure2(seed=9) == render_figure2(seed=9)
        assert render_figure3(seed=9) == render_figure3(seed=9)
