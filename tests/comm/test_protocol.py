"""Tests for protocol message bookkeeping."""

import pytest

from repro.comm.protocol import MessageLog
from repro.spacemeter import WORD_BITS


class TestMessageLog:
    def test_empty_log(self):
        log = MessageLog()
        assert log.max_message_words() == 0
        assert log.total_words() == 0
        assert len(log) == 0

    def test_record_and_max(self):
        log = MessageLog()
        log.record(0, 1, 100)
        log.record(1, 2, 250)
        log.record(2, 3, 50)
        assert log.max_message_words() == 250
        assert log.total_words() == 400
        assert len(log) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MessageLog().record(0, 1, -1)

    def test_bits_conversion(self):
        log = MessageLog()
        log.record(0, 1, 7)
        assert log.max_message_bits() == 7 * WORD_BITS
