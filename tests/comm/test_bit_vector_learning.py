"""Tests for Bit-Vector-Learning: instances, graph encoding, protocols."""

import random

import pytest

from repro.comm.bit_vector_learning import (
    bvl_graph_stream,
    decode_witness,
    encode_bit,
    figure1_instance,
    party_edges,
    random_instance,
    solve_bvl_via_feww,
    trivial_bvl_protocol,
)


class TestInstanceDistribution:
    def test_nested_index_sets(self):
        instance = random_instance(3, 16, 4, random.Random(0))
        first, second, third = instance.index_sets
        assert list(first) == list(range(16))
        assert set(second) <= set(first)
        assert set(third) <= set(second)

    def test_index_set_sizes(self):
        """|X_i| = n^{1 - (i-1)/(p-1)}: 16, 4, 1 for (p=3, n=16)."""
        instance = random_instance(3, 16, 4, random.Random(1))
        assert [len(s) for s in instance.index_sets] == [16, 4, 1]

    def test_strings_exactly_on_index_sets(self):
        instance = random_instance(3, 16, 4, random.Random(2))
        for party in range(3):
            assert set(instance.strings[party]) == set(instance.index_sets[party])
            assert all(len(bits) == 4 for bits in instance.strings[party].values())

    def test_rejects_non_power_n(self):
        with pytest.raises(ValueError):
            random_instance(3, 15, 4, random.Random(0))

    def test_rejects_single_party(self):
        with pytest.raises(ValueError):
            random_instance(1, 4, 2, random.Random(0))

    def test_z_string_concatenation(self):
        instance = random_instance(3, 16, 4, random.Random(3))
        deepest = instance.index_sets[2][0]
        expected = (
            instance.strings[0][deepest]
            + instance.strings[1][deepest]
            + instance.strings[2][deepest]
        )
        assert instance.z_string(deepest) == expected


class TestFigure1:
    def test_paper_z_strings(self):
        """The four concatenations printed in Figure 1's caption."""
        instance = figure1_instance()
        assert instance.z_string(0) == tuple(int(c) for c in "1001011011")
        assert instance.z_string(1) == tuple(int(c) for c in "01000")
        assert instance.z_string(2) == tuple(int(c) for c in "01011")
        assert instance.z_string(3) == tuple(int(c) for c in "011110101000011")

    def test_shape(self):
        instance = figure1_instance()
        assert (instance.p, instance.n, instance.k) == (3, 4, 5)
        assert [len(s) for s in instance.index_sets] == [4, 2, 1]


class TestGraphEncoding:
    def test_encode_decode_roundtrip(self):
        k = 5
        for party in range(3):
            for position in range(k):
                for bit in (0, 1):
                    b = encode_bit(party, position, bit, k)
                    assert decode_witness(b, k) == (party, position, bit)

    def test_encode_rejects_bad_bit(self):
        with pytest.raises(ValueError):
            encode_bit(0, 0, 2, 5)

    def test_b_vertices_disjoint_across_parties(self):
        """Party i's B-block is [2ki, 2k(i+1))."""
        instance = figure1_instance()
        for party in range(instance.p):
            for edge in party_edges(instance, party):
                assert 2 * instance.k * party <= edge.b < 2 * instance.k * (party + 1)

    def test_deepest_element_has_degree_kp(self):
        """Δ = kp, achieved by the element of X_p (proof of Thm 4.8)."""
        instance = figure1_instance()
        stream = bvl_graph_stream(instance)
        deepest = instance.index_sets[-1][0]
        assert stream.degree_of(deepest) == instance.k * instance.p
        assert stream.max_degree() == instance.k * instance.p

    def test_figure2_example_column(self):
        """Figure 2: Alice's edges for a4 read left-to-right give 01111."""
        instance = figure1_instance()
        alice = [edge for edge in party_edges(instance, 0) if edge.a == 3]
        bits = [decode_witness(edge.b, instance.k)[2] for edge in alice]
        assert bits == [0, 1, 1, 1, 1]

    def test_every_witness_decodes_a_true_bit(self):
        instance = random_instance(3, 16, 4, random.Random(4))
        for party in range(3):
            for edge in party_edges(instance, party):
                decoded_party, position, bit = decode_witness(edge.b, instance.k)
                assert decoded_party == party
                assert instance.z_bit(edge.a, party, position) == bit


class TestProtocols:
    def test_trivial_protocol_outputs_exactly_k_bits(self):
        instance = figure1_instance()
        index, bits = trivial_bvl_protocol(instance)
        assert index == 3
        assert len(bits) == instance.k
        assert bits == instance.strings[2][3]

    def test_feww_protocol_beats_trivial(self):
        """The reduction must learn >= 1.01k bits — strictly more than
        the zero-communication protocol's k."""
        instance = random_instance(3, 16, 8, random.Random(5))
        result = solve_bvl_via_feww(instance, seed=6)
        assert result.correct
        assert result.n_bits >= 1.01 * instance.k
        assert result.n_bits > len(trivial_bvl_protocol(instance)[1])

    def test_figure1_instance_end_to_end(self):
        result = solve_bvl_via_feww(figure1_instance(), seed=7)
        assert result.correct
        assert result.n_bits >= 1.01 * 5

    def test_learned_bits_all_verified(self):
        instance = random_instance(2, 8, 6, random.Random(8))
        result = solve_bvl_via_feww(instance, seed=9, alpha=1)
        assert result.correct
        for party, position, bit in result.learned_bits:
            assert instance.z_bit(result.index, party, position) == bit

    def test_message_per_handoff(self):
        instance = random_instance(4, 27, 4, random.Random(10))
        result = solve_bvl_via_feww(instance, seed=11)
        assert len(result.log) == 3
        assert result.log.max_message_words() > 0

    def test_success_rate(self):
        successes = 0
        trials = 20
        for seed in range(trials):
            instance = random_instance(3, 16, 6, random.Random(seed))
            result = solve_bvl_via_feww(instance, seed=seed + 100)
            successes += result.correct and result.n_bits >= 1.01 * 6
        assert successes >= trials - 2
