"""Unit and property tests for s-sparse recovery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.ssparse import SSparseRecovery


def make(dim=200, s=8, delta=0.01, seed=0):
    return SSparseRecovery(dim, s, delta, random.Random(seed))


class TestConstruction:
    def test_rejects_bad_s(self):
        with pytest.raises(ValueError):
            make(s=0)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            make(delta=0.0)
        with pytest.raises(ValueError):
            make(delta=1.0)

    def test_rejects_out_of_range_index(self):
        recovery = make(dim=10)
        with pytest.raises(ValueError):
            recovery.update(10, 1)

    def test_space_scales_with_s(self):
        small = make(s=4).space_words()
        large = make(s=16).space_words()
        assert large > small


class TestRecovery:
    def test_empty_vector(self):
        assert make().decode() == {}

    def test_single_coordinate(self):
        recovery = make()
        recovery.update(17, 3)
        assert recovery.decode() == {17: 3}

    def test_exact_sparsity_boundary(self):
        recovery = make(s=8, seed=1)
        for index in range(8):
            recovery.update(index * 7, index + 1)
        decoded = recovery.decode()
        assert decoded == {index * 7: index + 1 for index in range(8)}

    def test_cancellation_reduces_sparsity(self):
        recovery = make(s=2, seed=2)
        # 5 coordinates inserted, 4 cancelled: effective sparsity 1.
        for index in range(5):
            recovery.update(index, 1)
        for index in range(4):
            recovery.update(index, -1)
        assert recovery.decode() == {4: 1}

    def test_overfull_vector_returns_none(self):
        recovery = make(s=2, seed=3)
        for index in range(0, 120, 2):
            recovery.update(index, 1)
        assert recovery.decode() is None

    def test_negative_values_recovered(self):
        recovery = make(seed=4)
        recovery.update(3, -5)
        recovery.update(9, 2)
        assert recovery.decode() == {3: -5, 9: 2}

    def test_decode_does_not_mutate(self):
        recovery = make(s=3, seed=5)
        for index in (1, 2, 3):
            recovery.update(index, 1)
        first = recovery.decode()
        second = recovery.decode()
        assert first == second == {1: 1, 2: 1, 3: 1}


@st.composite
def sparse_vectors(draw):
    """Vectors of support size <= 6 over dimension 100, via signed updates."""
    support = draw(
        st.lists(st.integers(0, 99), min_size=0, max_size=6, unique=True)
    )
    values = [draw(st.integers(-5, 5).filter(lambda v: v != 0)) for _ in support]
    return dict(zip(support, values))


class TestProperties:
    @settings(max_examples=100)
    @given(sparse_vectors(), st.integers(0, 5))
    def test_recovers_any_sparse_vector(self, vector, seed):
        recovery = SSparseRecovery(100, 6, 0.001, random.Random(seed))
        for index, value in vector.items():
            # split each value into multiple updates to exercise turnstile
            recovery.update(index, value - 1)
            recovery.update(index, 1)
        assert recovery.decode() == vector

    @settings(max_examples=50)
    @given(st.permutations(list(range(8))), st.integers(0, 3))
    def test_update_order_irrelevant(self, order, seed):
        baseline = SSparseRecovery(50, 8, 0.01, random.Random(seed))
        shuffled = SSparseRecovery(50, 8, 0.01, random.Random(seed))
        for index in range(8):
            baseline.update(index, index + 1)
        for index in order:
            shuffled.update(index, index + 1)
        assert baseline.decode() == shuffled.decode()
