"""Unit and statistical tests for the ℓ₀-sampler and the sampler bank."""

import random
from collections import Counter

import pytest

from repro.sketch.l0 import L0Sampler, L0SamplerBank, l0_sampler_space_words


class TestL0SamplerBasics:
    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            L0Sampler(0, 0.1, random.Random(0))

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            L0Sampler(10, 0.0, random.Random(0))

    def test_empty_vector_samples_none(self):
        sampler = L0Sampler(64, 0.05, random.Random(1))
        assert sampler.sample() is None

    def test_singleton_support(self):
        sampler = L0Sampler(64, 0.05, random.Random(2))
        sampler.update(42, 1)
        assert sampler.sample() == 42

    def test_sample_in_support(self):
        rng = random.Random(3)
        sampler = L0Sampler(128, 0.05, rng)
        support = {3, 17, 99, 120}
        for index in support:
            sampler.update(index, 1)
        assert sampler.sample() in support

    def test_survives_cancellation(self):
        """The defining ℓ₀ property: deleted coordinates never sampled."""
        rng = random.Random(4)
        sampler = L0Sampler(128, 0.05, rng)
        for index in range(100):
            sampler.update(index, 1)
        for index in range(99):
            sampler.update(index, -1)
        assert sampler.sample() == 99

    def test_full_cancellation_returns_none(self):
        sampler = L0Sampler(32, 0.05, random.Random(5))
        for index in range(20):
            sampler.update(index, 1)
            sampler.update(index, -1)
        assert sampler.sample() is None

    def test_space_words_positive_and_static(self):
        sampler = L0Sampler(256, 0.05, random.Random(6))
        before = sampler.space_words()
        for index in range(50):
            sampler.update(index, 1)
        assert sampler.space_words() == before > 0


class TestL0SamplerUniformity:
    def test_approximately_uniform_over_support(self):
        """Across independent samplers, each support element is sampled
        with frequency close to 1/|support|."""
        support = list(range(0, 60, 6))  # 10 elements
        counts = Counter()
        trials = 400
        master = random.Random(7)
        for _ in range(trials):
            sampler = L0Sampler(64, 0.05, random.Random(master.getrandbits(64)))
            for index in support:
                sampler.update(index, 1)
            outcome = sampler.sample()
            assert outcome in support
            counts[outcome] += 1
        expected = trials / len(support)
        for index in support:
            assert counts[index] > 0.3 * expected
            assert counts[index] < 2.5 * expected


class TestPaperSpaceFormula:
    def test_grows_with_dim(self):
        assert l0_sampler_space_words(2**20, 0.01) > l0_sampler_space_words(
            2**10, 0.01
        )

    def test_grows_with_confidence(self):
        assert l0_sampler_space_words(1024, 1e-9) > l0_sampler_space_words(
            1024, 0.1
        )

    def test_minimum_one_word(self):
        assert l0_sampler_space_words(1, 0.5) >= 1


class TestBankModes:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            L0SamplerBank(10, 2, 0.1, random.Random(0), mode="magic")

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            L0SamplerBank(10, -1, 0.1, random.Random(0))

    def test_exact_mode_samples_from_support(self):
        bank = L0SamplerBank(64, 8, 0.05, random.Random(1), mode="exact")
        support = {5, 10, 15}
        for index in support:
            bank.update(index, 1)
        for outcome in bank.sample_all():
            assert outcome is None or outcome in support

    def test_fast_mode_samples_from_support(self):
        bank = L0SamplerBank(64, 50, 0.05, random.Random(2), mode="fast")
        support = {5, 10, 15}
        for index in support:
            bank.update(index, 1)
        outcomes = bank.sample_all()
        assert len(outcomes) == 50
        assert all(outcome in support for outcome in outcomes if outcome is not None)

    def test_fast_mode_empty_support(self):
        bank = L0SamplerBank(64, 5, 0.05, random.Random(3), mode="fast")
        assert bank.sample_all() == [None] * 5

    def test_fast_mode_respects_deletions(self):
        bank = L0SamplerBank(64, 30, 0.05, random.Random(4), mode="fast")
        bank.update(1, 1)
        bank.update(2, 1)
        bank.update(1, -1)
        outcomes = [outcome for outcome in bank.sample_all() if outcome is not None]
        assert outcomes and all(outcome == 2 for outcome in outcomes)

    def test_mode_distributions_agree(self):
        """Exact and fast banks draw from the same distribution: compare
        per-element frequencies over many draws on a fixed support."""
        support = list(range(0, 40, 8))  # 5 elements
        exact_counts, fast_counts = Counter(), Counter()
        master = random.Random(5)
        trials = 60
        for _ in range(trials):
            seed = master.getrandbits(64)
            exact = L0SamplerBank(64, 5, 0.05, random.Random(seed), mode="exact")
            fast = L0SamplerBank(64, 5, 0.05, random.Random(seed + 1), mode="fast")
            for index in support:
                exact.update(index, 1)
                fast.update(index, 1)
            exact_counts.update(o for o in exact.sample_all() if o is not None)
            fast_counts.update(o for o in fast.sample_all() if o is not None)
        total_exact = sum(exact_counts.values())
        total_fast = sum(fast_counts.values())
        for index in support:
            exact_freq = exact_counts[index] / total_exact
            fast_freq = fast_counts[index] / total_fast
            assert abs(exact_freq - fast_freq) < 0.12

    def test_fast_space_uses_paper_formula(self):
        bank = L0SamplerBank(1024, 7, 0.01, random.Random(6), mode="fast")
        assert bank.space_words() == 7 * l0_sampler_space_words(1024, 0.01)

    def test_exact_space_sums_real_structures(self):
        bank = L0SamplerBank(64, 3, 0.05, random.Random(7), mode="exact")
        assert bank.space_words() == sum(
            sampler.space_words() for sampler in bank._samplers
        )
