"""Unit tests for exact counters and support tracking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sketch.exact import DegreeCounter, ExactSupport


class TestDegreeCounter:
    def test_initial_degrees_zero(self):
        counter = DegreeCounter(5)
        assert all(counter.degree(a) == 0 for a in range(5))

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            DegreeCounter(0)

    def test_increment_returns_new_value(self):
        counter = DegreeCounter(3)
        assert counter.increment(1) == 1
        assert counter.increment(1) == 2

    def test_decrement(self):
        counter = DegreeCounter(3)
        counter.increment(0, 5)
        assert counter.increment(0, -2) == 3

    def test_negative_degree_rejected(self):
        counter = DegreeCounter(3)
        with pytest.raises(ValueError):
            counter.increment(0, -1)

    def test_out_of_range_vertex(self):
        counter = DegreeCounter(3)
        with pytest.raises(ValueError):
            counter.increment(3)
        with pytest.raises(ValueError):
            counter.degree(-1)

    def test_vertices_with_degree_at_least(self):
        counter = DegreeCounter(4)
        counter.increment(0, 3)
        counter.increment(2, 5)
        assert counter.vertices_with_degree_at_least(3) == [0, 2]
        assert counter.vertices_with_degree_at_least(4) == [2]
        assert counter.vertices_with_degree_at_least(6) == []

    def test_max_degree(self):
        counter = DegreeCounter(4)
        counter.increment(3, 7)
        assert counter.max_degree() == 7

    def test_space_is_n_words(self):
        assert DegreeCounter(100).space_words() == 100


class TestExactSupport:
    def test_empty(self):
        support = ExactSupport(10)
        assert support.support() == []
        assert support.support_size() == 0

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            ExactSupport(0)

    def test_insert_and_value(self):
        support = ExactSupport(10)
        support.update(3, 2)
        assert support.support() == [3]
        assert support.value(3) == 2
        assert 3 in support

    def test_zero_crossing_removes(self):
        support = ExactSupport(10)
        support.update(3, 2)
        support.update(3, -2)
        assert 3 not in support
        assert support.value(3) == 0

    def test_out_of_range(self):
        support = ExactSupport(10)
        with pytest.raises(ValueError):
            support.update(10, 1)

    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(-3, 3).filter(bool)),
            max_size=50,
        )
    )
    def test_matches_dict_replay(self, updates):
        support = ExactSupport(20)
        reference = {}
        for index, delta in updates:
            support.update(index, delta)
            reference[index] = reference.get(index, 0) + delta
            if reference[index] == 0:
                del reference[index]
        assert support.support() == sorted(reference)
        assert dict(support.items()) == reference
