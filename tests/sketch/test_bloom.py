"""Tests for the Bloom filter and the streaming duplicate filter."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.bloom import BloomFilter, DuplicateFilter


class TestBloomFilter:
    def test_rejects_bad_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            BloomFilter(0, 0.01, rng)
        with pytest.raises(ValueError):
            BloomFilter(10, 0.0, rng)
        with pytest.raises(ValueError):
            BloomFilter(10, 1.0, rng)

    def test_no_false_negatives(self):
        bloom = BloomFilter(200, 0.01, random.Random(1))
        keys = list(range(0, 2000, 10))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_fresh_filter_empty(self):
        bloom = BloomFilter(100, 0.01, random.Random(2))
        assert all(key not in bloom for key in range(50))
        assert bloom.expected_fp_rate() == 0.0

    def test_false_positive_rate_near_target(self):
        target = 0.02
        bloom = BloomFilter(500, target, random.Random(3))
        for key in range(500):
            bloom.add(key)
        false_positives = sum(1 for key in range(10_000, 30_000) if key in bloom)
        assert false_positives / 20_000 < 4 * target

    def test_expected_fp_rate_grows_with_load(self):
        bloom = BloomFilter(100, 0.01, random.Random(4))
        rates = []
        for key in range(300):
            bloom.add(key)
            if key % 100 == 99:
                rates.append(bloom.expected_fp_rate())
        assert rates == sorted(rates)

    def test_space_independent_of_insertions(self):
        bloom = BloomFilter(100, 0.01, random.Random(5))
        before = bloom.space_words()
        for key in range(1000):
            bloom.add(key)
        assert bloom.space_words() == before

    def test_lower_fp_costs_more_space(self):
        rng = random.Random(6)
        loose = BloomFilter(1000, 0.1, rng).space_words()
        tight = BloomFilter(1000, 0.001, rng).space_words()
        assert tight > loose

    @settings(max_examples=30)
    @given(st.sets(st.integers(0, 10_000), max_size=50))
    def test_membership_superset_of_insertions(self, keys):
        bloom = BloomFilter(64, 0.05, random.Random(7))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)


class TestDuplicateFilter:
    def test_first_arrival_admitted(self):
        dedup = DuplicateFilter(10, 10, capacity=100, fp_rate=0.01,
                                rng=random.Random(8))
        assert dedup.admit(3, 4) is True

    def test_repeat_suppressed(self):
        dedup = DuplicateFilter(10, 10, capacity=100, fp_rate=0.01,
                                rng=random.Random(9))
        assert dedup.admit(3, 4) is True
        assert dedup.admit(3, 4) is False
        assert dedup.admit(3, 4) is False

    def test_distinct_pairs_mostly_admitted(self):
        dedup = DuplicateFilter(50, 50, capacity=1000, fp_rate=0.01,
                                rng=random.Random(10))
        admitted = sum(dedup.admit(a, b) for a in range(30) for b in range(30))
        assert admitted >= 0.97 * 900

    def test_out_of_range_rejected(self):
        dedup = DuplicateFilter(5, 5, capacity=10, fp_rate=0.1,
                                rng=random.Random(11))
        with pytest.raises(ValueError):
            dedup.admit(5, 0)
        with pytest.raises(ValueError):
            dedup.admit(0, 5)

    def test_space_sublinear_in_pairs(self):
        """The whole point: far less space than remembering every pair."""
        dedup = DuplicateFilter(1000, 1000, capacity=5000, fp_rate=0.01,
                                rng=random.Random(12))
        pairs = 0
        for a in range(70):
            for b in range(70):
                dedup.admit(a, b)
                pairs += 1
        assert dedup.space_words() < pairs

    def test_never_inflates_degrees(self):
        """Suppression errors only drop genuine pairs, never duplicate
        them: downstream degree <= true distinct degree."""
        rng = random.Random(13)
        dedup = DuplicateFilter(20, 200, capacity=500, fp_rate=0.05, rng=rng)
        true_pairs = set()
        admitted_pairs = []
        for _ in range(2000):
            a, b = rng.randrange(20), rng.randrange(200)
            if dedup.admit(a, b):
                admitted_pairs.append((a, b))
            true_pairs.add((a, b))
        assert len(admitted_pairs) == len(set(admitted_pairs))  # no dupes
        assert set(admitted_pairs) <= true_pairs
