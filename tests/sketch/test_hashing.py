"""Unit and statistical tests for the k-wise hash family."""

import random
from collections import Counter

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sketch.hashing import PRIME_61, KWiseHash, mulmod_p61, random_kwise


class TestConstruction:
    def test_requires_coefficients(self):
        with pytest.raises(ValueError):
            KWiseHash([], 10)

    def test_requires_positive_range(self):
        with pytest.raises(ValueError):
            KWiseHash([1], 0)

    def test_rejects_out_of_field_coefficient(self):
        with pytest.raises(ValueError):
            KWiseHash([PRIME_61], 10)

    def test_independence_property(self):
        hash_function = KWiseHash([1, 2, 3], 10)
        assert hash_function.independence == 3

    def test_space_words(self):
        assert KWiseHash([1, 2], 10).space_words() == 3

    def test_random_kwise_k_validation(self):
        with pytest.raises(ValueError):
            random_kwise(0, 10, random.Random(0))


class TestEvaluation:
    def test_constant_polynomial(self):
        hash_function = KWiseHash([7], 100)
        assert hash_function(0) == 7
        assert hash_function(12345) == 7

    def test_linear_polynomial(self):
        # h(x) = (2x + 3) mod p mod 10
        hash_function = KWiseHash([2, 3], 10)
        assert hash_function(5) == (2 * 5 + 3) % 10

    def test_output_in_range(self):
        rng = random.Random(1)
        hash_function = random_kwise(4, 17, rng)
        assert all(0 <= hash_function(x) < 17 for x in range(1000))

    def test_field_value_consistent_with_call(self):
        rng = random.Random(2)
        hash_function = random_kwise(3, 16, rng)
        for x in range(50):
            assert hash_function(x) == hash_function.field_value(x) % 16

    def test_deterministic(self):
        hash_function = KWiseHash([5, 6, 7], 97)
        assert [hash_function(x) for x in range(20)] == [
            hash_function(x) for x in range(20)
        ]

    @given(st.integers(0, 2**61 - 2))
    def test_never_out_of_range(self, x):
        hash_function = KWiseHash([1, 0], 13)
        assert 0 <= hash_function(x) < 13


class TestStatistics:
    def test_marginal_uniformity(self):
        """Each bucket receives ~1/range of inputs (chi-square style check)."""
        rng = random.Random(3)
        range_size = 8
        trials = 8000
        counts = Counter()
        hash_function = random_kwise(2, range_size, rng)
        for x in range(trials):
            counts[hash_function(x)] += 1
        expected = trials / range_size
        for bucket in range(range_size):
            assert abs(counts[bucket] - expected) < 0.25 * expected

    def test_pairwise_collision_rate(self):
        """Collision probability of a 2-wise family is ~1/range."""
        rng = random.Random(4)
        range_size = 64
        collisions = 0
        trials = 300
        for trial in range(trials):
            hash_function = random_kwise(2, range_size, rng)
            if hash_function(2 * trial) == hash_function(2 * trial + 1):
                collisions += 1
        # expected ~ trials/range = 4.7; allow generous slack
        assert collisions <= 20

    def test_different_draws_differ(self):
        rng = random.Random(5)
        first = random_kwise(2, 1000, rng)
        second = random_kwise(2, 1000, rng)
        assert any(first(x) != second(x) for x in range(100))


class TestBatchEvaluation:
    """The vectorized path must be bit-identical to the scalar one."""

    @given(
        st.integers(0, PRIME_61 - 1),
        st.integers(0, PRIME_61 - 1),
    )
    def test_mulmod_matches_python_bigints(self, a, b):
        got = mulmod_p61(np.uint64(a), np.uint64(b))
        assert int(got) == (a * b) % PRIME_61

    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    @pytest.mark.parametrize("range_size", [2, 7, 256, 10**9])
    def test_batch_matches_scalar(self, k, range_size):
        rng = random.Random(17)
        hash_function = random_kwise(k, range_size, rng)
        xs = (
            [rng.randrange(2**62) for _ in range(500)]
            + list(range(32))
            + [PRIME_61 - 1, PRIME_61, PRIME_61 + 1]
        )
        arr = np.array(xs, dtype=np.uint64)
        assert hash_function.batch(arr).tolist() == [hash_function(x) for x in xs]
        assert hash_function.field_batch(arr).tolist() == [
            hash_function.field_value(x) for x in xs
        ]

    def test_empty_batch(self):
        hash_function = random_kwise(2, 16, random.Random(0))
        assert hash_function.batch(np.array([], dtype=np.uint64)).tolist() == []
