"""Unit and property tests for 1-sparse recovery cells."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.onesparse import CellState, OneSparseCell


def make_cell(dim=100, seed=0):
    return OneSparseCell(dim, random.Random(seed))


class TestBasics:
    def test_fresh_cell_is_zero(self):
        cell = make_cell()
        assert cell.decode().state is CellState.ZERO
        assert cell.is_zero()

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            OneSparseCell(0, random.Random(0))

    def test_rejects_out_of_range_index(self):
        cell = make_cell(dim=10)
        with pytest.raises(ValueError):
            cell.update(10, 1)

    def test_single_insert_decodes(self):
        cell = make_cell()
        cell.update(42, 1)
        result = cell.decode()
        assert result.state is CellState.ONE_SPARSE
        assert result.index == 42
        assert result.value == 1

    def test_weighted_single_coordinate(self):
        cell = make_cell()
        cell.update(7, 5)
        cell.update(7, -2)
        result = cell.decode()
        assert result.state is CellState.ONE_SPARSE
        assert (result.index, result.value) == (7, 3)

    def test_insert_delete_cancels_to_zero(self):
        cell = make_cell()
        cell.update(13, 1)
        cell.update(13, -1)
        assert cell.decode().state is CellState.ZERO

    def test_two_coordinates_collide(self):
        cell = make_cell()
        cell.update(1, 1)
        cell.update(2, 1)
        assert cell.decode().state is CellState.COLLISION

    def test_collision_resolves_after_deletion(self):
        cell = make_cell()
        cell.update(1, 1)
        cell.update(2, 1)
        cell.update(2, -1)
        result = cell.decode()
        assert result.state is CellState.ONE_SPARSE
        assert result.index == 1

    def test_space_is_constant(self):
        cell = make_cell()
        before = cell.space_words()
        for i in range(50):
            cell.update(i, 1)
        assert cell.space_words() == before == 4


class TestFingerprintCatchesFakes:
    def test_anti_symmetric_pair_not_one_sparse(self):
        """Updates (4,+2),(2,-1): weight 1 and dot 6 mimic coordinate 6
        with value 1; only the fingerprint can expose the fake."""
        for seed in range(30):
            cell = OneSparseCell(100, random.Random(seed))
            cell.update(4, 2)
            cell.update(2, -1)
            assert cell.decode().state is CellState.COLLISION

    def test_crafted_dot_alias(self):
        """Updates (0,+1),(20,+1),(10,-1): weight 1, dot 10 — looks like
        coordinate 10 with value 1, but the support is {0, 20, 10 removed}."""
        for seed in range(30):
            cell = OneSparseCell(100, random.Random(seed))
            cell.update(0, 1)
            cell.update(20, 1)
            cell.update(10, -1)
            # weight = 1, dot = 0 + 20 - 10 = 10: index 10 is a fake alias.
            assert cell.decode().state is CellState.COLLISION


@st.composite
def update_batches(draw):
    n_updates = draw(st.integers(1, 30))
    return [
        (draw(st.integers(0, 49)), draw(st.sampled_from([-2, -1, 1, 2, 3])))
        for _ in range(n_updates)
    ]


class TestProperties:
    @settings(max_examples=200)
    @given(update_batches(), st.integers(0, 10))
    def test_decode_matches_reference(self, updates, seed):
        """Whatever the update sequence, decode agrees with an exact replay."""
        cell = OneSparseCell(50, random.Random(seed))
        reference = {}
        for index, delta in updates:
            cell.update(index, delta)
            reference[index] = reference.get(index, 0) + delta
            if reference[index] == 0:
                del reference[index]
        result = cell.decode()
        if len(reference) == 0:
            assert result.state is CellState.ZERO
        elif len(reference) == 1:
            ((index, value),) = reference.items()
            assert result.state is CellState.ONE_SPARSE
            assert (result.index, result.value) == (index, value)
        else:
            # >1-sparse: must not claim 1-sparsity of a *wrong* coordinate.
            # (A false ONE_SPARSE verdict has probability <= dim/p ~ 2^-55.)
            assert result.state is CellState.COLLISION
