"""Bit-identity of the stacked recovery kernels against cell grids.

:class:`~repro.sketch.ssparse.SSparseRecovery` and
:class:`~repro.sketch.l0.L0Sampler` absorb batches through fused NumPy
accumulator planes (one scatter per plane across all rows — and, for the
sampler, all levels).  The frozen reference is the structure they
replaced: a grid of :class:`~repro.sketch.onesparse.OneSparseCell`
objects updated one ``(row, item)`` pair at a time.  The legacy grids
are embedded here with the exact RNG draw order of the stacked
structures (row hashes first, then fingerprint bases row-major), so
same-seed instances share every hash and base and any accumulator
divergence is a real equivalence break.
"""

import math
import random

import numpy as np
import pytest

from repro.sketch.hashing import PRIME_61, random_kwise
from repro.sketch.l0 import L0Sampler, L0SamplerBank
from repro.sketch.onesparse import OneSparseCell
from repro.sketch.ssparse import (
    SSparseRecovery,
    _decode_cell,
    scatter_cell_updates,
)

DIM = 600
SEED = 41


class _LegacySSparse:
    """The pre-stacking s-sparse recovery: one OneSparseCell per bucket.

    Reproduces ``SSparseRecovery.__init__``'s randomness consumption
    exactly: ``n_rows`` pairwise-independent row hashes first, then one
    fingerprint base per cell in row-major order (each drawn inside the
    cell constructor, as the original grid did).
    """

    def __init__(self, dim, s, delta, rng):
        self.dim = dim
        self.s = s
        self.n_buckets = 2 * s
        self.n_rows = max(1, math.ceil(math.log2(max(s, 2) / delta)))
        self._hashes = [
            random_kwise(2, self.n_buckets, rng) for _ in range(self.n_rows)
        ]
        self._cells = [
            [OneSparseCell(dim, rng) for _ in range(self.n_buckets)]
            for _ in range(self.n_rows)
        ]

    def update(self, index, delta):
        for row, hash_function in enumerate(self._hashes):
            self._cells[row][hash_function(index)].update(index, delta)


class _LegacyL0Sampler:
    """The pre-stacking ℓ₀-sampler: per-level legacy recovery grids.

    Randomness order matches ``L0Sampler.__init__``: level hash, then
    tiebreak hash, then the per-level recoveries in level order.
    """

    def __init__(self, dim, delta, rng):
        self.dim = dim
        self.n_levels = max(1, math.ceil(math.log2(dim)) + 1)
        sparsity = max(2, math.ceil(math.log2(2.0 / delta)))
        self._level_hash = random_kwise(2, 1 << self.n_levels, rng)
        self._tiebreak = random_kwise(2, 1 << 61, rng)
        self._recoveries = [
            _LegacySSparse(dim, sparsity, delta / (2 * self.n_levels), rng)
            for _ in range(self.n_levels)
        ]

    def _level_of(self, index):
        value = self._level_hash(index)
        level = 0
        while level + 1 < self.n_levels and value % (1 << (level + 1)) == 0:
            level += 1
        return level

    def update(self, index, delta):
        for level in range(self._level_of(index) + 1):
            self._recoveries[level].update(index, delta)


def _signed_stream(seed=17, size=400, dim=DIM, magnitudes=(1,)):
    """Random signed updates with some coordinates cancelling to zero."""
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, dim, size=size).astype(np.int64)
    deltas = rng.choice(magnitudes, size=size).astype(np.int64) * np.where(
        rng.random(size) < 0.5, 1, -1
    ).astype(np.int64)
    # Force exact cancellations: every update in the last fifth undoes
    # an earlier one.
    tail = size // 5
    indices[-tail:] = indices[:tail]
    deltas[-tail:] = -deltas[:tail]
    return indices, deltas


def _assert_recovery_matches_grid(recovery, grid):
    """Stacked planes vs the legacy cell grid, accumulator by accumulator."""
    for row in range(grid.n_rows):
        for bucket, cell in enumerate(grid._cells[row]):
            assert int(recovery._weight[row, bucket]) == cell._weight
            assert int(recovery._dot[row, bucket]) == cell._dot
            assert int(recovery._fingerprint[row, bucket]) == cell._fingerprint
            assert int(recovery._r[row, bucket]) == cell._r


class TestStackedSSparse:
    S = 4
    DELTA = 0.1

    def _pair(self):
        current = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        legacy = _LegacySSparse(DIM, self.S, self.DELTA, random.Random(SEED))
        return current, legacy

    def test_same_seed_shares_hashes_and_bases(self):
        current, legacy = self._pair()
        assert current.n_rows == legacy.n_rows
        assert current.n_buckets == legacy.n_buckets
        for mine, theirs in zip(current._hashes, legacy._hashes):
            assert mine.coefficients == theirs.coefficients
        _assert_recovery_matches_grid(current, legacy)

    @pytest.mark.parametrize("chunk", (1, 53, 400))
    @pytest.mark.parametrize("magnitudes", ((1,), (1, 3, 7)))
    def test_batch_planes_match_per_item_cells(self, chunk, magnitudes):
        current, legacy = self._pair()
        indices, deltas = _signed_stream(magnitudes=magnitudes)
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            legacy.update(index, delta)
        for lo in range(0, len(indices), chunk):
            current.update_batch(
                indices[lo : lo + chunk], deltas[lo : lo + chunk]
            )
        _assert_recovery_matches_grid(current, legacy)

    def test_scalar_update_matches_batch(self):
        by_item = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        by_batch = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        indices, deltas = _signed_stream()
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            by_item.update(index, delta)
        by_batch.update_batch(indices, deltas)
        assert np.array_equal(by_item._weight, by_batch._weight)
        assert np.array_equal(by_item._dot, by_batch._dot)
        assert np.array_equal(by_item._fingerprint, by_batch._fingerprint)

    def test_power_table_fallback_is_bit_identical(self):
        # The windowed power tables are a pure cache: forcing the
        # square-and-multiply fallback must land identical fingerprints.
        tabled = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        fallback = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        indices, deltas = _signed_stream()
        tabled.update_batch(indices, deltas)
        assert tabled._power_tables is not None  # cache actually in play
        addr, weight_values, dot_values, contrib = fallback.batch_contributions(
            indices, deltas, power_tables=False
        )
        scatter_cell_updates(
            fallback._weight.reshape(-1),
            fallback._dot.reshape(-1),
            fallback._fingerprint.reshape(-1),
            addr,
            weight_values,
            dot_values,
            contrib,
        )
        assert np.array_equal(tabled._fingerprint, fallback._fingerprint)
        assert np.array_equal(tabled._weight, fallback._weight)
        assert np.array_equal(tabled._dot, fallback._dot)

    def test_per_cell_decode_matches_onesparse_cell(self):
        current, legacy = self._pair()
        indices, deltas = _signed_stream()
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            legacy.update(index, delta)
        current.update_batch(indices, deltas)
        for row in range(legacy.n_rows):
            for bucket, cell in enumerate(legacy._cells[row]):
                assert (
                    _decode_cell(
                        int(current._weight[row, bucket]),
                        int(current._dot[row, bucket]),
                        int(current._fingerprint[row, bucket]),
                        int(current._r[row, bucket]),
                        DIM,
                    )
                    == cell.decode()
                )

    def test_decode_recovers_exact_net_support(self):
        current = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        truth = {3: 2, 77: -1, 400: 5}
        updates = [(3, 1), (77, -1), (400, 5), (3, 1), (9, 4), (9, -4)]
        current.update_batch(
            np.array([i for i, _ in updates], dtype=np.int64),
            np.array([d for _, d in updates], dtype=np.int64),
        )
        assert current.decode() == truth

    def test_merge_matches_single_pass(self):
        left = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        right = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        single = SSparseRecovery(DIM, self.S, self.DELTA, random.Random(SEED))
        indices, deltas = _signed_stream()
        half = len(indices) // 2
        left.update_batch(indices[:half], deltas[:half])
        right.update_batch(indices[half:], deltas[half:])
        single.update_batch(indices, deltas)
        merged = left.merge(right)
        assert np.array_equal(merged._weight, single._weight)
        assert np.array_equal(merged._dot, single._dot)
        assert np.array_equal(merged._fingerprint, single._fingerprint)
        assert merged.decode() == single.decode()

    def test_space_words_matches_cell_grid_accounting(self):
        current, legacy = self._pair()
        grid_words = sum(
            cell.space_words() for row in legacy._cells for cell in row
        ) + sum(h.space_words() for h in legacy._hashes)
        assert current.space_words() == grid_words


class TestStackedL0Sampler:
    DELTA = 0.1

    def _pair(self):
        current = L0Sampler(DIM, self.DELTA, random.Random(SEED))
        legacy = _LegacyL0Sampler(DIM, self.DELTA, random.Random(SEED))
        return current, legacy

    def test_same_seed_shares_every_hash(self):
        current, legacy = self._pair()
        assert current.n_levels == legacy.n_levels
        assert (
            current._level_hash.coefficients == legacy._level_hash.coefficients
        )
        assert current._tiebreak.coefficients == legacy._tiebreak.coefficients
        for level, grid in enumerate(legacy._recoveries):
            for mine, theirs in zip(current._row_hashes[level], grid._hashes):
                assert mine.coefficients == theirs.coefficients

    def test_level_assignment_matches_legacy(self):
        current, legacy = self._pair()
        indices = np.arange(DIM, dtype=np.int64)
        levels = current._levels_of_batch(indices)
        for index in range(DIM):
            assert int(levels[index]) == legacy._level_of(index)

    @pytest.mark.parametrize("magnitudes", ((1,), (1, 3, 7)))
    def test_batch_planes_match_per_item_cell_grids(self, magnitudes):
        current, legacy = self._pair()
        indices, deltas = _signed_stream(magnitudes=magnitudes)
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            legacy.update(index, delta)
        current.update_batch(indices, deltas)
        for level, grid in enumerate(legacy._recoveries):
            _assert_recovery_matches_grid(current._recovery(level), grid)

    def test_item_path_matches_batch_path(self):
        by_item = L0Sampler(DIM, self.DELTA, random.Random(SEED))
        by_batch = L0Sampler(DIM, self.DELTA, random.Random(SEED))
        indices, deltas = _signed_stream()
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            by_item.update(index, delta)
        by_batch.update_batch(indices, deltas)
        assert np.array_equal(by_item._weight, by_batch._weight)
        assert np.array_equal(by_item._dot, by_batch._dot)
        assert np.array_equal(by_item._fingerprint, by_batch._fingerprint)
        assert by_item.sample() == by_batch.sample()

    def test_sample_draws_from_true_support(self):
        sampler = L0Sampler(DIM, self.DELTA, random.Random(SEED))
        indices, deltas = _signed_stream()
        sampler.update_batch(indices, deltas)
        net = {}
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            net[index] = net.get(index, 0) + delta
        support = {index for index, value in net.items() if value}
        sampled = sampler.sample()
        assert sampled is not None
        assert sampled in support

    def test_merge_matches_single_pass(self):
        left = L0Sampler(DIM, self.DELTA, random.Random(SEED))
        right = L0Sampler(DIM, self.DELTA, random.Random(SEED))
        single = L0Sampler(DIM, self.DELTA, random.Random(SEED))
        indices, deltas = _signed_stream()
        half = len(indices) // 2
        left.update_batch(indices[:half], deltas[:half])
        right.update_batch(indices[half:], deltas[half:])
        single.update_batch(indices, deltas)
        merged = left.merge(right)
        assert np.array_equal(merged._weight, single._weight)
        assert np.array_equal(merged._dot, single._dot)
        assert np.array_equal(merged._fingerprint, single._fingerprint)
        assert merged.sample() == single.sample()

    def test_space_words_matches_legacy_accounting(self):
        current, legacy = self._pair()
        grid_words = sum(
            cell.space_words()
            for grid in legacy._recoveries
            for row in grid._cells
            for cell in row
        )
        hash_words = sum(
            h.space_words()
            for grid in legacy._recoveries
            for h in grid._hashes
        )
        expected = (
            grid_words
            + hash_words
            + legacy._level_hash.space_words()
            + legacy._tiebreak.space_words()
        )
        assert current.space_words() == expected


class TestExactBankFusion:
    COUNT = 3
    DELTA = 0.1

    def _bank(self):
        return L0SamplerBank(
            DIM, self.COUNT, self.DELTA, random.Random(SEED), mode="exact"
        )

    def test_fused_batch_matches_per_item_fanout(self):
        by_item = self._bank()
        by_batch = self._bank()
        indices, deltas = _signed_stream()
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            by_item.update(index, delta)
        by_batch.update_batch(indices, deltas)
        by_batch._flush_updates()  # batch ingest is deferred until a read
        for mine, theirs in zip(by_item._samplers, by_batch._samplers):
            assert np.array_equal(mine._weight, theirs._weight)
            assert np.array_equal(mine._dot, theirs._dot)
            assert np.array_equal(mine._fingerprint, theirs._fingerprint)
        assert by_item.sample_all() == by_batch.sample_all()

    def test_prenetted_path_matches_unnetted(self):
        netted = self._bank()
        unnetted = self._bank()
        indices, deltas = _signed_stream()
        unnetted.update_batch(indices, deltas)
        unique, inverse = np.unique(indices, return_inverse=True)
        net = np.zeros(len(unique), dtype=np.int64)
        np.add.at(net, inverse, deltas)
        live = net != 0
        netted.update_batch(unique[live], net[live], netted=True)
        netted._flush_updates()
        unnetted._flush_updates()
        for mine, theirs in zip(netted._samplers, unnetted._samplers):
            assert np.array_equal(mine._weight, theirs._weight)
            assert np.array_equal(mine._fingerprint, theirs._fingerprint)

    def test_merge_matches_single_pass(self):
        left, right, single = self._bank(), self._bank(), self._bank()
        indices, deltas = _signed_stream()
        half = len(indices) // 2
        left.update_batch(indices[:half], deltas[:half])
        right.update_batch(indices[half:], deltas[half:])
        single.update_batch(indices, deltas)
        merged = left.merge(right)
        assert merged.sample_all() == single.sample_all()
