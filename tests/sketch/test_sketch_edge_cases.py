"""Focused edge-case tests for the sketching substrate: level nesting,
peeling soundness, and simulated-failure plumbing."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.l0 import L0Sampler, L0SamplerBank
from repro.sketch.ssparse import SSparseRecovery


class TestLevelNesting:
    def test_levels_are_nested(self):
        """An index surviving level l survives every level below it —
        the nesting that makes the geometric search sound."""
        sampler = L0Sampler(1 << 16, 0.05, random.Random(0))
        for index in range(0, 1 << 16, 997):
            level = sampler._level_of(index)
            assert 0 <= level < sampler.n_levels

    def test_level_distribution_geometric(self):
        """~half the indices sit at level 0, a quarter at level 1, ..."""
        sampler = L0Sampler(1 << 12, 0.05, random.Random(1))
        counts = {}
        total = 4000
        for index in range(total):
            level = sampler._level_of(index)
            counts[level] = counts.get(level, 0) + 1
        assert 0.35 * total < counts.get(0, 0) < 0.65 * total
        assert 0.15 * total < counts.get(1, 0) < 0.40 * total


class TestPeelingSoundness:
    @settings(max_examples=60)
    @given(
        st.lists(st.integers(0, 39), min_size=3, max_size=12, unique=True),
        st.integers(0, 20),
    )
    def test_decode_is_all_or_nothing(self, support, seed):
        """With s below the true sparsity, decode must return either
        None or the *exact* support — never a silently partial answer."""
        recovery = SSparseRecovery(40, 2, 0.05, random.Random(seed))
        for index in support:
            recovery.update(index, 1)
        decoded = recovery.decode()
        if decoded is not None:
            assert decoded == {index: 1 for index in support}

    def test_peeling_resolves_a_resolvable_collision(self):
        """Across seeds, some 3-coordinate inserts into an s=2 structure
        need peeling and still decode exactly."""
        resolved = 0
        for seed in range(40):
            recovery = SSparseRecovery(64, 2, 0.2, random.Random(seed))
            for index in (3, 17, 41):
                recovery.update(index, 2)
            decoded = recovery.decode()
            if decoded is not None:
                assert decoded == {3: 2, 17: 2, 41: 2}
                resolved += 1
        assert resolved > 0  # peeling genuinely fires and succeeds


class TestBankFailureSimulation:
    def test_fast_bank_simulates_failures_at_rate_delta(self):
        """With a large delta, the fast bank returns None at roughly
        that rate — the failure accounting Algorithm 3 relies on."""
        bank = L0SamplerBank(16, 4000, 0.3, random.Random(2), mode="fast")
        bank.update(5, 1)
        outcomes = bank.sample_all()
        failures = sum(1 for outcome in outcomes if outcome is None)
        assert 0.2 < failures / len(outcomes) < 0.4
        assert all(outcome == 5 for outcome in outcomes if outcome is not None)

    def test_exact_bank_count_zero(self):
        bank = L0SamplerBank(16, 0, 0.1, random.Random(3), mode="exact")
        bank.update(1, 1)
        assert bank.sample_all() == []
        assert bank.space_words() == 0
