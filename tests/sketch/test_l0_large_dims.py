"""ℓ₀-sampler behaviour at the huge sparse dimensions Algorithm 3 uses.

Algorithm 3 runs samplers over the flattened edge vector of dimension
``n * m``; for realistic parameters that is far beyond anything dense.
These tests pin down that the structures are truly update-sparse: cost
and correctness depend on the support, never on the dimension.
"""

import random

from repro.sketch.l0 import L0Sampler, l0_sampler_space_words
from repro.sketch.onesparse import CellState, OneSparseCell
from repro.sketch.ssparse import SSparseRecovery

HUGE = 1 << 40


class TestHugeDimensions:
    def test_one_sparse_cell_at_huge_dim(self):
        cell = OneSparseCell(HUGE, random.Random(0))
        index = HUGE - 7
        cell.update(index, 3)
        result = cell.decode()
        assert result.state is CellState.ONE_SPARSE
        assert (result.index, result.value) == (index, 3)

    def test_ssparse_recovery_at_huge_dim(self):
        recovery = SSparseRecovery(HUGE, 4, 0.01, random.Random(1))
        coordinates = {1, HUGE // 2, HUGE - 1}
        for coordinate in coordinates:
            recovery.update(coordinate, 1)
        assert recovery.decode() == {coordinate: 1 for coordinate in coordinates}

    def test_l0_sampler_at_huge_dim(self):
        sampler = L0Sampler(HUGE, 0.05, random.Random(2))
        support = {123, HUGE // 3, HUGE - 42}
        for coordinate in support:
            sampler.update(coordinate, 1)
        assert sampler.sample() in support

    def test_l0_sampler_cancellation_at_huge_dim(self):
        sampler = L0Sampler(HUGE, 0.05, random.Random(3))
        sampler.update(HUGE - 1, 1)
        sampler.update(5, 1)
        sampler.update(HUGE - 1, -1)
        assert sampler.sample() == 5

    def test_space_formula_log_squared_growth(self):
        """Paper accounting: quadrupling log(dim) -> ~16x the words."""
        small = l0_sampler_space_words(1 << 10, 0.01)
        large = l0_sampler_space_words(1 << 40, 0.01)
        ratio = large / small
        assert 10 < ratio < 20  # (40/10)^2 = 16

    def test_structure_size_independent_of_dim(self):
        """Actual retained words depend on levels (log dim), not dim."""
        small = L0Sampler(1 << 20, 0.05, random.Random(4)).space_words()
        large = L0Sampler(1 << 40, 0.05, random.Random(5)).space_words()
        assert large < 3 * small
