"""Tests for ColumnarEdgeStream: validation, conversion, chunking, stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.columnar import (
    ColumnarEdgeStream,
    group_slices,
    occurrence_ordinals,
    process_columnar,
)
from repro.streams.edge import DELETE, INSERT, Edge, StreamItem
from repro.streams.generators import (
    GeneratorConfig,
    churn_columnar,
    random_bipartite_columnar,
    zipf_frequency_columnar,
)
from repro.streams.stream import EdgeStream, InvalidStreamError


def make(a, b, sign=None, n=10, m=10, validate=True):
    return ColumnarEdgeStream(a, b, sign, n=n, m=m, validate=validate)


class TestValidation:
    def test_empty_stream_is_valid(self):
        stream = make([], [])
        assert len(stream) == 0
        assert stream.insertion_only

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            ColumnarEdgeStream([], [], n=0, m=5)
        with pytest.raises(ValueError):
            ColumnarEdgeStream([], [], n=5, m=0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            make([1, 2], [1])
        with pytest.raises(ValueError):
            make([1], [1], sign=[1, 1])

    def test_rejects_a_out_of_range(self):
        with pytest.raises(InvalidStreamError):
            make([10], [0])
        with pytest.raises(InvalidStreamError):
            make([-1], [0])

    def test_rejects_b_out_of_range(self):
        with pytest.raises(InvalidStreamError):
            make([0], [10])

    def test_rejects_bad_sign(self):
        with pytest.raises(InvalidStreamError):
            make([0], [0], sign=[2])

    def test_rejects_duplicate_insert(self):
        with pytest.raises(InvalidStreamError):
            make([1, 1], [1, 1])

    def test_rejects_delete_of_absent_edge(self):
        with pytest.raises(InvalidStreamError):
            make([1], [1], sign=[DELETE])

    def test_rejects_double_delete(self):
        with pytest.raises(InvalidStreamError):
            make([1, 1, 1], [1, 1, 1], sign=[INSERT, DELETE, DELETE])

    def test_reinsert_after_delete_is_valid(self):
        stream = make([1, 1, 1], [1, 1, 1], sign=[INSERT, DELETE, INSERT])
        assert stream.final_degrees() == {1: 1}
        assert not stream.insertion_only

    def test_validate_false_skips_checks(self):
        stream = make([1], [1], sign=[DELETE], validate=False)
        assert len(stream) == 1


class TestConversion:
    def _stream(self):
        items = [
            StreamItem(Edge(1, 2)),
            StreamItem(Edge(3, 4)),
            StreamItem(Edge(1, 2), DELETE),
            StreamItem(Edge(1, 5)),
        ]
        return EdgeStream(items, 10, 10)

    def test_roundtrip_is_lossless(self):
        stream = self._stream()
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        back = columnar.to_edge_stream()
        assert list(back) == list(stream)
        assert (back.n, back.m) == (stream.n, stream.m)

    def test_item_access_matches(self):
        stream = self._stream()
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        assert len(columnar) == len(stream)
        assert columnar[2] == stream[2]
        assert list(columnar) == list(stream)

    def test_stats_match_edge_stream(self):
        stream = self._stream()
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        assert columnar.stats() == stream.stats()
        assert columnar.final_degrees() == stream.final_degrees()
        assert columnar.max_degree() == stream.max_degree()

    def test_empty_stats(self):
        stream = make([], [])
        stats = stream.stats()
        assert stats.n_updates == 0
        assert stats.max_degree == 0
        assert stats.max_degree_vertex == -1

    def test_concatenate(self):
        left = make([1], [1])
        right = make([2], [2])
        joined = left.concatenate(right)
        assert len(joined) == 2
        assert joined.final_degrees() == {1: 1, 2: 1}
        with pytest.raises(ValueError):
            left.concatenate(make([1], [1], n=5, m=5))


class TestChunks:
    def test_chunks_cover_stream_in_order(self):
        stream = make(list(range(10)), list(range(10)))
        pieces = list(stream.chunks(3))
        assert [len(a) for a, _, _ in pieces] == [3, 3, 3, 1]
        reassembled = np.concatenate([a for a, _, _ in pieces])
        assert (reassembled == stream.a).all()

    def test_chunks_are_views(self):
        stream = make(list(range(10)), list(range(10)))
        a, _, _ = next(iter(stream.chunks(4)))
        assert a.base is stream.a

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(make([0], [0]).chunks(0))


class TestHelpers:
    def test_occurrence_ordinals(self):
        values = np.array([5, 3, 5, 5, 3])
        assert occurrence_ordinals(values).tolist() == [0, 0, 1, 2, 1]

    def test_group_slices_preserve_arrival_order(self):
        values = np.array([2, 1, 2, 1, 2])
        order, starts, ends = group_slices(values)
        groups = [
            order[s:e].tolist() for s, e in zip(starts.tolist(), ends.tolist())
        ]
        assert groups == [[1, 3], [0, 2, 4]]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 9), max_size=60))
    def test_ordinals_match_sequential_count(self, values):
        arr = np.array(values, dtype=np.int64)
        seen = {}
        expected = []
        for value in values:
            expected.append(seen.get(value, 0))
            seen[value] = seen.get(value, 0) + 1
        got = occurrence_ordinals(arr) if len(values) else []
        assert list(got) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)),
        max_size=40,
    )
)
def test_validation_agrees_with_edge_stream(pairs):
    """Columnar validation accepts/rejects exactly like EdgeStream.

    The generated streams insert each edge the first time it appears and
    alternate insert/delete afterwards, occasionally producing invalid
    prefixes; both validators must agree on every sequence.
    """
    items = []
    live = set()
    for a, b in pairs:
        sign = DELETE if (a, b) in live else INSERT
        if sign == INSERT:
            live.add((a, b))
        else:
            live.discard((a, b))
        items.append(StreamItem(Edge(a, b), sign))
    a_col = [item.edge.a for item in items]
    b_col = [item.edge.b for item in items]
    s_col = [item.sign for item in items]
    EdgeStream(items, 5, 5)  # sanity: construction is valid
    stream = ColumnarEdgeStream(a_col, b_col, s_col, n=5, m=5)
    assert stream.stats() == EdgeStream(items, 5, 5).stats()


class TestColumnarGenerators:
    def test_zipf_columnar_shape(self):
        config = GeneratorConfig(n=16, m=500, seed=3)
        stream = zipf_frequency_columnar(config, 500, exponent=1.3)
        assert len(stream) == 500
        assert stream.insertion_only
        # Witnesses are arrival indices: all distinct, so the stream is valid.
        stream._validate()
        degrees = stream.final_degrees()
        assert sum(degrees.values()) == 500
        # Zipf skew: vertex 0 is the most popular.
        assert degrees[0] == max(degrees.values())

    def test_random_bipartite_columnar_distinct_edges(self):
        stream = random_bipartite_columnar(
            GeneratorConfig(n=8, m=9, seed=1), n_edges=40
        )
        assert len(stream) == 40
        stream._validate()
        flat = set((stream.a * 9 + stream.b).tolist())
        assert len(flat) == 40

    def test_churn_columnar_cancels_to_star(self):
        stream = churn_columnar(
            GeneratorConfig(n=10, m=20, seed=2), star_degree=6, churn_edges=30
        )
        stream._validate()
        assert not stream.insertion_only
        assert stream.final_degrees() == {0: 6}

    def test_generator_reproducibility(self):
        config = GeneratorConfig(n=16, m=200, seed=9)
        first = zipf_frequency_columnar(config, 200)
        second = zipf_frequency_columnar(config, 200)
        assert (first.a == second.a).all()
        assert (first.b == second.b).all()


def test_process_columnar_drives_chunks():
    class Recorder:
        def __init__(self):
            self.batches = []

        def process_batch(self, a, b, sign):
            self.batches.append(len(a))

    stream = make(list(range(10)), list(range(10)))
    recorder = process_columnar(Recorder(), stream, chunk_size=4)
    assert recorder.batches == [4, 4, 2]


class TestTimestampColumn:
    def make(self, t=None, validate=True):
        a = np.array([0, 1, 0, 2], dtype=np.int64)
        b = np.array([0, 1, 2, 3], dtype=np.int64)
        return ColumnarEdgeStream(a, b, n=4, m=4, t=t, validate=validate)

    def test_untimestamped_by_default(self):
        stream = self.make()
        assert not stream.has_timestamps and stream.t is None

    def test_timestamps_stored_as_int64(self):
        stream = self.make(t=[10, 10, 30, 40])
        assert stream.has_timestamps
        assert stream.t.dtype == np.int64

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="t must match"):
            self.make(t=[1, 2])

    def test_non_monotonic_rejected_with_update_context(self):
        with pytest.raises(InvalidStreamError, match="update 2"):
            self.make(t=[10, 20, 15, 30])

    def test_equal_timestamps_allowed(self):
        self.make(t=[5, 5, 5, 5])  # non-decreasing, not strictly increasing

    def test_concatenate_carries_timestamps(self):
        first = self.make(t=[1, 2, 3, 4])
        second = ColumnarEdgeStream(
            np.array([3], dtype=np.int64), np.array([0], dtype=np.int64),
            n=4, m=4, t=[9],
        )
        combined = first.concatenate(second)
        assert combined.t.tolist() == [1, 2, 3, 4, 9]

    def test_concatenate_rejects_backwards_seam(self):
        first = self.make(t=[1, 2, 3, 10])
        second = ColumnarEdgeStream(
            np.array([3], dtype=np.int64), np.array([0], dtype=np.int64),
            n=4, m=4, t=[5],
        )
        with pytest.raises(InvalidStreamError, match="update 4"):
            first.concatenate(second)

    def test_concatenate_rejects_mixed_presence(self):
        with pytest.raises(ValueError, match="timestamped"):
            self.make(t=[1, 2, 3, 4]).concatenate(self.make())

    def test_to_edge_stream_drops_timestamps_losslessly_otherwise(self):
        stream = self.make(t=[1, 2, 3, 4])
        boxed = stream.to_edge_stream()
        assert len(boxed) == 4

    def test_generator_timestamps_monotonic_and_trajectory_stable(self):
        from repro.streams.generators import (
            GeneratorConfig,
            zipf_frequency_columnar,
        )

        config = GeneratorConfig(n=8, m=200, seed=5)
        with_t = zipf_frequency_columnar(config, 200, timestamps=True)
        without = zipf_frequency_columnar(config, 200)
        assert with_t.has_timestamps
        assert (np.diff(with_t.t) >= 0).all()
        assert np.array_equal(with_t.a, without.a)
