"""Unit tests for the edge / stream-item model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.edge import DELETE, INSERT, Edge, StreamItem


class TestEdge:
    def test_fields(self):
        edge = Edge(3, 7)
        assert edge.a == 3
        assert edge.b == 7

    def test_equality_and_hash(self):
        assert Edge(1, 2) == Edge(1, 2)
        assert Edge(1, 2) != Edge(2, 1)
        assert len({Edge(1, 2), Edge(1, 2), Edge(2, 1)}) == 2

    def test_negative_a_rejected(self):
        with pytest.raises(ValueError):
            Edge(-1, 0)

    def test_negative_b_rejected(self):
        with pytest.raises(ValueError):
            Edge(0, -5)

    def test_frozen(self):
        edge = Edge(0, 0)
        with pytest.raises(AttributeError):
            edge.a = 1  # type: ignore[misc]

    def test_flat_index_layout(self):
        # Row-major: edge (a, b) sits at a*m + b.
        assert Edge(0, 0).flat_index(10) == 0
        assert Edge(0, 9).flat_index(10) == 9
        assert Edge(1, 0).flat_index(10) == 10
        assert Edge(3, 4).flat_index(10) == 34

    def test_flat_index_rejects_out_of_range_b(self):
        with pytest.raises(ValueError):
            Edge(0, 10).flat_index(10)

    def test_from_flat_index_rejects_negative(self):
        with pytest.raises(ValueError):
            Edge.from_flat_index(-1, 10)

    @given(a=st.integers(0, 500), b=st.integers(0, 499))
    def test_flat_index_roundtrip(self, a, b):
        m = 500
        edge = Edge(a, b)
        assert Edge.from_flat_index(edge.flat_index(m), m) == edge

    @given(index=st.integers(0, 10_000), m=st.integers(1, 200))
    def test_from_flat_index_roundtrip(self, index, m):
        edge = Edge.from_flat_index(index, m)
        assert edge.flat_index(m) == index


class TestStreamItem:
    def test_default_sign_is_insert(self):
        item = StreamItem(Edge(0, 0))
        assert item.sign == INSERT
        assert item.is_insert
        assert not item.is_delete

    def test_delete_item(self):
        item = StreamItem(Edge(0, 0), DELETE)
        assert item.is_delete
        assert not item.is_insert

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            StreamItem(Edge(0, 0), 2)

    def test_zero_sign_rejected(self):
        with pytest.raises(ValueError):
            StreamItem(Edge(0, 0), 0)
