"""ChunkedStreamReader edge cases and engine behaviour on bad input.

Covers the corners a production ingestion path hits: empty files,
zero-update streams, chunk sizes larger than the stream, truncated and
corrupt NPZ archives, final partial chunks, memory-mapped readers over
all of the above — plus what a FanoutRunner does when a processor
raises mid-stream.
"""

import numpy as np
import pytest

from repro.engine import FanoutRunner, as_chunks
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.persist import (
    ChunkedStreamReader,
    StreamFormatError,
    dump_stream,
)


def columnar(n_updates, n=8, m=None):
    m = m or max(n_updates, 1)
    rng = np.random.default_rng(1)
    return ColumnarEdgeStream(
        rng.integers(0, n, size=n_updates),
        np.arange(n_updates, dtype=np.int64) % m,
        n=n,
        m=m,
        validate=False,
    )


@pytest.fixture(params=[False, True], ids=["eager", "mmap"])
def mmap_mode(request):
    return request.param


class TestEmptyAndTinyStreams:
    def test_zero_byte_file_is_a_format_error(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_bytes(b"")
        with pytest.raises(StreamFormatError, match="missing header"):
            ChunkedStreamReader(path)

    def test_header_only_v1_file_yields_no_chunks(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# feww-stream v1 n=4 m=4\n")
        reader = ChunkedStreamReader(path)
        assert len(reader) == 0
        assert list(reader.chunks(16)) == []

    def test_zero_update_v2_file(self, tmp_path, mmap_mode):
        path = tmp_path / "empty.npz"
        dump_stream(columnar(0), path, format="v2")
        reader = ChunkedStreamReader(path, mmap=mmap_mode)
        assert reader.version == 2
        assert len(reader) == 0
        assert list(reader.chunks(16)) == []

    def test_chunk_size_larger_than_stream(self, tmp_path, mmap_mode):
        path = tmp_path / "small.npz"
        dump_stream(columnar(5), path, format="v2")
        chunks = list(ChunkedStreamReader(path, mmap=mmap_mode).chunks(1000))
        assert len(chunks) == 1
        assert len(chunks[0][0]) == 5


class TestPartialChunks:
    def test_final_partial_chunk_v2(self, tmp_path, mmap_mode):
        path = tmp_path / "partial.npz"
        dump_stream(columnar(10), path, format="v2")
        sizes = [
            len(a)
            for a, _, _ in ChunkedStreamReader(path, mmap=mmap_mode).chunks(4)
        ]
        assert sizes == [4, 4, 2]

    def test_final_partial_chunk_v1(self, tmp_path):
        path = tmp_path / "partial.txt"
        dump_stream(columnar(10).to_edge_stream(), path, format="v1")
        sizes = [len(a) for a, _, _ in ChunkedStreamReader(path).chunks(4)]
        assert sizes == [4, 4, 2]

    def test_chunks_concatenate_to_the_full_stream(self, tmp_path, mmap_mode):
        stream = columnar(23)
        path = tmp_path / "s.npz"
        dump_stream(stream, path, format="v2")
        reader = ChunkedStreamReader(path, mmap=mmap_mode)
        a = np.concatenate([chunk[0] for chunk in reader.chunks(7)])
        assert np.array_equal(np.asarray(a), stream.a)


class TestCorruptFiles:
    def test_truncated_npz_is_a_format_error(self, tmp_path, mmap_mode):
        path = tmp_path / "truncated.npz"
        dump_stream(columnar(100), path, format="v2")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StreamFormatError, match="not a valid NPZ"):
            ChunkedStreamReader(path, mmap=mmap_mode)

    def test_npz_magic_with_garbage_is_a_format_error(self, tmp_path, mmap_mode):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"PK\x03\x04" + b"\x00garbage" * 16)
        with pytest.raises(StreamFormatError, match="not a valid NPZ"):
            ChunkedStreamReader(path, mmap=mmap_mode)

    def test_npz_missing_entries_is_a_format_error(self, tmp_path, mmap_mode):
        path = tmp_path / "missing.npz"
        with open(path, "wb") as handle:
            np.savez(handle, a=np.zeros(3, dtype=np.int64))
        with pytest.raises(StreamFormatError, match="missing entries"):
            ChunkedStreamReader(path, mmap=mmap_mode)

    def test_out_of_range_endpoint_reported(self, tmp_path, mmap_mode):
        path = tmp_path / "bad_range.npz"
        bad = ColumnarEdgeStream(
            np.array([0, 99], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            n=4,
            m=4,
            validate=False,
        )
        dump_stream(bad, path, format="v2")
        with pytest.raises(StreamFormatError, match="out of range"):
            # eager readers validate at open; mmap readers defer the
            # check to chunk iteration (paging the file in at open time
            # would defeat the point)
            reader = ChunkedStreamReader(path, mmap=mmap_mode)
            list(reader.chunks(16))

    def test_compressed_npz_still_loads_without_mapping(self, tmp_path):
        # np.savez_compressed output cannot be memory-mapped; the reader
        # must fall back to eager loading, not fail.
        stream = columnar(20)
        path = tmp_path / "compressed.npz"
        meta = np.array([2, stream.n, stream.m], dtype=np.int64)
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle, a=stream.a, b=stream.b, sign=stream.sign, meta=meta
            )
        reader = ChunkedStreamReader(path, mmap=True)
        assert len(reader) == 20
        sizes = [len(a) for a, _, _ in reader.chunks(8)]
        assert sizes == [8, 8, 4]


class TestMmapLaziness:
    def test_mmap_columns_are_memory_mapped(self, tmp_path):
        stream = columnar(500)
        path = tmp_path / "big.npz"
        dump_stream(stream, path, format="v2")
        reader = ChunkedStreamReader(path, mmap=True)
        # the column arrays must be backed by the on-disk file, not heap
        for column in (
            reader._columns.a, reader._columns.b, reader._columns.sign
        ):
            base = column
            while not isinstance(base, np.memmap) and base.base is not None:
                base = base.base
            assert isinstance(base, np.memmap)

    def test_mmap_reader_matches_eager_reader(self, tmp_path):
        stream = columnar(100)
        path = tmp_path / "s.npz"
        dump_stream(stream, path, format="v2")
        eager = list(ChunkedStreamReader(path).chunks(16))
        mapped = list(ChunkedStreamReader(path, mmap=True).chunks(16))
        assert len(eager) == len(mapped)
        for (ea, eb, es), (ma, mb, ms) in zip(eager, mapped):
            assert np.array_equal(np.asarray(ea), np.asarray(ma))
            assert np.array_equal(np.asarray(eb), np.asarray(mb))
            assert np.array_equal(np.asarray(es), np.asarray(ms))

    def test_mmap_is_a_noop_for_v1_text(self, tmp_path):
        path = tmp_path / "s.txt"
        dump_stream(columnar(10).to_edge_stream(), path, format="v1")
        reader = ChunkedStreamReader(path, mmap=True)
        assert reader.version == 1
        assert len(list(reader.chunks(4))) == 3


class FlakyProcessor:
    """Raises on its second chunk; records what it received."""

    def __init__(self):
        self.chunks_seen = 0

    def process_batch(self, a, b, sign=None):
        self.chunks_seen += 1
        if self.chunks_seen == 2:
            raise RuntimeError("processor exploded mid-stream")

    def finalize(self):
        return self.chunks_seen


class TestFanoutRunnerMidStreamFailure:
    def test_exception_propagates_and_stops_the_pass(self):
        stream = columnar(40)
        flaky = FlakyProcessor()
        runner = FanoutRunner({"flaky": flaky}, chunk_size=8)
        with pytest.raises(RuntimeError, match="exploded mid-stream"):
            runner.run(stream)
        # the failing processor consumed exactly two chunks, then the
        # pass stopped — nothing further was fed
        assert flaky.chunks_seen == 2

    def test_earlier_processors_in_same_chunk_already_consumed(self):
        """Fan-out order is registration order: processors registered
        before the failing one have consumed the fatal chunk, later ones
        have not — documented, deterministic mid-failure state."""
        stream = columnar(40)

        received = {"before": 0, "after": 0}

        class Counter:
            def __init__(self, key):
                self.key = key

            def process_batch(self, a, b, sign=None):
                received[self.key] += 1

            def finalize(self):
                return received[self.key]

        runner = FanoutRunner(
            {
                "before": Counter("before"),
                "flaky": FlakyProcessor(),
                "after": Counter("after"),
            },
            chunk_size=8,
        )
        with pytest.raises(RuntimeError, match="exploded"):
            runner.run(stream)
        assert received["before"] == 2  # saw the fatal chunk
        assert received["after"] == 1   # never reached on the fatal chunk
