"""ChunkedStreamReader edge cases and engine behaviour on bad input.

Covers the corners a production ingestion path hits: empty files,
zero-update streams, chunk sizes larger than the stream, truncated and
corrupt NPZ archives, final partial chunks, memory-mapped readers over
all of the above — plus what a FanoutRunner does when a processor
raises mid-stream.
"""

import numpy as np
import pytest

from repro.engine import FanoutRunner, as_chunks
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.persist import (
    ChunkedStreamReader,
    StreamFormatError,
    dump_stream,
)


def columnar(n_updates, n=8, m=None):
    m = m or max(n_updates, 1)
    rng = np.random.default_rng(1)
    return ColumnarEdgeStream(
        rng.integers(0, n, size=n_updates),
        np.arange(n_updates, dtype=np.int64) % m,
        n=n,
        m=m,
        validate=False,
    )


@pytest.fixture(params=[False, True], ids=["eager", "mmap"])
def mmap_mode(request):
    return request.param


class TestEmptyAndTinyStreams:
    def test_zero_byte_file_is_a_format_error(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_bytes(b"")
        with pytest.raises(StreamFormatError, match="missing header"):
            ChunkedStreamReader(path)

    def test_header_only_v1_file_yields_no_chunks(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# feww-stream v1 n=4 m=4\n")
        reader = ChunkedStreamReader(path)
        assert len(reader) == 0
        assert list(reader.chunks(16)) == []

    def test_zero_update_v2_file(self, tmp_path, mmap_mode):
        path = tmp_path / "empty.npz"
        dump_stream(columnar(0), path, format="v2")
        reader = ChunkedStreamReader(path, mmap=mmap_mode)
        assert reader.version == 2
        assert len(reader) == 0
        assert list(reader.chunks(16)) == []

    def test_chunk_size_larger_than_stream(self, tmp_path, mmap_mode):
        path = tmp_path / "small.npz"
        dump_stream(columnar(5), path, format="v2")
        chunks = list(ChunkedStreamReader(path, mmap=mmap_mode).chunks(1000))
        assert len(chunks) == 1
        assert len(chunks[0][0]) == 5


class TestPartialChunks:
    def test_final_partial_chunk_v2(self, tmp_path, mmap_mode):
        path = tmp_path / "partial.npz"
        dump_stream(columnar(10), path, format="v2")
        sizes = [
            len(a)
            for a, _, _ in ChunkedStreamReader(path, mmap=mmap_mode).chunks(4)
        ]
        assert sizes == [4, 4, 2]

    def test_final_partial_chunk_v1(self, tmp_path):
        path = tmp_path / "partial.txt"
        dump_stream(columnar(10).to_edge_stream(), path, format="v1")
        sizes = [len(a) for a, _, _ in ChunkedStreamReader(path).chunks(4)]
        assert sizes == [4, 4, 2]

    def test_chunks_concatenate_to_the_full_stream(self, tmp_path, mmap_mode):
        stream = columnar(23)
        path = tmp_path / "s.npz"
        dump_stream(stream, path, format="v2")
        reader = ChunkedStreamReader(path, mmap=mmap_mode)
        a = np.concatenate([chunk[0] for chunk in reader.chunks(7)])
        assert np.array_equal(np.asarray(a), stream.a)


class TestCorruptFiles:
    def test_truncated_npz_is_a_format_error(self, tmp_path, mmap_mode):
        path = tmp_path / "truncated.npz"
        dump_stream(columnar(100), path, format="v2")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StreamFormatError, match="not a valid NPZ"):
            ChunkedStreamReader(path, mmap=mmap_mode)

    def test_npz_magic_with_garbage_is_a_format_error(self, tmp_path, mmap_mode):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"PK\x03\x04" + b"\x00garbage" * 16)
        with pytest.raises(StreamFormatError, match="not a valid NPZ"):
            ChunkedStreamReader(path, mmap=mmap_mode)

    def test_npz_missing_entries_is_a_format_error(self, tmp_path, mmap_mode):
        path = tmp_path / "missing.npz"
        with open(path, "wb") as handle:
            np.savez(handle, a=np.zeros(3, dtype=np.int64))
        with pytest.raises(StreamFormatError, match="missing entries"):
            ChunkedStreamReader(path, mmap=mmap_mode)

    def test_out_of_range_endpoint_reported(self, tmp_path, mmap_mode):
        path = tmp_path / "bad_range.npz"
        bad = ColumnarEdgeStream(
            np.array([0, 99], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            n=4,
            m=4,
            validate=False,
        )
        dump_stream(bad, path, format="v2")
        with pytest.raises(StreamFormatError, match="out of range"):
            # eager readers validate at open; mmap readers defer the
            # check to chunk iteration (paging the file in at open time
            # would defeat the point)
            reader = ChunkedStreamReader(path, mmap=mmap_mode)
            list(reader.chunks(16))

    def test_compressed_npz_still_loads_without_mapping(self, tmp_path):
        # np.savez_compressed output cannot be memory-mapped; the reader
        # must fall back to eager loading, not fail.
        stream = columnar(20)
        path = tmp_path / "compressed.npz"
        meta = np.array([2, stream.n, stream.m], dtype=np.int64)
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle, a=stream.a, b=stream.b, sign=stream.sign, meta=meta
            )
        reader = ChunkedStreamReader(path, mmap=True)
        assert len(reader) == 20
        sizes = [len(a) for a, _, _ in reader.chunks(8)]
        assert sizes == [8, 8, 4]


class TestMmapLaziness:
    def test_mmap_columns_are_memory_mapped(self, tmp_path):
        stream = columnar(500)
        path = tmp_path / "big.npz"
        dump_stream(stream, path, format="v2")
        reader = ChunkedStreamReader(path, mmap=True)
        # the column arrays must be backed by the on-disk file, not heap
        for column in (
            reader._columns.a, reader._columns.b, reader._columns.sign
        ):
            base = column
            while not isinstance(base, np.memmap) and base.base is not None:
                base = base.base
            assert isinstance(base, np.memmap)

    def test_mmap_reader_matches_eager_reader(self, tmp_path):
        stream = columnar(100)
        path = tmp_path / "s.npz"
        dump_stream(stream, path, format="v2")
        eager = list(ChunkedStreamReader(path).chunks(16))
        mapped = list(ChunkedStreamReader(path, mmap=True).chunks(16))
        assert len(eager) == len(mapped)
        for (ea, eb, es), (ma, mb, ms) in zip(eager, mapped):
            assert np.array_equal(np.asarray(ea), np.asarray(ma))
            assert np.array_equal(np.asarray(eb), np.asarray(mb))
            assert np.array_equal(np.asarray(es), np.asarray(ms))

    def test_mmap_is_a_noop_for_v1_text(self, tmp_path):
        path = tmp_path / "s.txt"
        dump_stream(columnar(10).to_edge_stream(), path, format="v1")
        reader = ChunkedStreamReader(path, mmap=True)
        assert reader.version == 1
        assert len(list(reader.chunks(4))) == 3


class FlakyProcessor:
    """Raises on its second chunk; records what it received."""

    def __init__(self):
        self.chunks_seen = 0

    def process_batch(self, a, b, sign=None):
        self.chunks_seen += 1
        if self.chunks_seen == 2:
            raise RuntimeError("processor exploded mid-stream")

    def finalize(self):
        return self.chunks_seen


class TestFanoutRunnerMidStreamFailure:
    def test_exception_propagates_and_stops_the_pass(self):
        stream = columnar(40)
        flaky = FlakyProcessor()
        runner = FanoutRunner({"flaky": flaky}, chunk_size=8)
        with pytest.raises(RuntimeError, match="exploded mid-stream"):
            runner.run(stream)
        # the failing processor consumed exactly two chunks, then the
        # pass stopped — nothing further was fed
        assert flaky.chunks_seen == 2

    def test_earlier_processors_in_same_chunk_already_consumed(self):
        """Fan-out order is registration order: processors registered
        before the failing one have consumed the fatal chunk, later ones
        have not — documented, deterministic mid-failure state."""
        stream = columnar(40)

        received = {"before": 0, "after": 0}

        class Counter:
            def __init__(self, key):
                self.key = key

            def process_batch(self, a, b, sign=None):
                received[self.key] += 1

            def finalize(self):
                return received[self.key]

        runner = FanoutRunner(
            {
                "before": Counter("before"),
                "flaky": FlakyProcessor(),
                "after": Counter("after"),
            },
            chunk_size=8,
        )
        with pytest.raises(RuntimeError, match="exploded"):
            runner.run(stream)
        assert received["before"] == 2  # saw the fatal chunk
        assert received["after"] == 1   # never reached on the fatal chunk


# ----------------------------------------------------------------------
# Persistence v2.1 (timestamp column) edge cases.
# ----------------------------------------------------------------------


def timestamped(n_updates, n=8):
    stream = columnar(n_updates, n=n)
    t = np.arange(n_updates, dtype=np.int64) * 7
    return ColumnarEdgeStream(
        stream.a, stream.b, n=stream.n, m=stream.m, t=t, validate=False
    )


def pre_timestamp_read(path):
    """A v2 reader as it existed before the timestamp column: loads the
    four required entries, checks meta version 2, ignores everything
    else.  Frozen here to prove v2.1 files stay readable by it."""
    with np.load(path) as archive:
        required = {"a", "b", "sign", "meta"}
        assert required <= set(archive.files)
        meta = archive["meta"]
        assert meta.shape == (3,) and int(meta[0]) == 2
        return (
            archive["a"].astype(np.int64),
            archive["b"].astype(np.int64),
            archive["sign"].astype(np.int64),
            int(meta[1]),
            int(meta[2]),
        )


class TestTimestampedPersistence:
    def test_v21_file_readable_by_pre_timestamp_reader(self, tmp_path):
        stream = timestamped(40)
        path = tmp_path / "timestamped.npz"
        dump_stream(stream, path, format="v2")
        a, b, sign, n, m = pre_timestamp_read(path)
        assert np.array_equal(a, stream.a)
        assert np.array_equal(sign, stream.sign)
        assert (n, m) == (stream.n, stream.m)

    def test_round_trip_preserves_timestamps(self, tmp_path, mmap_mode):
        from repro.streams.persist import load_columnar, stream_has_timestamps

        stream = timestamped(40)
        path = tmp_path / "timestamped.npz"
        dump_stream(stream, path, format="v2")
        assert stream_has_timestamps(path)
        assert np.array_equal(load_columnar(path).t, stream.t)
        reader = ChunkedStreamReader(path, mmap=mmap_mode)
        assert reader.has_timestamps
        assert np.array_equal(np.asarray(reader.timestamps), stream.t)

    def test_untimestamped_file_reports_no_timestamps(self, tmp_path, mmap_mode):
        from repro.streams.persist import stream_has_timestamps

        path = tmp_path / "plain.npz"
        dump_stream(columnar(10), path, format="v2")
        assert not stream_has_timestamps(path)
        reader = ChunkedStreamReader(path, mmap=mmap_mode)
        assert not reader.has_timestamps
        assert reader.timestamps is None

    def test_empty_timestamp_column(self, tmp_path, mmap_mode):
        from repro.streams.persist import load_columnar

        stream = timestamped(0)
        path = tmp_path / "empty.npz"
        dump_stream(stream, path, format="v2")
        loaded = load_columnar(path)
        assert loaded.has_timestamps and len(loaded.t) == 0
        reader = ChunkedStreamReader(path, mmap=mmap_mode)
        assert reader.has_timestamps
        assert list(reader.chunks(4)) == []

    def test_non_monotonic_timestamps_rejected_with_offset(
        self, tmp_path, mmap_mode
    ):
        stream = timestamped(10)
        bad_t = stream.t.copy()
        bad_t[6] = bad_t[5] - 1
        bad = ColumnarEdgeStream(
            stream.a, stream.b, n=stream.n, m=stream.m, t=bad_t,
            validate=False,
        )
        path = tmp_path / "bad.npz"
        dump_stream(bad, path, format="v2")
        if mmap_mode:
            # mmap defers the check to the first timestamps access (the
            # chunk path never pages the t column in).
            reader = ChunkedStreamReader(path, mmap=True)
            with pytest.raises(StreamFormatError, match="offset 6"):
                reader.timestamps
        else:
            with pytest.raises(StreamFormatError, match="offset 6"):
                ChunkedStreamReader(path)

    def test_load_columnar_rejects_non_monotonic_with_update_context(
        self, tmp_path
    ):
        from repro.streams.persist import load_columnar
        from repro.streams.stream import InvalidStreamError

        stream = timestamped(10)
        bad_t = stream.t.copy()
        bad_t[3] -= 100
        bad = ColumnarEdgeStream(
            stream.a, stream.b, n=stream.n, m=stream.m, t=bad_t,
            validate=False,
        )
        path = tmp_path / "bad2.npz"
        dump_stream(bad, path, format="v2")
        with pytest.raises(InvalidStreamError, match="update 3"):
            load_columnar(path)

    def test_timestamp_length_mismatch_is_a_format_error(self, tmp_path):
        stream = columnar(10)
        path = tmp_path / "mismatch.npz"
        with open(path, "wb") as handle:
            np.savez(
                handle,
                a=stream.a,
                b=stream.b,
                sign=stream.sign,
                meta=np.array([2, stream.n, stream.m], dtype=np.int64),
                t=np.arange(4, dtype=np.int64),
            )
        with pytest.raises(StreamFormatError, match="does not match"):
            ChunkedStreamReader(path)

    def test_v1_dump_drops_timestamps(self, tmp_path):
        from repro.streams.persist import load_columnar

        stream = timestamped(8)
        path = tmp_path / "stream.txt"
        dump_stream(stream, path, format="v1")
        loaded = load_columnar(path)
        assert not loaded.has_timestamps
        assert np.array_equal(loaded.a, stream.a)


# ----------------------------------------------------------------------
# Chunk-level readahead (mmap prefetch).
# ----------------------------------------------------------------------


class TestReadaheadEquivalence:
    @pytest.mark.parametrize("chunk_size", (1, 7, 64, 1000))
    def test_chunks_identical_to_serial_mmap(self, tmp_path, chunk_size):
        stream = columnar(333)
        path = tmp_path / "stream.npz"
        dump_stream(stream, path, format="v2")
        serial = [
            tuple(np.array(column) for column in chunk)
            for chunk in ChunkedStreamReader(path, mmap=True).chunks(chunk_size)
        ]
        prefetched = list(
            ChunkedStreamReader(path, mmap=True, readahead=True).chunks(
                chunk_size
            )
        )
        assert len(serial) == len(prefetched)
        for mine, theirs in zip(serial, prefetched):
            for left, right in zip(mine, theirs):
                assert np.array_equal(left, right)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.npz"
        dump_stream(columnar(0), path, format="v2")
        reader = ChunkedStreamReader(path, mmap=True, readahead=True)
        assert list(reader.chunks(8)) == []

    def test_range_validation_still_raises(self, tmp_path):
        stream = columnar(64)
        path = tmp_path / "bad.npz"
        with open(path, "wb") as handle:
            np.savez(
                handle,
                a=stream.a,
                b=stream.b,
                sign=stream.sign,
                meta=np.array([2, 2, stream.m], dtype=np.int64),  # n too small
            )
        reader = ChunkedStreamReader(path, mmap=True, readahead=True)
        with pytest.raises(StreamFormatError, match="out of range"):
            list(reader.chunks(16))

    def test_engine_answers_unchanged_under_readahead(self, tmp_path):
        from repro.engine import ShardedRunner
        from repro.sketch.exact import DegreeCounter

        stream = columnar(500, n=16)
        path = tmp_path / "stream.npz"
        dump_stream(stream, path, format="v2")

        class CountingProcessor:
            def __init__(self):
                self.counter = DegreeCounter(16)

            def process_batch(self, a, b, sign=None):
                self.counter.increment_batch(np.asarray(a))

            def finalize(self):
                return self.counter._degrees.copy()

            def merge(self, other):
                self.counter.merge(other.counter)
                return self

            def split(self, n_shards):
                return [CountingProcessor() for _ in range(n_shards)]

            shard_routing = "any"

        plain = ShardedRunner(
            {"deg": CountingProcessor()}, n_workers=2, mmap=True,
            backend="serial",
        ).run(str(path))["deg"]
        prefetched = ShardedRunner(
            {"deg": CountingProcessor()}, n_workers=2, mmap=True,
            readahead=True, backend="serial",
        ).run(str(path))["deg"]
        assert np.array_equal(plain, prefetched)


class TestReadaheadDepth:
    """readahead_depth > 1: more chunks in flight, identical contents."""

    @pytest.mark.parametrize("depth", (1, 2, 5))
    @pytest.mark.parametrize("chunk_size", (7, 64))
    def test_chunks_identical_at_any_depth(self, tmp_path, depth, chunk_size):
        stream = columnar(333)
        path = tmp_path / "stream.npz"
        dump_stream(stream, path, format="v2")
        serial = [
            tuple(np.array(column) for column in chunk)
            for chunk in ChunkedStreamReader(path, mmap=True).chunks(chunk_size)
        ]
        deep = list(
            ChunkedStreamReader(
                path, mmap=True, readahead=True, readahead_depth=depth
            ).chunks(chunk_size)
        )
        assert len(serial) == len(deep)
        for mine, theirs in zip(serial, deep):
            for left, right in zip(mine, theirs):
                assert np.array_equal(left, right)

    def test_depth_larger_than_stream(self, tmp_path):
        stream = columnar(10)
        path = tmp_path / "tiny.npz"
        dump_stream(stream, path, format="v2")
        reader = ChunkedStreamReader(
            path, mmap=True, readahead=True, readahead_depth=8
        )
        chunks = list(reader.chunks(4))
        assert sum(len(chunk[0]) for chunk in chunks) == 10

    def test_depth_must_be_positive(self, tmp_path):
        stream = columnar(4)
        path = tmp_path / "s.npz"
        dump_stream(stream, path, format="v2")
        with pytest.raises(ValueError, match="readahead_depth"):
            ChunkedStreamReader(path, readahead_depth=0)

    def test_validation_error_still_surfaces_at_depth(self, tmp_path):
        stream = columnar(64)
        path = tmp_path / "bad.npz"
        with open(path, "wb") as handle:
            np.savez(
                handle,
                a=stream.a,
                b=stream.b,
                sign=stream.sign,
                meta=np.array([2, 2, stream.m], dtype=np.int64),
            )
        reader = ChunkedStreamReader(
            path, mmap=True, readahead=True, readahead_depth=4
        )
        with pytest.raises(StreamFormatError, match="out of range"):
            list(reader.chunks(16))


class TestShardedAutoReadahead:
    """ShardedRunner(readahead=None) auto-enables prefetch on mmap
    passes and keeps answers identical either way."""

    def test_auto_resolution(self):
        from repro.engine import ShardedRunner

        runner = ShardedRunner(n_workers=2, mmap=True)
        assert runner.readahead is None
        assert runner._effective_readahead(True) is True
        assert runner._effective_readahead(False) is False
        forced_off = ShardedRunner(n_workers=2, mmap=True, readahead=False)
        assert forced_off._effective_readahead(True) is False
        forced_on = ShardedRunner(n_workers=2, readahead=True)
        assert forced_on._effective_readahead(False) is True

    def test_depth_validated(self):
        from repro.engine import ShardedRunner

        with pytest.raises(ValueError, match="readahead_depth"):
            ShardedRunner(n_workers=2, readahead_depth=0)

    def test_auto_readahead_answers_identical(self, tmp_path):
        from repro.engine import ShardedRunner
        from repro.core.insertion_only import InsertionOnlyFEwW

        stream = columnar(400, n=16)
        path = tmp_path / "stream.npz"
        dump_stream(stream, path, format="v2")

        def run(**kwargs):
            return ShardedRunner(
                {"alg2": InsertionOnlyFEwW(16, 4, 2, seed=3)},
                n_workers=2, mmap=True, backend="serial", **kwargs,
            ).run(str(path))["alg2"]

        assert run() == run(readahead=False)
        assert run(readahead_depth=3) == run(readahead=False)
