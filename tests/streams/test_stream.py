"""Unit and property tests for EdgeStream."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.edge import DELETE, INSERT, Edge, StreamItem
from repro.streams.stream import EdgeStream, InvalidStreamError, stream_from_edges


def make(items, n=10, m=10, validate=True):
    return EdgeStream(items, n, m, validate=validate)


class TestValidation:
    def test_empty_stream_is_valid(self):
        stream = make([])
        assert len(stream) == 0
        assert stream.final_edges() == set()

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            EdgeStream([], 0, 5)
        with pytest.raises(ValueError):
            EdgeStream([], 5, 0)

    def test_rejects_a_out_of_range(self):
        with pytest.raises(InvalidStreamError):
            make([StreamItem(Edge(10, 0))])

    def test_rejects_b_out_of_range(self):
        with pytest.raises(InvalidStreamError):
            make([StreamItem(Edge(0, 10))])

    def test_rejects_duplicate_insert(self):
        with pytest.raises(InvalidStreamError):
            make([StreamItem(Edge(1, 1)), StreamItem(Edge(1, 1))])

    def test_rejects_delete_of_absent_edge(self):
        with pytest.raises(InvalidStreamError):
            make([StreamItem(Edge(1, 1), DELETE)])

    def test_reinsert_after_delete_is_valid(self):
        stream = make(
            [
                StreamItem(Edge(1, 1)),
                StreamItem(Edge(1, 1), DELETE),
                StreamItem(Edge(1, 1)),
            ]
        )
        assert stream.final_edges() == {Edge(1, 1)}

    def test_validate_false_skips_checks(self):
        stream = make([StreamItem(Edge(1, 1), DELETE)], validate=False)
        assert len(stream) == 1


class TestReferenceHelpers:
    def test_final_edges_after_cancellation(self):
        stream = make(
            [
                StreamItem(Edge(0, 0)),
                StreamItem(Edge(0, 1)),
                StreamItem(Edge(0, 0), DELETE),
            ]
        )
        assert stream.final_edges() == {Edge(0, 1)}

    def test_degrees(self):
        stream = stream_from_edges([Edge(0, 0), Edge(0, 1), Edge(1, 0)], 5, 5)
        assert stream.degree_of(0) == 2
        assert stream.degree_of(1) == 1
        assert stream.degree_of(2) == 0
        assert stream.max_degree() == 2

    def test_neighbours(self):
        stream = stream_from_edges([Edge(0, 3), Edge(0, 4), Edge(1, 3)], 5, 5)
        assert stream.neighbours_of(0) == {3, 4}
        assert stream.neighbours_of(1) == {3}
        assert stream.neighbours_of(4) == set()

    def test_insertion_only_flag(self):
        assert make([StreamItem(Edge(0, 0))]).insertion_only
        assert not make(
            [StreamItem(Edge(0, 0)), StreamItem(Edge(0, 0), DELETE)]
        ).insertion_only

    def test_stats(self):
        stream = make(
            [
                StreamItem(Edge(0, 0)),
                StreamItem(Edge(0, 1)),
                StreamItem(Edge(1, 2)),
                StreamItem(Edge(1, 2), DELETE),
            ]
        )
        stats = stream.stats()
        assert stats.n_updates == 4
        assert stats.n_inserts == 3
        assert stats.n_deletes == 1
        assert stats.n_edges_final == 2
        assert stats.max_degree == 2
        assert stats.max_degree_vertex == 0
        assert stats.n_a_vertices == 1
        assert stats.n_b_vertices == 2

    def test_stats_empty(self):
        stats = make([]).stats()
        assert stats.max_degree == 0
        assert stats.max_degree_vertex == -1

    def test_indexing_and_iteration(self):
        items = [StreamItem(Edge(0, 0)), StreamItem(Edge(1, 1))]
        stream = make(items)
        assert stream[0] == items[0]
        assert list(stream) == items

    def test_concatenate(self):
        first = make([StreamItem(Edge(0, 0))])
        second = make([StreamItem(Edge(1, 1))])
        combined = first.concatenate(second)
        assert len(combined) == 2
        assert combined.final_edges() == {Edge(0, 0), Edge(1, 1)}

    def test_concatenate_dimension_mismatch(self):
        with pytest.raises(ValueError):
            make([]).concatenate(EdgeStream([], 3, 3))


@st.composite
def valid_update_sequences(draw):
    """Generate valid insert/delete sequences over a 5x5 grid."""
    n_ops = draw(st.integers(0, 60))
    live = set()
    items = []
    for _ in range(n_ops):
        if live and draw(st.booleans()):
            edge = draw(st.sampled_from(sorted(live, key=lambda e: (e.a, e.b))))
            items.append(StreamItem(edge, DELETE))
            live.remove(edge)
        else:
            a = draw(st.integers(0, 4))
            b = draw(st.integers(0, 4))
            edge = Edge(a, b)
            if edge in live:
                continue
            live.add(edge)
            items.append(StreamItem(edge, INSERT))
    return items, live


class TestStreamProperties:
    @given(valid_update_sequences())
    def test_final_edges_matches_replay(self, data):
        items, live = data
        stream = EdgeStream(items, 5, 5)
        assert stream.final_edges() == live

    @given(valid_update_sequences())
    def test_degree_sums_to_edge_count(self, data):
        items, live = data
        stream = EdgeStream(items, 5, 5)
        assert sum(stream.final_degrees().values()) == len(live)

    @given(valid_update_sequences())
    def test_inserts_minus_deletes_equals_final(self, data):
        items, _ = data
        stream = EdgeStream(items, 5, 5)
        stats = stream.stats()
        assert stats.n_inserts - stats.n_deletes == stats.n_edges_final
