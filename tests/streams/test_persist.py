"""Tests for stream persistence."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.persist import (
    StreamFormatError,
    dump_stream,
    dumps_stream,
    load_stream,
    loads_stream,
)
from repro.streams.generators import GeneratorConfig, deletion_churn_stream
from repro.streams.stream import EdgeStream, stream_from_edges


class TestRoundTrip:
    def test_insert_only_roundtrip(self):
        stream = stream_from_edges([Edge(0, 1), Edge(2, 3)], 5, 5)
        recovered = loads_stream(dumps_stream(stream))
        assert (recovered.n, recovered.m) == (5, 5)
        assert list(recovered) == list(stream)

    def test_turnstile_roundtrip(self):
        stream = deletion_churn_stream(
            GeneratorConfig(n=16, m=32, seed=1), star_degree=8, churn_edges=40
        )
        recovered = loads_stream(dumps_stream(stream))
        assert list(recovered) == list(stream)
        assert recovered.final_edges() == stream.final_edges()

    def test_empty_stream_roundtrip(self):
        stream = EdgeStream([], 3, 7)
        recovered = loads_stream(dumps_stream(stream))
        assert len(recovered) == 0
        assert (recovered.n, recovered.m) == (3, 7)

    def test_file_roundtrip(self, tmp_path):
        stream = stream_from_edges([Edge(1, 2)], 4, 4)
        path = tmp_path / "stream.txt"
        dump_stream(stream, path)
        recovered = load_stream(path)
        assert list(recovered) == list(stream)

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    max_size=40, unique=True))
    def test_arbitrary_edge_sets_roundtrip(self, pairs):
        stream = stream_from_edges([Edge(a, b) for a, b in pairs], 10, 10)
        recovered = loads_stream(dumps_stream(stream))
        assert list(recovered) == list(stream)


class TestFormat:
    def test_header_line(self):
        text = dumps_stream(stream_from_edges([], 12, 34))
        assert text.splitlines()[0] == "# feww-stream v1 n=12 m=34"

    def test_signs_in_body(self):
        stream = EdgeStream(
            [StreamItem(Edge(0, 1)), StreamItem(Edge(0, 1), DELETE)], 2, 2
        )
        lines = dumps_stream(stream).splitlines()
        assert lines[1] == "+ 0 1"
        assert lines[2] == "- 0 1"

    def test_comments_and_blanks_skipped(self):
        text = "# feww-stream v1 n=4 m=4\n\n# a comment\n+ 1 2\n"
        recovered = loads_stream(text)
        assert len(recovered) == 1

    def test_missing_header_rejected(self):
        with pytest.raises(StreamFormatError, match="header"):
            loads_stream("+ 0 0\n")

    def test_garbled_header_rejected(self):
        with pytest.raises(StreamFormatError):
            loads_stream("# feww-stream v1 n=x m=2\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(StreamFormatError, match="line 2"):
            loads_stream("# feww-stream v1 n=4 m=4\n* 0 0\n")

    def test_non_integer_endpoint_rejected(self):
        with pytest.raises(StreamFormatError, match="non-integer"):
            loads_stream("# feww-stream v1 n=4 m=4\n+ a 0\n")

    def test_validation_applies_on_load(self):
        text = "# feww-stream v1 n=4 m=4\n- 0 0\n"
        with pytest.raises(Exception):
            loads_stream(text)  # delete of absent edge
        recovered = loads_stream(text, validate=False)
        assert len(recovered) == 1
