"""Unit tests for workload generators: each generator's promise holds."""

import random

import pytest

from repro.streams.adapters import bipartite_double_cover, log_records_to_stream
from repro.streams.generators import (
    GeneratorConfig,
    adversarial_interleaved_stream,
    database_log_stream,
    degree_cascade_graph,
    deletion_churn_stream,
    dos_attack_log,
    planted_star_graph,
    planted_star_undirected,
    random_bipartite_graph,
    social_network_stream,
    zipf_frequency_stream,
)


CONFIG = GeneratorConfig(n=50, m=200, seed=11)


class TestPlantedStar:
    def test_star_has_planted_degree(self):
        stream = planted_star_graph(CONFIG, star_degree=40, background_degree=5)
        assert stream.degree_of(0) == 40

    def test_star_is_unique_maximum(self):
        stream = planted_star_graph(CONFIG, star_degree=40, background_degree=5)
        degrees = stream.final_degrees()
        assert degrees[0] == 40
        assert all(deg <= 5 for vertex, deg in degrees.items() if vertex != 0)

    def test_custom_star_vertex(self):
        stream = planted_star_graph(CONFIG, star_degree=30, star_vertex=7)
        assert stream.stats().max_degree_vertex == 7

    def test_star_degree_exceeding_m_rejected(self):
        with pytest.raises(ValueError):
            planted_star_graph(CONFIG, star_degree=201)

    def test_background_must_be_below_star(self):
        with pytest.raises(ValueError):
            planted_star_graph(CONFIG, star_degree=10, background_degree=10)

    def test_deterministic_given_seed(self):
        first = planted_star_graph(CONFIG, star_degree=20, background_degree=3)
        second = planted_star_graph(CONFIG, star_degree=20, background_degree=3)
        assert list(first) == list(second)

    def test_unshuffled_order_groups_by_vertex(self):
        config = GeneratorConfig(n=50, m=200, seed=11, shuffle=False)
        stream = planted_star_graph(config, star_degree=10)
        assert [item.edge.b for item in stream][:10] == list(range(10))


class TestDegreeCascade:
    def test_contains_degree_d_vertex(self):
        stream = degree_cascade_graph(CONFIG, d=40, alpha=4)
        assert stream.max_degree() >= 40

    def test_levels_shrink_geometrically(self):
        config = GeneratorConfig(n=200, m=200, seed=1)
        stream = degree_cascade_graph(config, d=40, alpha=4, ratio=3.0)
        degrees = sorted(stream.final_degrees().values(), reverse=True)
        # exactly one vertex at the top level
        assert degrees[0] >= 40
        assert degrees[1] < 40

    def test_rejects_d_above_m(self):
        with pytest.raises(ValueError):
            degree_cascade_graph(CONFIG, d=500, alpha=2)

    def test_rejects_alpha_zero(self):
        with pytest.raises(ValueError):
            degree_cascade_graph(CONFIG, d=10, alpha=0)


class TestRandomBipartite:
    def test_edge_count(self):
        stream = random_bipartite_graph(CONFIG, n_edges=300)
        assert len(stream.final_edges()) == 300

    def test_edges_distinct(self):
        stream = random_bipartite_graph(CONFIG, n_edges=300)
        edges = [item.edge for item in stream]
        assert len(set(edges)) == len(edges)

    def test_rejects_too_many_edges(self):
        with pytest.raises(ValueError):
            random_bipartite_graph(GeneratorConfig(n=3, m=3, seed=0), n_edges=10)


class TestZipf:
    def test_head_items_heavier(self):
        config = GeneratorConfig(n=100, m=5000, seed=2)
        stream = zipf_frequency_stream(config, n_records=5000, exponent=1.5)
        degrees = stream.final_degrees()
        head = sum(degrees.get(a, 0) for a in range(10))
        tail = sum(degrees.get(a, 0) for a in range(90, 100))
        assert head > 5 * tail

    def test_witnesses_are_arrival_indices(self):
        config = GeneratorConfig(n=10, m=50, seed=3)
        stream = zipf_frequency_stream(config, n_records=50)
        assert [item.edge.b for item in stream] == list(range(50))

    def test_rejects_m_below_records(self):
        with pytest.raises(ValueError):
            zipf_frequency_stream(GeneratorConfig(n=10, m=10, seed=0), n_records=11)


class TestAdversarialInterleaved:
    def test_star_arrives_last(self):
        config = GeneratorConfig(n=20, m=500, seed=4)
        stream = adversarial_interleaved_stream(
            config, star_degree=30, n_decoys=10, decoy_degree=20
        )
        star_positions = [i for i, item in enumerate(stream) if item.edge.a == 0]
        assert min(star_positions) == len(stream) - 30

    def test_degrees(self):
        config = GeneratorConfig(n=20, m=500, seed=4)
        stream = adversarial_interleaved_stream(
            config, star_degree=30, n_decoys=10, decoy_degree=20
        )
        assert stream.degree_of(0) == 30
        for decoy in range(1, 11):
            assert stream.degree_of(decoy) == 20

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            adversarial_interleaved_stream(
                GeneratorConfig(n=5, m=10, seed=0),
                star_degree=5,
                n_decoys=3,
                decoy_degree=5,
            )


class TestDeletionChurn:
    def test_final_graph_is_exactly_the_star(self):
        config = GeneratorConfig(n=20, m=50, seed=5)
        stream = deletion_churn_stream(config, star_degree=10, churn_edges=100)
        degrees = stream.final_degrees()
        assert degrees == {0: 10}

    def test_stream_contains_deletions(self):
        config = GeneratorConfig(n=20, m=50, seed=5)
        stream = deletion_churn_stream(config, star_degree=10, churn_edges=100)
        assert not stream.insertion_only
        assert stream.stats().n_deletes == 100

    def test_valid_turnstile_discipline(self):
        # EdgeStream validation would raise if churn deleted absent edges.
        config = GeneratorConfig(n=10, m=20, seed=6)
        deletion_churn_stream(config, star_degree=5, churn_edges=50)


class TestApplicationLogs:
    def test_dos_attack_victim_is_heavy(self):
        records = dos_attack_log(n_hosts=50, n_records=2000, seed=7)
        stream, items, _ = log_records_to_stream(records)
        victim = items.encode("10.0.0.1")
        degrees = stream.final_degrees()
        assert degrees[victim] == max(degrees.values())

    def test_dos_attack_sources_distinct(self):
        records = dos_attack_log(n_hosts=50, n_records=1000, attack_fraction=1.0, seed=8)
        sources = {source for _, source in records}
        assert len(sources) == len(records)

    def test_database_log_hot_row(self):
        records = database_log_stream(
            n_rows=100, n_users=50, n_updates=2000, hot_fraction=0.3, seed=9
        )
        stream, items, _ = log_records_to_stream(records)
        hot = items.encode("orders:42")
        degrees = stream.final_degrees()
        assert degrees[hot] == max(degrees.values())

    def test_social_network_influencer_degree(self):
        edges, n_users = social_network_stream(
            n_users=200, n_followers=50, n_background=100, seed=10
        )
        stream = bipartite_double_cover(edges, n_users)
        assert stream.degree_of(0) == 50
        assert stream.stats().max_degree_vertex == 0

    def test_social_network_rejects_too_many_followers(self):
        with pytest.raises(ValueError):
            social_network_stream(n_users=10, n_followers=10)


class TestPlantedStarUndirected:
    def test_star_is_max_degree_and_cover_is_valid(self):
        u, v = planted_star_undirected(64, 400, star_degree=50, seed=5)
        assert len(u) == 400
        # Validation of the double cover enforces pair uniqueness.
        cover = bipartite_double_cover([(a, b) for a, b in zip(u, v)], 64)
        degrees = cover.final_degrees()
        assert degrees[0] >= 50
        assert degrees[0] == max(degrees.values())

    def test_pairs_unique_and_canonical(self):
        u, v = planted_star_undirected(32, 200, star_degree=10, seed=6)
        assert all(a < b for a, b in zip(u.tolist(), v.tolist()))
        assert len({(a, b) for a, b in zip(u.tolist(), v.tolist())}) == 200

    def test_reproducible(self):
        first = planted_star_undirected(32, 100, star_degree=8, seed=7)
        second = planted_star_undirected(32, 100, star_degree=8, seed=7)
        assert first[0].tolist() == second[0].tolist()
        assert first[1].tolist() == second[1].tolist()

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="star_degree"):
            planted_star_undirected(10, 20, star_degree=10)
        with pytest.raises(ValueError, match="smaller than"):
            planted_star_undirected(10, 3, star_degree=5)
        with pytest.raises(ValueError, match="possible pairs"):
            planted_star_undirected(5, 100, star_degree=2)
