"""Unit tests for stream adapters: label codecs and the double cover."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.adapters import (
    LabelCodec,
    bipartite_double_cover,
    log_records_to_stream,
)
from repro.streams.edge import DELETE, Edge


class TestLabelCodec:
    def test_first_seen_order(self):
        codec = LabelCodec()
        assert codec.encode("x") == 0
        assert codec.encode("y") == 1
        assert codec.encode("x") == 0

    def test_decode_roundtrip(self):
        codec = LabelCodec()
        identifier = codec.encode(("tuple", "label"))
        assert codec.decode(identifier) == ("tuple", "label")

    def test_decode_unknown_raises(self):
        codec = LabelCodec()
        with pytest.raises(KeyError):
            codec.decode(0)
        codec.encode("a")
        with pytest.raises(KeyError):
            codec.decode(1)

    def test_len_and_contains(self):
        codec = LabelCodec()
        codec.encode("a")
        codec.encode("b")
        assert len(codec) == 2
        assert "a" in codec
        assert "c" not in codec

    @given(st.lists(st.text(max_size=5)))
    def test_ids_dense_and_consistent(self, labels):
        codec = LabelCodec()
        ids = [codec.encode(label) for label in labels]
        assert set(ids) == set(range(len(codec)))
        for label, identifier in zip(labels, ids):
            assert codec.encode(label) == identifier
            assert codec.decode(identifier) == label


class TestLogRecordsToStream:
    def test_basic_conversion(self):
        records = [("ip1", "t0"), ("ip2", "t1"), ("ip1", "t2")]
        stream, items, witnesses = log_records_to_stream(records)
        assert stream.n == 2 and stream.m == 3
        assert stream.degree_of(items.encode("ip1")) == 2
        assert stream.degree_of(items.encode("ip2")) == 1

    def test_repeated_pairs_dropped(self):
        records = [("a", "w"), ("a", "w"), ("a", "w2")]
        stream, _, _ = log_records_to_stream(records)
        assert len(stream) == 2

    def test_explicit_dimensions(self):
        stream, _, _ = log_records_to_stream([("a", "w")], n=100, m=200)
        assert stream.n == 100 and stream.m == 200

    def test_empty_log(self):
        stream, items, witnesses = log_records_to_stream([])
        assert len(stream) == 0
        assert len(items) == 0

    def test_witnesses_decode_back(self):
        records = [("hot", f"user{i}") for i in range(5)]
        stream, items, witnesses = log_records_to_stream(records)
        hot = items.encode("hot")
        labels = {witnesses.decode(b) for b in stream.neighbours_of(hot)}
        assert labels == {f"user{i}" for i in range(5)}


class TestBipartiteDoubleCover:
    def test_each_edge_doubled(self):
        stream = bipartite_double_cover([(0, 1), (1, 2)], 3)
        assert len(stream) == 4
        assert stream.final_edges() == {
            Edge(0, 1),
            Edge(1, 0),
            Edge(1, 2),
            Edge(2, 1),
        }

    def test_degrees_match_original_graph(self):
        # Star with centre 0 and leaves 1..4: centre degree 4.
        edges = [(0, leaf) for leaf in range(1, 5)]
        stream = bipartite_double_cover(edges, 5)
        assert stream.degree_of(0) == 4
        for leaf in range(1, 5):
            assert stream.degree_of(leaf) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            bipartite_double_cover([(2, 2)], 5)

    def test_signs_propagate_to_both_copies(self):
        stream = bipartite_double_cover(
            [(0, 1), (0, 1)], 3, signs=[1, -1]
        )
        assert stream.final_edges() == set()
        assert not stream.insertion_only

    def test_sign_length_mismatch(self):
        with pytest.raises(ValueError):
            bipartite_double_cover([(0, 1)], 3, signs=[1, 1])

    def test_order_preserved(self):
        stream = bipartite_double_cover([(0, 1), (2, 1)], 3)
        assert stream[0].edge == Edge(0, 1)
        assert stream[1].edge == Edge(1, 0)
        assert stream[2].edge == Edge(2, 1)
        assert stream[3].edge == Edge(1, 2)
