"""Unit tests for stream adapters: label codecs and the double cover."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.adapters import (
    LabelCodec,
    bipartite_double_cover,
    bipartite_double_cover_columnar,
    log_records_to_stream,
)
from repro.streams.edge import DELETE, Edge


class TestLabelCodec:
    def test_first_seen_order(self):
        codec = LabelCodec()
        assert codec.encode("x") == 0
        assert codec.encode("y") == 1
        assert codec.encode("x") == 0

    def test_decode_roundtrip(self):
        codec = LabelCodec()
        identifier = codec.encode(("tuple", "label"))
        assert codec.decode(identifier) == ("tuple", "label")

    def test_decode_unknown_raises(self):
        codec = LabelCodec()
        with pytest.raises(KeyError):
            codec.decode(0)
        codec.encode("a")
        with pytest.raises(KeyError):
            codec.decode(1)

    def test_len_and_contains(self):
        codec = LabelCodec()
        codec.encode("a")
        codec.encode("b")
        assert len(codec) == 2
        assert "a" in codec
        assert "c" not in codec

    @given(st.lists(st.text(max_size=5)))
    def test_ids_dense_and_consistent(self, labels):
        codec = LabelCodec()
        ids = [codec.encode(label) for label in labels]
        assert set(ids) == set(range(len(codec)))
        for label, identifier in zip(labels, ids):
            assert codec.encode(label) == identifier
            assert codec.decode(identifier) == label


class TestLogRecordsToStream:
    def test_basic_conversion(self):
        records = [("ip1", "t0"), ("ip2", "t1"), ("ip1", "t2")]
        stream, items, witnesses = log_records_to_stream(records)
        assert stream.n == 2 and stream.m == 3
        assert stream.degree_of(items.encode("ip1")) == 2
        assert stream.degree_of(items.encode("ip2")) == 1

    def test_repeated_pairs_dropped(self):
        records = [("a", "w"), ("a", "w"), ("a", "w2")]
        stream, _, _ = log_records_to_stream(records)
        assert len(stream) == 2

    def test_explicit_dimensions(self):
        stream, _, _ = log_records_to_stream([("a", "w")], n=100, m=200)
        assert stream.n == 100 and stream.m == 200

    def test_empty_log(self):
        stream, items, witnesses = log_records_to_stream([])
        assert len(stream) == 0
        assert len(items) == 0

    def test_witnesses_decode_back(self):
        records = [("hot", f"user{i}") for i in range(5)]
        stream, items, witnesses = log_records_to_stream(records)
        hot = items.encode("hot")
        labels = {witnesses.decode(b) for b in stream.neighbours_of(hot)}
        assert labels == {f"user{i}" for i in range(5)}


class TestBipartiteDoubleCover:
    def test_each_edge_doubled(self):
        stream = bipartite_double_cover([(0, 1), (1, 2)], 3)
        assert len(stream) == 4
        assert stream.final_edges() == {
            Edge(0, 1),
            Edge(1, 0),
            Edge(1, 2),
            Edge(2, 1),
        }

    def test_degrees_match_original_graph(self):
        # Star with centre 0 and leaves 1..4: centre degree 4.
        edges = [(0, leaf) for leaf in range(1, 5)]
        stream = bipartite_double_cover(edges, 5)
        assert stream.degree_of(0) == 4
        for leaf in range(1, 5):
            assert stream.degree_of(leaf) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            bipartite_double_cover([(2, 2)], 5)

    def test_signs_propagate_to_both_copies(self):
        stream = bipartite_double_cover(
            [(0, 1), (0, 1)], 3, signs=[1, -1]
        )
        assert stream.final_edges() == set()
        assert not stream.insertion_only

    def test_sign_length_mismatch(self):
        with pytest.raises(ValueError):
            bipartite_double_cover([(0, 1)], 3, signs=[1, 1])

    def test_order_preserved(self):
        stream = bipartite_double_cover([(0, 1), (2, 1)], 3)
        assert stream[0].edge == Edge(0, 1)
        assert stream[1].edge == Edge(1, 0)
        assert stream[2].edge == Edge(2, 1)
        assert stream[3].edge == Edge(1, 2)


class TestBipartiteDoubleCoverColumnar:
    """The vectorized cover must match the per-item one update for update."""

    @given(
        st.lists(
            # Canonical u < v pairs: unique ordered pairs would still
            # collide as undirected edges ((0,1) vs (1,0)), which both
            # cover builders rightly reject.
            st.tuples(st.integers(0, 19), st.integers(0, 19))
            .filter(lambda pair: pair[0] != pair[1])
            .map(lambda pair: (min(pair), max(pair))),
            max_size=60,
            unique=True,
        )
    )
    def test_equivalent_to_per_item(self, pairs):
        per_item = bipartite_double_cover(pairs, 20)
        u = np.array([pair[0] for pair in pairs], dtype=np.int64)
        v = np.array([pair[1] for pair in pairs], dtype=np.int64)
        columnar = bipartite_double_cover_columnar(u, v, 20)
        assert list(columnar) == list(per_item)
        assert (columnar.n, columnar.m) == (per_item.n, per_item.m)

    def test_signs_interleaved_per_copy(self):
        cover = bipartite_double_cover_columnar(
            np.array([0, 0]), np.array([1, 1]), 3, sign=np.array([1, -1])
        )
        assert cover.sign.tolist() == [1, 1, -1, -1]
        per_item = bipartite_double_cover([(0, 1), (0, 1)], 3, signs=[1, -1])
        assert list(cover) == list(per_item)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            bipartite_double_cover_columnar(np.array([2]), np.array([2]), 5)

    def test_sign_length_mismatch(self):
        with pytest.raises(ValueError, match="signs"):
            bipartite_double_cover_columnar(
                np.array([0]), np.array([1]), 3, sign=np.array([1, 1])
            )

    def test_empty(self):
        cover = bipartite_double_cover_columnar(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 4
        )
        assert len(cover) == 0
        assert (cover.n, cover.m) == (4, 4)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            bipartite_double_cover_columnar(
                np.array([0, 1]), np.array([1]), 4
            )
