"""Tests for stream transformations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.stream import EdgeStream, stream_from_edges
from repro.streams.transforms import (
    interleaved,
    reversed_stream,
    shuffled,
    subsampled,
    with_duplicates,
)


def simple_stream(pairs, n=10, m=10):
    return stream_from_edges([Edge(a, b) for a, b in pairs], n, m)


TURNSTILE = EdgeStream(
    [StreamItem(Edge(0, 0)), StreamItem(Edge(0, 0), DELETE)], 4, 4
)


class TestShuffle:
    def test_preserves_final_graph(self):
        stream = simple_stream([(0, 1), (2, 3), (4, 5)])
        assert shuffled(stream, 1).final_edges() == stream.final_edges()

    def test_deterministic_given_seed(self):
        stream = simple_stream([(a, a) for a in range(8)])
        assert list(shuffled(stream, 7)) == list(shuffled(stream, 7))

    def test_rejects_turnstile(self):
        with pytest.raises(ValueError):
            shuffled(TURNSTILE, 0)

    @given(st.integers(0, 50))
    def test_is_a_permutation(self, seed):
        stream = simple_stream([(a, a) for a in range(9)])
        assert sorted(
            (item.edge.a, item.edge.b) for item in shuffled(stream, seed)
        ) == sorted((item.edge.a, item.edge.b) for item in stream)


class TestReverse:
    def test_reverses_order(self):
        stream = simple_stream([(0, 0), (1, 1)])
        assert [item.edge.a for item in reversed_stream(stream)] == [1, 0]

    def test_involution(self):
        stream = simple_stream([(a, a) for a in range(5)])
        assert list(reversed_stream(reversed_stream(stream))) == list(stream)

    def test_rejects_turnstile(self):
        with pytest.raises(ValueError):
            reversed_stream(TURNSTILE)


class TestInterleave:
    def test_concatenation_without_seed(self):
        first = simple_stream([(0, 0)])
        second = simple_stream([(1, 1)])
        merged = interleaved([first, second])
        assert [item.edge.a for item in merged] == [0, 1]

    def test_random_interleaving_preserves_internal_order(self):
        first = simple_stream([(0, b) for b in range(5)])
        second = simple_stream([(1, b) for b in range(5)])
        merged = interleaved([first, second], seed=3)
        first_positions = [item.edge.b for item in merged if item.edge.a == 0]
        second_positions = [item.edge.b for item in merged if item.edge.a == 1]
        assert first_positions == sorted(first_positions)
        assert second_positions == sorted(second_positions)
        assert len(merged) == 10

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            interleaved([])

    def test_rejects_mismatched_dimensions(self):
        with pytest.raises(ValueError):
            interleaved([simple_stream([(0, 0)]), EdgeStream([], 3, 3)])

    def test_rejects_overlapping_edges(self):
        first = simple_stream([(0, 0)])
        second = simple_stream([(0, 0)])
        with pytest.raises(Exception):
            interleaved([first, second])  # duplicate insert -> invalid


class TestDuplicates:
    def test_factor_zero_is_identity(self):
        stream = simple_stream([(a, a) for a in range(5)])
        raw = with_duplicates(stream, 0.0, seed=1)
        assert len(raw) == 5

    def test_integer_factor_exact_repeats(self):
        stream = simple_stream([(a, a) for a in range(5)])
        raw = with_duplicates(stream, 2.0, seed=1)
        assert len(raw) == 15  # each original + 2 repeats

    def test_fractional_factor_in_expectation(self):
        stream = simple_stream([(a % 10, a) for a in range(10)], n=10, m=400)
        raw = with_duplicates(stream, 0.5, seed=2)
        assert 10 <= len(raw) <= 20

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            with_duplicates(simple_stream([(0, 0)]), -0.1, seed=0)

    def test_works_with_duplicate_filter(self):
        """End to end: inject duplicates, dedup, recover a simple stream
        with the original final graph."""
        import random

        from repro.sketch.bloom import DuplicateFilter

        stream = simple_stream([(a, b) for a in range(5) for b in range(5)],
                               n=5, m=5)
        raw = with_duplicates(stream, 1.0, seed=3)
        dedup = DuplicateFilter(5, 5, capacity=100, fp_rate=0.001,
                                rng=random.Random(4))
        admitted = [
            item for item in raw if dedup.admit(item.edge.a, item.edge.b)
        ]
        recovered = EdgeStream(admitted, 5, 5)
        assert recovered.final_edges() == stream.final_edges()


class TestSubsample:
    def test_keep_all(self):
        stream = simple_stream([(a, a) for a in range(6)])
        assert len(subsampled(stream, 1.0, seed=0)) == 6

    def test_keep_none(self):
        stream = simple_stream([(a, a) for a in range(6)])
        assert len(subsampled(stream, 0.0, seed=0)) == 0

    def test_expected_fraction(self):
        stream = simple_stream([(a % 10, a) for a in range(200)], n=10, m=200)
        kept = len(subsampled(stream, 0.3, seed=1))
        assert 30 <= kept <= 90

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            subsampled(simple_stream([(0, 0)]), 1.5, seed=0)

    def test_rejects_turnstile(self):
        with pytest.raises(ValueError):
            subsampled(TURNSTILE, 0.5, seed=0)
