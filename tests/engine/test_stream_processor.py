"""StreamProcessor protocol conformance across the whole library."""

import numpy as np
import pytest

from repro.baselines import (
    CountMinSketch,
    CountSketch,
    FirstKWitnessCollector,
    FullStorage,
    MisraGries,
    MisraGriesWithWitnesses,
    SpaceSaving,
)
from repro.core.deg_res_sampling import DegResSampling
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.star_detection import StarDetection
from repro.core.topk import TopKFEwW
from repro.core.windowed import TumblingWindowFEwW
from repro.engine import StreamProcessor, ensure_stream_processor

import random


def every_structure():
    return [
        InsertionOnlyFEwW(16, 4, 2, seed=0),
        InsertionDeletionFEwW(16, 16, 4, 2, seed=0, scale=0.1),
        DegResSampling(16, 2, 2, 4, random.Random(0)),
        StarDetection(16, 2, seed=0),
        TopKFEwW(16, 4, 2, k=2, seed=0),
        TumblingWindowFEwW(16, 4, 2, window=8, seed=0),
        MisraGries(4),
        MisraGriesWithWitnesses(4, 4),
        SpaceSaving(4),
        CountMinSketch(0.1, 0.1, seed=0),
        CountSketch(16, rows=3, seed=0),
        FullStorage(16, 16),
        FirstKWitnessCollector(16, 4),
    ]


@pytest.mark.parametrize(
    "structure", every_structure(), ids=lambda s: type(s).__name__
)
def test_conforms_to_stream_processor(structure):
    assert isinstance(structure, StreamProcessor)
    assert ensure_stream_processor(structure) is structure


@pytest.mark.parametrize(
    "structure", every_structure(), ids=lambda s: type(s).__name__
)
def test_finalize_never_raises_on_empty_stream(structure):
    structure.process_batch(
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
    )
    structure.finalize()  # must not raise AlgorithmFailed


def test_ensure_reports_missing_methods():
    class NotAProcessor:
        pass

    with pytest.raises(TypeError, match="process_batch, finalize"):
        ensure_stream_processor(NotAProcessor(), "bad")
    assert not isinstance(NotAProcessor(), StreamProcessor)


def test_ensure_reports_non_callable_attributes():
    """A data field shadowing a protocol method is reported as such —
    not as a missing method (`isinstance` checks attribute presence
    only, so this is exactly the case the helper exists for)."""

    class FinalizeIsAField:
        finalize = 42

        def process_batch(self, a, b, sign=None):
            pass

    with pytest.raises(TypeError, match="non-callable int"):
        ensure_stream_processor(FinalizeIsAField(), "bad")

    class BothWrong:
        process_batch = "not a method"
        finalize = None

    with pytest.raises(
        TypeError, match="non-callable str.*non-callable NoneType"
    ):
        ensure_stream_processor(BothWrong(), "bad")


def test_ensure_reports_missing_and_non_callable_together():
    class HalfBroken:
        finalize = 3.14

    with pytest.raises(
        TypeError, match="missing process_batch; has finalize"
    ):
        ensure_stream_processor(HalfBroken(), "bad")
