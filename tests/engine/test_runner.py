"""FanoutRunner: single-pass fan-out, source normalisation, results."""

import numpy as np
import pytest

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.topk import TopKFEwW
from repro.engine import FanoutRunner, as_chunks, run_fanout
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.generators import (
    GeneratorConfig,
    planted_star_graph,
    zipf_frequency_stream,
)
from repro.streams.persist import dump_stream


def star_stream(n=64, m=256, d=16, seed=1):
    return planted_star_graph(
        GeneratorConfig(n=n, m=m, seed=seed), star_degree=d, background_degree=3
    )


class CountingProcessor:
    """Test double that records every chunk it is handed."""

    def __init__(self):
        self.chunks = []

    def process_batch(self, a, b, sign=None):
        self.chunks.append((a.copy(), b.copy()))

    def finalize(self):
        return sum(len(a) for a, _ in self.chunks)


class TestSourceNormalisation:
    def test_columnar_edge_and_file_sources_agree(self, tmp_path):
        stream = star_stream()
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        path = tmp_path / "s.npz"
        dump_stream(columnar, path, format="v2")
        for source in (columnar, stream, path, str(path)):
            totals = [
                np.concatenate([a for a, b, s in as_chunks(source, 16)]),
            ]
            assert len(totals[0]) == len(stream)
            assert totals[0].tolist() == columnar.a.tolist()

    def test_chunk_iterables_pass_through(self):
        chunks = [
            (np.array([1]), np.array([2]), np.array([1])),
            (np.array([3]), np.array([4]), np.array([1])),
        ]
        assert list(as_chunks(iter(chunks))) == chunks

    def test_unsupported_source_rejected(self):
        with pytest.raises(TypeError, match="cannot stream chunks"):
            list(as_chunks(42))


class TestFanoutRunner:
    def test_every_processor_sees_every_chunk_once(self):
        stream = ColumnarEdgeStream(
            np.arange(10) % 4, np.arange(10), n=4, m=10
        )
        first, second = CountingProcessor(), CountingProcessor()
        results = FanoutRunner(
            {"first": first, "second": second}, chunk_size=3
        ).run(stream)
        assert results == {"first": 10, "second": 10}
        assert len(first.chunks) == 4  # ceil(10 / 3)
        assert [len(a) for a, _ in first.chunks] == [3, 3, 3, 1]
        assert [a.tolist() for a, _ in first.chunks] == [
            a.tolist() for a, _ in second.chunks
        ]

    def test_single_pass_matches_individual_runs(self):
        stream = star_stream()
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        solo = InsertionOnlyFEwW(stream.n, 16, 2, seed=7)
        for a, b, sign in columnar.chunks(64):
            solo.process_batch(a, b, sign)
        fanned = InsertionOnlyFEwW(stream.n, 16, 2, seed=7)
        results = run_fanout(
            {"alg2": fanned, "topk": TopKFEwW(stream.n, 16, 2, k=2, seed=7)},
            columnar,
            chunk_size=64,
        )
        assert results["alg2"].vertex == solo.result().vertex
        assert results["alg2"].witnesses == solo.result().witnesses
        assert results["topk"]  # the planted star is found

    def test_duplicate_name_rejected(self):
        runner = FanoutRunner({"x": CountingProcessor()})
        with pytest.raises(ValueError, match="already registered"):
            runner.add("x", CountingProcessor())

    def test_nonconforming_processor_rejected(self):
        with pytest.raises(TypeError, match="StreamProcessor"):
            FanoutRunner({"bad": object()})

    def test_run_without_processors_rejected(self):
        with pytest.raises(RuntimeError, match="no processors"):
            FanoutRunner().run(star_stream())

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            FanoutRunner(chunk_size=0)

    def test_registration_introspection(self):
        counting = CountingProcessor()
        runner = FanoutRunner({"x": counting})
        assert runner.names() == ("x",)
        assert runner["x"] is counting
        assert len(runner) == 1

    def test_failed_algorithm_yields_none_not_raise(self):
        # Empty stream: Algorithm 2 finds nothing; runner reports None.
        results = run_fanout(
            {"alg2": InsertionOnlyFEwW(8, 4, 2, seed=0)},
            ColumnarEdgeStream(
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                n=8,
                m=8,
            ),
        )
        assert results == {"alg2": None}

    def test_zipf_multi_tenant_run(self):
        """One pass, heterogeneous consumers (algorithm + summary)."""
        from repro.baselines import CountMinSketch

        stream = zipf_frequency_stream(
            GeneratorConfig(n=32, m=512, seed=3), n_records=400
        )
        d = stream.max_degree()
        results = run_fanout(
            {
                "feww": InsertionOnlyFEwW(stream.n, d, 2, seed=1),
                "countmin": CountMinSketch(0.05, 0.05, seed=2),
            },
            stream,
            chunk_size=128,
        )
        sketch = results["countmin"]
        heavy = results["feww"]
        assert heavy is not None
        assert sketch.estimate(heavy.vertex) >= d
