"""Mergeable-summary layer conformance across the whole library."""

import random

import numpy as np
import pytest

from repro.baselines import (
    CountMinSketch,
    CountSketch,
    FirstKWitnessCollector,
    FullStorage,
    MisraGries,
    MisraGriesWithWitnesses,
    SpaceSaving,
)
from repro.core.deg_res_sampling import DegResSampling
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.star_detection import StarDetection
from repro.core.topk import TopKFEwW
from repro.core.windowed import TumblingWindowFEwW
from repro.engine import (
    SHARD_ANY,
    SHARD_BY_VERTEX,
    SHARD_BY_WINDOW,
    MergeableStreamProcessor,
    combined_routing,
    ensure_mergeable,
    shard_routing_of,
)


def every_structure():
    return [
        InsertionOnlyFEwW(16, 4, 2, seed=0),
        InsertionDeletionFEwW(16, 16, 4, 2, seed=0, scale=0.1),
        DegResSampling(16, 2, 2, 4, random.Random(0)),
        StarDetection(16, 2, seed=0),
        TopKFEwW(16, 4, 2, k=2, seed=0),
        TumblingWindowFEwW(16, 4, 2, window=8, seed=0),
        MisraGries(4),
        MisraGriesWithWitnesses(4, 4),
        SpaceSaving(4),
        CountMinSketch(0.1, 0.1, seed=0),
        CountSketch(16, rows=3, seed=0),
        FullStorage(16, 16),
        FirstKWitnessCollector(16, 4),
    ]


@pytest.mark.parametrize(
    "structure", every_structure(), ids=lambda s: type(s).__name__
)
def test_conforms_to_mergeable_protocol(structure):
    assert isinstance(structure, MergeableStreamProcessor)
    assert ensure_mergeable(structure) is structure
    routing = shard_routing_of(structure)
    assert routing in (SHARD_ANY, SHARD_BY_VERTEX) or (
        routing[0] == SHARD_BY_WINDOW and routing[1] >= 1
    )


@pytest.mark.parametrize(
    "structure", every_structure(), ids=lambda s: type(s).__name__
)
def test_split_produces_independent_conforming_shards(structure):
    shards = structure.split(3)
    assert len(shards) == 3
    for shard in shards:
        assert shard is not structure
        ensure_mergeable(shard)
    # shards are state-independent: feeding one never touches another
    a = np.array([1, 2], dtype=np.int64)
    b = np.array([3, 4], dtype=np.int64)
    shards[0].process_batch(a, b, np.ones(2, dtype=np.int64))
    merged = shards[1].merge(shards[2])
    merged.finalize()  # the untouched shards merge to an empty summary


@pytest.mark.parametrize(
    "structure", every_structure(), ids=lambda s: type(s).__name__
)
def test_split_then_merge_roundtrips_a_small_stream(structure):
    shards = structure.split(2)
    a = np.array([0, 1, 2, 3], dtype=np.int64)
    b = np.array([4, 5, 6, 7], dtype=np.int64)
    sign = np.ones(4, dtype=np.int64)
    shards[0].process_batch(a[:2], b[:2], sign[:2])
    shards[1].process_batch(a[2:], b[2:], sign[2:])
    merged = shards[0].merge(shards[1])
    merged.finalize()  # must not raise


class TestCompatibilityErrors:
    def test_space_saving_k_mismatch(self):
        with pytest.raises(ValueError, match="k=4 with k=8"):
            SpaceSaving(4).merge(SpaceSaving(8))

    def test_count_sketch_seed_mismatch(self):
        left = CountSketch(16, rows=3, seed=1)
        right = CountSketch(16, rows=3, seed=2)
        assert not left.shares_hashes_with(right)
        with pytest.raises(ValueError, match="same seed"):
            left.merge(right)

    def test_type_mismatch_is_a_value_error(self):
        with pytest.raises(ValueError, match="cannot merge"):
            MisraGries(4).merge(SpaceSaving(4))
        with pytest.raises(ValueError, match="cannot merge"):
            CountMinSketch(0.1, 0.1, seed=0).merge(MisraGries(4))

    def test_algorithm2_parameter_mismatch(self):
        with pytest.raises(ValueError, match="cannot merge Algorithm 2"):
            InsertionOnlyFEwW(16, 4, 2, seed=0).merge(
                InsertionOnlyFEwW(16, 8, 2, seed=0)
            )

    def test_algorithm3_strategy_mismatch(self):
        from repro.core.insertion_deletion import SamplingStrategy

        left = InsertionDeletionFEwW(16, 16, 4, 2, seed=0, scale=0.1)
        right = InsertionDeletionFEwW(
            16, 16, 4, 2, seed=0, scale=0.1,
            strategy=SamplingStrategy.EDGE,
        )
        with pytest.raises(ValueError, match="cannot merge Algorithm 3"):
            left.merge(right)

    def test_window_seed_mismatch(self):
        with pytest.raises(ValueError, match="tumbling-window"):
            TumblingWindowFEwW(16, 4, 2, window=8, seed=1).merge(
                TumblingWindowFEwW(16, 4, 2, window=8, seed=2)
            )

    def test_deg_res_mixed_ownership(self):
        standalone = DegResSampling(16, 2, 2, 4, random.Random(0))
        driven = DegResSampling(
            16, 2, 2, 4, random.Random(0), own_degrees=False
        )
        with pytest.raises(ValueError, match="standalone"):
            standalone.merge(driven)


class TestSpaceSavingMergeGuarantee:
    def test_merged_estimates_bracket_true_counts(self):
        rng = random.Random(5)
        left, right = SpaceSaving(8), SpaceSaving(8)
        true = {}
        for _ in range(400):
            item = rng.randrange(30)
            (left if rng.random() < 0.5 else right).update(item)
            true[item] = true.get(item, 0) + 1
        merged = left.merge(right)
        assert merged._length == 400
        for item, count in true.items():
            estimate = merged.estimate(item)
            if estimate:
                assert estimate >= merged.guaranteed_count(item)
                assert estimate <= count + 400 / 8
        # every true heavy hitter survives the merge
        for item, count in true.items():
            if count > 400 / 8:
                assert merged.estimate(item) >= count

    def test_merge_of_disjoint_small_streams_exact(self):
        left, right = SpaceSaving(10), SpaceSaving(10)
        for item in [1, 1, 2]:
            left.update(item)
        for item in [1, 3]:
            right.update(item)
        merged = left.merge(right)
        assert merged.estimate(1) == 3
        assert merged.estimate(2) == 1
        assert merged.estimate(3) == 1
        assert merged.guaranteed_count(1) == 3


def test_combined_routing_rules():
    assert combined_routing([SHARD_ANY, SHARD_ANY]) == SHARD_ANY
    assert combined_routing([SHARD_ANY, SHARD_BY_VERTEX]) == SHARD_BY_VERTEX
    assert combined_routing([("window", 8), SHARD_ANY]) == ("window", 8)
    with pytest.raises(ValueError, match="incompatible"):
        combined_routing([SHARD_BY_VERTEX, ("window", 8)])
    with pytest.raises(ValueError, match="incompatible"):
        combined_routing([("window", 8), ("window", 16)])
