"""Unit tests for the window-policy subsystem (repro.engine.windows)."""

import functools

import numpy as np
import pytest

from repro.baselines import FullStorage
from repro.core.windowed import Alg2WindowFactory, TumblingWindowFEwW
from repro.engine import (
    DecayPolicy,
    FanoutRunner,
    SlidingPolicy,
    TumblingPolicy,
    WindowedProcessor,
    derive_bucket_seed,
    ensure_mergeable,
)
from repro.streams.columnar import ColumnarEdgeStream


def full_storage_factory(n, m, seed):
    """Module-level (picklable) inner factory for a deterministic inner."""
    return FullStorage(n, m)


def make_full(n=16, m=2000):
    return functools.partial(full_storage_factory, n, m)


def make_stream(count, n=16, m=None, seed=3):
    m = m or count
    rng = np.random.default_rng(seed)
    a = rng.integers(0, n, size=count)
    b = np.arange(count, dtype=np.int64)
    return ColumnarEdgeStream(a, b, n=n, m=m, validate=False)


class TestPolicyValidation:
    def test_tumbling_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window must be >= 1"):
            TumblingPolicy(0)

    def test_sliding_rejects_bad_ratio(self):
        with pytest.raises(ValueError, match="bucket_ratio"):
            SlidingPolicy(100, bucket_ratio=0.0)
        with pytest.raises(ValueError, match="bucket_ratio"):
            SlidingPolicy(100, bucket_ratio=1.5)

    def test_decay_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="bucket_size"):
            DecayPolicy(0)
        with pytest.raises(ValueError, match="keep"):
            DecayPolicy(10, keep=0)

    def test_sliding_bucket_arithmetic(self):
        policy = SlidingPolicy(600, bucket_ratio=0.25)
        assert policy.bucket == 150
        assert policy.retained == 5
        tiny = SlidingPolicy(3, bucket_ratio=0.01)
        assert tiny.bucket >= 1

    def test_wrapper_rejects_non_policy(self):
        with pytest.raises(TypeError, match="WindowPolicy"):
            WindowedProcessor(make_full(), policy=object())


class TestInnerValidation:
    """The ensure_stream_processor / WindowedProcessor interaction."""

    def test_nested_window_routing_is_a_clear_conflict(self):
        """A window-routed inner processor (e.g. another windowed
        wrapper) cannot be nested: the outer wrapper already owns the
        ('window', bucket) partition."""
        factory = functools.partial(
            _tumbling_inner_factory, 16, 4, 2, 8
        )
        with pytest.raises(ValueError, match="cannot be nested"):
            WindowedProcessor(factory, TumblingPolicy(32))
        with pytest.raises(ValueError, match=r"\('window', 8\)"):
            WindowedProcessor(factory, SlidingPolicy(32))

    def test_vertex_routed_inner_is_fine(self):
        # Algorithm 2 declares "vertex" routing; inside a bucket there
        # is no further sharding, so the wrapper accepts it.
        WindowedProcessor(Alg2WindowFactory(16, 4, 2), TumblingPolicy(8))

    def test_nonconforming_inner_reports_missing_methods(self):
        with pytest.raises(TypeError, match="process_batch"):
            WindowedProcessor(lambda seed: object(), TumblingPolicy(8))

    def test_sliding_requires_mergeable_inner(self):
        with pytest.raises(TypeError, match="no merge"):
            WindowedProcessor(
                lambda seed: _UnmergeableProcessor(), SlidingPolicy(8)
            )

    def test_tumbling_accepts_unmergeable_inner(self):
        # Tumbling finalizes buckets at close; it never merges inners.
        WindowedProcessor(lambda seed: _UnmergeableProcessor(), TumblingPolicy(8))


def _tumbling_inner_factory(n, d, alpha, window, seed):
    return TumblingWindowFEwW(n, d, alpha, window, seed=seed)


class _UnmergeableProcessor:
    def process_batch(self, a, b, sign=None):
        pass

    def finalize(self):
        return None


class TestSeedDerivation:
    def test_matches_pre_refactor_formula(self):
        assert derive_bucket_seed(7, 3) == (7 * 1_000_003 + 3) & 0xFFFFFFFF

    def test_buckets_get_global_index_seeds(self):
        seen = []

        def recording_factory(seed):
            seen.append(seed)
            return FullStorage(8, 64)

        wrapper = WindowedProcessor(recording_factory, TumblingPolicy(4), seed=5)
        stream = make_stream(12, n=8, m=64)
        wrapper.process_batch(stream.a, stream.b, stream.sign)
        assert seen == [derive_bucket_seed(5, i) for i in range(4)]


class TestTumblingPolicy:
    def test_records_match_boundaries(self):
        wrapper = WindowedProcessor(make_full(), TumblingPolicy(5), seed=0)
        stream = make_stream(12)
        wrapper.process_batch(stream.a, stream.b, stream.sign)
        records = wrapper.finalize()
        assert [(r.window_index, r.start_update, r.end_update) for r in records] == [
            (0, 0, 5), (1, 5, 10), (2, 10, 12)
        ]

    def test_empty_stream_records_one_empty_window(self):
        wrapper = WindowedProcessor(make_full(), TumblingPolicy(5), seed=0)
        records = wrapper.finalize()
        assert len(records) == 1
        assert records[0].end_update == 0

    def test_chunk_size_invariance(self):
        results = []
        for chunk in (1, 3, 7, 100):
            wrapper = WindowedProcessor(make_full(), TumblingPolicy(5), seed=0)
            stream = make_stream(23)
            for a, b, sign in stream.chunks(chunk):
                wrapper.process_batch(a, b, sign)
            results.append(
                [
                    (r.window_index, sorted(
                        (v, tuple(sorted(ws)))
                        for v, ws in r.value._neighbours.items()
                    ))
                    for r in wrapper.finalize()
                ]
            )
        assert all(result == results[0] for result in results)


class TestSlidingPolicy:
    def test_span_within_bucket_bound(self):
        policy = SlidingPolicy(600, bucket_ratio=0.25)
        wrapper = WindowedProcessor(make_full(16, 3000), policy, seed=0)
        stream = make_stream(2500, m=3000)
        answer = wrapper.process(stream).finalize()
        assert 600 <= answer.span <= 600 + policy.bucket
        assert answer.end_update == 2500

    def test_merged_summary_is_exact_over_span(self):
        policy = SlidingPolicy(600, bucket_ratio=0.25)
        wrapper = WindowedProcessor(make_full(16, 3000), policy, seed=0)
        stream = make_stream(2500, m=3000)
        answer = wrapper.process(stream).finalize()
        tail = stream.a[-answer.span:]
        exact = {
            int(v): int(c) for v, c in zip(*np.unique(tail, return_counts=True))
        }
        got = {
            v: len(ws)
            for v, ws in answer.processor._neighbours.items()
            if ws
        }
        assert got == exact

    def test_short_stream_covers_everything(self):
        policy = SlidingPolicy(600, bucket_ratio=0.25)
        wrapper = WindowedProcessor(make_full(), policy, seed=0)
        stream = make_stream(100)
        answer = wrapper.process(stream).finalize()
        assert answer.start_update == 0
        assert answer.span == 100

    def test_memory_is_bounded_by_retained(self):
        policy = SlidingPolicy(100, bucket_ratio=0.25)
        wrapper = WindowedProcessor(make_full(16, 5000), policy, seed=0)
        stream = make_stream(5000, m=5000)
        wrapper.process(stream)
        assert len(wrapper._state) <= policy.retained

    def test_finalize_is_repeatable(self):
        # Buckets stay live (the merge runs over copies), so a second
        # finalize reports the same answer.
        policy = SlidingPolicy(60, bucket_ratio=0.5)
        wrapper = WindowedProcessor(make_full(16, 500), policy, seed=0)
        stream = make_stream(400, m=500)
        first = wrapper.process(stream).finalize()
        second = wrapper.finalize()
        assert first.span == second.span
        assert first.processor._neighbours == second.processor._neighbours


class TestDecayPolicy:
    def test_recent_plus_tail_partition_the_stream(self):
        policy = DecayPolicy(bucket_size=100, keep=3)
        wrapper = WindowedProcessor(make_full(16, 1000), policy, seed=0)
        stream = make_stream(950, m=1000)
        answer = wrapper.process(stream).finalize()
        assert [r.window_index for r in answer.recent] == [7, 8, 9]
        assert answer.recent[-1].end_update == 950
        assert answer.has_tail
        assert (answer.tail_start_update, answer.tail_end_update) == (0, 700)
        # Tail + recent cover every update exactly once.
        tail_degrees = {
            v: len(ws)
            for v, ws in answer.tail_processor._neighbours.items()
            if ws
        }
        exact = {
            int(v): int(c)
            for v, c in zip(*np.unique(stream.a[:700], return_counts=True))
        }
        assert tail_degrees == exact

    def test_no_tail_until_keep_exceeded(self):
        policy = DecayPolicy(bucket_size=100, keep=5)
        wrapper = WindowedProcessor(make_full(16, 500), policy, seed=0)
        stream = make_stream(450, m=500)
        answer = wrapper.process(stream).finalize()
        assert not answer.has_tail
        assert len(answer.recent) == 5


class TestMergeableLayer:
    def test_wrapper_passes_ensure_mergeable(self):
        wrapper = WindowedProcessor(make_full(), SlidingPolicy(40), seed=0)
        ensure_mergeable(wrapper)
        assert wrapper.shard_routing == ("window", SlidingPolicy(40).bucket)

    def test_split_after_processing_raises(self):
        wrapper = WindowedProcessor(make_full(), TumblingPolicy(4), seed=0)
        stream = make_stream(6)
        wrapper.process_batch(stream.a, stream.b, stream.sign)
        with pytest.raises(RuntimeError, match="before processing"):
            wrapper.split(2)

    def test_merge_rejects_policy_mismatch(self):
        one = WindowedProcessor(make_full(), TumblingPolicy(4), seed=0)
        other = WindowedProcessor(make_full(), TumblingPolicy(8), seed=0)
        with pytest.raises(ValueError, match="different policies or seeds"):
            one.merge(other)

    def test_merge_rejects_seed_mismatch(self):
        one = WindowedProcessor(make_full(), SlidingPolicy(40), seed=1)
        other = WindowedProcessor(make_full(), SlidingPolicy(40), seed=2)
        with pytest.raises(ValueError, match="different policies or seeds"):
            one.merge(other)

    def test_split_merge_equals_single_pass(self):
        stream = make_stream(1000, m=1000)
        single = WindowedProcessor(make_full(16, 1000), SlidingPolicy(300), seed=0)
        single_answer = single.process(stream).finalize()

        shards = WindowedProcessor(
            make_full(16, 1000), SlidingPolicy(300), seed=0
        ).split(3)
        # Feed each shard exactly its own buckets, as window routing does.
        bucket = SlidingPolicy(300).bucket
        for start in range(0, 1000, bucket):
            owner = (start // bucket) % 3
            shards[owner].process_batch(
                stream.a[start:start + bucket],
                stream.b[start:start + bucket],
                stream.sign[start:start + bucket],
            )
        merged = shards[0].merge(shards[1]).merge(shards[2])
        merged_answer = merged.finalize()
        assert merged_answer.span == single_answer.span
        assert (
            merged_answer.processor._neighbours
            == single_answer.processor._neighbours
        )


class TestFanoutIntegration:
    def test_windowed_and_plain_processors_share_one_pass(self):
        stream = make_stream(500, m=500)
        results = FanoutRunner(
            {
                "sliding": WindowedProcessor(
                    make_full(16, 500), SlidingPolicy(120), seed=0
                ),
                "whole": FullStorage(16, 500),
            },
            chunk_size=64,
        ).run(stream)
        assert results["sliding"].span >= 120
        whole = {
            int(v): int(c)
            for v, c in zip(*np.unique(stream.a, return_counts=True))
        }
        got = {
            v: len(ws)
            for v, ws in results["whole"]._neighbours.items()
            if ws
        }
        assert got == whole


class TestMidStreamQuery:
    """WindowedProcessor.query(): answers at any point, no state change."""

    def _fed(self, policy, count=500):
        processor = WindowedProcessor(make_full(16, 500), policy, seed=0)
        stream = make_stream(count, m=500)
        processor.process_batch(stream.a, stream.b, stream.sign)
        return processor

    def test_sliding_query_covers_up_to_current_update(self):
        policy = SlidingPolicy(120)
        processor = WindowedProcessor(make_full(16, 500), policy, seed=0)
        stream = make_stream(500, m=500)
        # Feed to a position that is NOT a bucket boundary.
        position = 4 * policy.bucket + 7
        processor.process_batch(
            stream.a[:position], stream.b[:position], stream.sign[:position]
        )
        answer = processor.query()
        assert answer.end_update == position
        assert 120 <= answer.span <= 120 + policy.bucket
        # The merged summary is exact over the covered span.
        covered = slice(answer.start_update, answer.end_update)
        expect = {
            int(v): int(c)
            for v, c in zip(*np.unique(stream.a[covered], return_counts=True))
        }
        got = {
            v: len(ws)
            for v, ws in answer.processor._neighbours.items()
            if ws
        }
        assert got == expect

    def test_query_does_not_disturb_the_final_answer(self):
        policy = SlidingPolicy(120)
        probed = WindowedProcessor(make_full(16, 500), policy, seed=0)
        plain = WindowedProcessor(make_full(16, 500), policy, seed=0)
        stream = make_stream(500, m=500)
        step = 83
        for start in range(0, 500, step):
            stop = min(start + step, 500)
            for processor in (probed, plain):
                processor.process_batch(
                    stream.a[start:stop], stream.b[start:stop],
                    stream.sign[start:stop],
                )
            probed.query()  # repeated queries must be side-effect free
            probed.query()
        final_probed = probed.finalize()
        final_plain = plain.finalize()
        assert final_probed.span == final_plain.span
        assert (
            final_probed.processor._neighbours
            == final_plain.processor._neighbours
        )

    def test_tumbling_query_reports_completed_windows_only(self):
        processor = self._fed(TumblingPolicy(150), count=500)
        records = processor.query()
        # 500 updates = 3 closed windows + 50 in flight: the historical
        # "query the completed windows" semantics.
        assert [record.window_index for record in records] == [0, 1, 2]
        assert processor.query() == records

    def test_decay_query_includes_partial_bucket(self):
        processor = self._fed(DecayPolicy(100, keep=2), count=250)
        answer = processor.query()
        # Buckets 0..1 closed and retained (folding starts beyond
        # keep); bucket 2 in flight appears as the newest recent entry,
        # so recent transiently shows keep + 1 buckets.
        assert [record.end_update for record in answer.recent] == [100, 200, 250]
        assert not answer.has_tail
        final = processor.finalize()
        # finalize closes bucket 2 for real and folds bucket 0 away.
        assert final.has_tail
        assert [record.end_update for record in final.recent] == [200, 250]

    def test_query_on_empty_processor(self):
        sliding = WindowedProcessor(make_full(16, 500), SlidingPolicy(120),
                                    seed=0)
        assert sliding.query() is None
        tumbling = WindowedProcessor(make_full(16, 500), TumblingPolicy(100),
                                     seed=0)
        assert tumbling.query() == []
