"""CheckpointStore: atomic two-file snapshots and their failure modes."""

import json

import pytest

from repro.engine.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        state = {"counts": [1, 2, 3], "label": "cm"}
        store.save("run", state, chunk_index=5, position=320,
                   meta={"seed": 7})
        snapshot = store.load("run")
        assert isinstance(snapshot, Checkpoint)
        assert snapshot.state == state
        assert snapshot.chunk_index == 5
        assert snapshot.position == 320
        assert snapshot.complete is False
        assert snapshot.meta == {"seed": 7}

    def test_final_snapshot_marks_complete(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", {}, chunk_index=9, position=576, complete=True)
        assert store.load("run").complete is True

    def test_save_supersedes_previous_snapshot(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("shard-0", {"v": 1}, chunk_index=1, position=64)
        store.save("shard-0", {"v": 2}, chunk_index=2, position=128)
        snapshot = store.load("shard-0")
        assert snapshot.state == {"v": 2}
        assert snapshot.chunk_index == 2

    def test_superseded_payloads_are_unlinked(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for chunk in range(1, 4):
            store.save("run", {"chunk": chunk}, chunk_index=chunk,
                       position=chunk * 64)
        payloads = sorted(path.name for path in tmp_path.glob("run.*.pkl"))
        assert payloads == ["run.000000000003.pkl"]

    def test_tags_are_independent_series(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("shard-0", {"w": 0}, chunk_index=1, position=64)
        store.save("shard-1", {"w": 1}, chunk_index=2, position=128)
        assert store.tags() == ["shard-0", "shard-1"]
        assert store.load("shard-0").state == {"w": 0}
        assert store.load("shard-1").state == {"w": 1}

    def test_has_and_try_load_when_absent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert not store.has("run")
        assert store.try_load("run") is None
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            store.load("run")

    def test_directory_created_on_demand(self, tmp_path):
        store = CheckpointStore(tmp_path / "a" / "b")
        store.save("run", {}, chunk_index=0, position=0)
        assert store.has("run")


class TestTagValidation:
    @pytest.mark.parametrize("tag", ["", "has space", "dot.dot", "a/b", "é"])
    def test_bad_tags_rejected(self, tmp_path, tag):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError, match="checkpoint tag"):
            store.save(tag, {}, chunk_index=0, position=0)
        with pytest.raises(ValueError, match="checkpoint tag"):
            store.load(tag)


class TestDamageRejection:
    """A damaged checkpoint is rejected whole — never half-loaded."""

    def _saved(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", {"v": 1}, chunk_index=3, position=192)
        return store

    def test_torn_manifest_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        manifest = tmp_path / "run.manifest.json"
        manifest.write_text(manifest.read_text()[:20])
        with pytest.raises(CheckpointError, match="torn or corrupt"):
            store.load("run")
        # try_load treats present-but-damaged as an error, not a
        # fresh start — silent restarts would mask corruption.
        with pytest.raises(CheckpointError):
            store.try_load("run")

    def test_manifest_missing_fields_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        manifest = tmp_path / "run.manifest.json"
        data = json.loads(manifest.read_text())
        del data["sha256"]
        manifest.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="missing required fields"):
            store.load("run")

    def test_payload_digest_mismatch_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        payload = tmp_path / "run.000000000003.pkl"
        payload.write_bytes(payload.read_bytes()[:-1] + b"\x00")
        with pytest.raises(CheckpointError, match="digest mismatch"):
            store.load("run")

    def test_missing_payload_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        (tmp_path / "run.000000000003.pkl").unlink()
        with pytest.raises(CheckpointError, match="unreadable"):
            store.load("run")

    def test_future_format_version_rejected(self, tmp_path):
        store = self._saved(tmp_path)
        manifest = tmp_path / "run.manifest.json"
        data = json.loads(manifest.read_text())
        data["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        manifest.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="format version"):
            store.load("run")

    def test_no_stray_temp_files_after_save(self, tmp_path):
        self._saved(tmp_path)
        assert not list(tmp_path.glob("*.tmp.*"))
