"""ShardedRunner mechanics: registration, routing, backends, failures."""

import numpy as np
import pytest

from repro.baselines import CountMinSketch, MisraGries
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.windowed import TumblingWindowFEwW
from repro.engine import ShardedRunner, run_sharded, vertex_shard
from repro.engine.sharded import route_chunk
from repro.streams.columnar import ColumnarEdgeStream


def small_stream(n_updates=200, n=16):
    rng = np.random.default_rng(3)
    return ColumnarEdgeStream(
        rng.integers(0, n, size=n_updates),
        np.arange(n_updates, dtype=np.int64),
        n=n,
        m=n_updates,
    )


class FailingProcessor:
    """Mergeable test double that blows up mid-stream."""

    shard_routing = "any"

    def __init__(self):
        self.chunks = 0

    def process_batch(self, a, b, sign=None):
        self.chunks += 1
        if self.chunks >= 2:
            raise RuntimeError("synthetic mid-stream failure")

    def finalize(self):
        return self.chunks

    def merge(self, other):
        self.chunks += other.chunks
        return self

    def split(self, n_shards):
        return [FailingProcessor() for _ in range(n_shards)]


class TestRegistration:
    def test_rejects_non_mergeable_processor(self):
        class NoMergeLayer:
            def process_batch(self, a, b, sign=None):
                pass

            def finalize(self):
                return None

        with pytest.raises(TypeError, match="merge, split"):
            ShardedRunner({"bad": NoMergeLayer()})

    def test_rejects_duplicate_name(self):
        runner = ShardedRunner({"cm": CountMinSketch(0.1, 0.1, seed=0)})
        with pytest.raises(ValueError, match="already registered"):
            runner.add("cm", CountMinSketch(0.1, 0.1, seed=0))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="n_workers"):
            ShardedRunner(n_workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ShardedRunner(chunk_size=0)
        with pytest.raises(ValueError, match="backend"):
            ShardedRunner(backend="threads")

    def test_run_without_processors_rejected(self):
        with pytest.raises(RuntimeError, match="no processors"):
            ShardedRunner(n_workers=2).run(small_stream())

    def test_introspection(self):
        sketch = CountMinSketch(0.1, 0.1, seed=0)
        runner = ShardedRunner({"cm": sketch})
        assert runner.names() == ("cm",)
        assert runner["cm"] is sketch  # before run: the registered one
        assert len(runner) == 1


class TestRouting:
    def test_routing_resolution(self):
        runner = ShardedRunner(
            {
                "cm": CountMinSketch(0.1, 0.1, seed=0),
                "alg2": InsertionOnlyFEwW(16, 4, 2, seed=0),
            }
        )
        assert runner.routing() == "vertex"

    def test_incompatible_routings_rejected(self):
        runner = ShardedRunner(
            {
                "alg2": InsertionOnlyFEwW(16, 4, 2, seed=0),
                "win": TumblingWindowFEwW(16, 4, 2, window=8, seed=0),
            },
            n_workers=2,
        )
        with pytest.raises(ValueError, match="incompatible shard routings"):
            runner.run(small_stream())

    def test_vertex_shard_is_deterministic_and_total(self):
        vertices = np.arange(1000, dtype=np.int64)
        shards = vertex_shard(vertices, 4)
        assert np.array_equal(shards, vertex_shard(vertices, 4))
        assert set(shards.tolist()) == {0, 1, 2, 3}
        # every vertex goes to exactly one shard
        assert ((shards >= 0) & (shards < 4)).all()

    def test_route_chunk_partitions_updates_exactly_once(self):
        stream = small_stream(100)
        chunk = (stream.a, stream.b, stream.sign)
        # masked routings: the workers' sub-chunks partition the chunk
        for routing in ("vertex", ("window", 7)):
            sizes = [
                len(routed[0])
                for worker in range(3)
                if (routed := route_chunk(chunk, routing, worker, 3, 0, 0))
                is not None
            ]
            assert sum(sizes) == 100
        # "any" routing: whole-chunk round robin, exactly one owner
        owners = [
            route_chunk(chunk, "any", worker, 3, 5, 0) is not None
            for worker in range(3)
        ]
        assert owners.count(True) == 1
        assert owners[5 % 3]


class TestExecution:
    def test_single_worker_equals_fanout(self):
        stream = small_stream()
        results = run_sharded(
            {"mg": MisraGries(8)}, stream, n_workers=1
        )
        assert results["mg"]._length == len(stream)

    def test_merged_processor_accessible_after_run(self):
        stream = small_stream()
        runner = ShardedRunner(
            {"cm": CountMinSketch(0.1, 0.1, seed=1)}, n_workers=2
        )
        runner.run(stream)
        assert runner["cm"].estimate(int(stream.a[0])) >= 1

    def test_mmap_requires_path_source(self):
        runner = ShardedRunner(
            {"cm": CountMinSketch(0.1, 0.1, seed=1)}, n_workers=2, mmap=True
        )
        with pytest.raises(ValueError, match="path source"):
            runner.run(small_stream())

    @pytest.mark.parametrize("backend", ["process", "serial"])
    def test_worker_failure_propagates(self, backend):
        runner = ShardedRunner(
            {"fail": FailingProcessor()},
            n_workers=2,
            chunk_size=16,
            backend=backend,
        )
        expected = RuntimeError if backend == "process" else Exception
        with pytest.raises(expected, match="synthetic mid-stream failure"):
            runner.run(small_stream(200))

    def test_abnormal_worker_death_raises_instead_of_hanging(self):
        """A worker killed by the OS (simulated with os._exit, which
        skips the Python-level error reporting and queue draining) must
        surface as a RuntimeError, not a parent that blocks forever."""

        class DyingProcessor:
            shard_routing = "any"

            def process_batch(self, a, b, sign=None):
                import os

                os._exit(13)

            def finalize(self):
                return None

            def merge(self, other):
                return self

            def split(self, n_shards):
                return [DyingProcessor() for _ in range(n_shards)]

        runner = ShardedRunner(
            {"dying": DyingProcessor()}, n_workers=2, chunk_size=8
        )
        with pytest.raises(RuntimeError, match="terminated abnormally"):
            runner.run(small_stream(400))

    def test_worker_failure_propagates_from_file_pool(self, tmp_path):
        from repro.streams.persist import dump_stream

        path = tmp_path / "s.npz"
        dump_stream(small_stream(200), path, format="v2")
        runner = ShardedRunner(
            {"fail": FailingProcessor()}, n_workers=2, chunk_size=16
        )
        with pytest.raises(RuntimeError, match="synthetic mid-stream failure"):
            runner.run(str(path))

    def test_more_workers_than_chunks(self):
        stream = small_stream(10)
        results = run_sharded(
            {"cm": CountMinSketch(0.1, 0.1, seed=1)},
            stream,
            n_workers=4,
            chunk_size=64,
        )
        single = CountMinSketch(0.1, 0.1, seed=1)
        single.process_batch(stream.a, stream.b, stream.sign)
        assert np.array_equal(results["cm"]._table, single._table)

    def test_empty_stream(self):
        empty = ColumnarEdgeStream(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), n=4, m=4
        )
        results = run_sharded(
            {"alg2": InsertionOnlyFEwW(4, 2, 2, seed=0)}, empty, n_workers=2
        )
        assert results == {"alg2": None}


class TestSplitGuards:
    def test_split_after_processing_rejected(self):
        sketch = CountMinSketch(0.1, 0.1, seed=0)
        sketch.update(3)
        with pytest.raises(RuntimeError, match="before processing"):
            sketch.split(2)

    def test_split_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            MisraGries(4).split(0)

    def test_algorithm3_split_after_processing_rejected(self):
        from repro.core.insertion_deletion import InsertionDeletionFEwW

        algorithm = InsertionDeletionFEwW(16, 16, 4, 2, seed=0, scale=0.1)
        algorithm.process_batch(
            np.array([1], dtype=np.int64),
            np.array([2], dtype=np.int64),
            np.array([1], dtype=np.int64),
        )
        with pytest.raises(RuntimeError, match="before processing"):
            algorithm.split(2)

    def test_star_detection_split_after_processing_rejected(self):
        from repro.core.star_detection import StarDetection

        detector = StarDetection(16, 2, seed=0)
        detector.process_batch(
            np.array([1], dtype=np.int64), np.array([2], dtype=np.int64)
        )
        with pytest.raises(RuntimeError, match="before processing"):
            detector.split(2)
