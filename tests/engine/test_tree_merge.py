"""Tree-reduction merge: schedule, order contract, distributed path.

The contract under test (see :mod:`repro.engine.merge`): shard
summaries combine along a binomial reduction tree whose shape is a
fixed function of the worker count, the receiver is always the lower
shard index, and for associative merges the result is bit-identical to
the sequential left-fold — which makes the worker-side distributed
merge of the plain file pool indistinguishable from the serial
backend for every linear/exact structure.
"""

import numpy as np
import pytest

from repro.baselines import CountMinSketch, CountSketch, FullStorage
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.engine import FanoutRunner, ShardedRunner
from repro.engine.merge import tree_reduce, tree_rounds
from repro.engine.sharded import ShardedWorkerError, fork_available
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.persist import dump_stream

CHUNK = 173


# ----------------------------------------------------------------------
# The schedule.
# ----------------------------------------------------------------------


class TestTreeRounds:
    @pytest.mark.parametrize("n", range(1, 18))
    def test_every_shard_sends_exactly_once_except_zero(self, n):
        senders = [s for pairs in tree_rounds(n) for _, s in pairs]
        assert sorted(senders) == list(range(1, n))

    @pytest.mark.parametrize("n", range(1, 18))
    def test_receiver_is_always_the_lower_index(self, n):
        for pairs in tree_rounds(n):
            for receiver, sender in pairs:
                assert receiver < sender

    @pytest.mark.parametrize("n", range(2, 18))
    def test_log_depth(self, n):
        assert len(tree_rounds(n)) == (n - 1).bit_length()

    def test_receives_precede_the_send(self):
        # A worker's send round is the lowest set bit of its index;
        # it must only receive in strictly earlier rounds, or the
        # distributed pipeline would deadlock.
        n = 13
        for k, pairs in enumerate(tree_rounds(n)):
            for receiver, sender in pairs:
                assert sender % (2 ** (k + 1)) == 2**k
                assert receiver % (2 ** (k + 1)) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_rounds(0)


# ----------------------------------------------------------------------
# The in-process reduction.
# ----------------------------------------------------------------------


class TestTreeReduce:
    @pytest.mark.parametrize("n", range(1, 18))
    def test_matches_left_fold_for_associative_merge(self, n):
        # Tuple concatenation is associative but not commutative, so
        # this checks both the result and the left-to-right order.
        items = [(i,) for i in range(n)]
        assert tree_reduce(items, lambda x, y: x + y) == tuple(range(n))

    def test_pairing_shape(self):
        # Non-associative merge exposes the exact tree: for five
        # shards, ((0+1)+(2+3))+4.
        shape = tree_reduce(list(range(5)), lambda x, y: (x, y))
        assert shape == (((0, 1), (2, 3)), 4)

    def test_single_item_returned_unmerged(self):
        marker = object()
        assert tree_reduce([marker], lambda x, y: None) is marker

    def test_receiver_is_left_operand(self):
        calls = []

        def merge(x, y):
            calls.append((x, y))
            return x

        tree_reduce([0, 1, 2, 3], merge)
        assert calls == [(0, 1), (2, 3), (0, 2)]


# ----------------------------------------------------------------------
# The distributed worker-side tree (plain file pool).
# ----------------------------------------------------------------------


def _stream():
    rng = np.random.default_rng(19)
    a = rng.integers(0, 64, size=2400)
    b = rng.integers(0, 4000, size=2400)
    # Insertion-only streams must not re-insert a live edge; keep the
    # first occurrence of every (a, b) pair.
    _, first = np.unique(a * 4000 + b, return_index=True)
    first.sort()
    return ColumnarEdgeStream(a[first], b[first], n=64, m=4000)


def _factory():
    return {
        "cm": CountMinSketch(0.05, 0.05, seed=5),
        "cs": CountSketch(256, 5, seed=9),
        "alg2": InsertionOnlyFEwW(64, 80, 2, seed=13),
        "full": FullStorage(64, 4000),
    }


class _PoisonSketch(CountMinSketch):
    """Raises midway through its shard: exercises tree-path fail-fast."""

    def process_batch(self, a, b, sign=None):
        if np.any(np.asarray(a) == 63):
            raise ValueError("poison vertex observed")
        super().process_batch(a, b, sign)


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module")
def stream_file(tmp_path_factory):
    stream = _stream()
    path = tmp_path_factory.mktemp("tree") / "stream.npz"
    dump_stream(stream, path, format="v2")
    return stream, str(path)


@needs_fork
class TestDistributedTree:
    @pytest.mark.parametrize("workers", (2, 3, 4, 5))
    def test_matches_single_core_bit_identically(self, stream_file, workers):
        stream, path = stream_file
        single = FanoutRunner(_factory(), chunk_size=CHUNK)
        single.run(stream)
        runner = ShardedRunner(
            _factory(), n_workers=workers, chunk_size=CHUNK
        )
        runner.run(path)
        assert np.array_equal(single["cm"]._table, runner["cm"]._table)
        assert np.array_equal(single["cs"]._table, runner["cs"]._table)
        assert single["full"]._neighbours == runner["full"]._neighbours

    @pytest.mark.parametrize("workers", (2, 3, 4, 5))
    def test_matches_serial_backend(self, stream_file, workers):
        _, path = stream_file
        serial = ShardedRunner(
            _factory(), n_workers=workers, chunk_size=CHUNK, backend="serial"
        )
        serial.run(path)
        process = ShardedRunner(
            _factory(), n_workers=workers, chunk_size=CHUNK
        )
        process.run(path)
        assert np.array_equal(serial["cm"]._table, process["cm"]._table)
        assert np.array_equal(serial["cs"]._table, process["cs"]._table)
        for left, right in zip(
            serial["alg2"].runs, process["alg2"].runs
        ):
            assert left._candidates_seen == right._candidates_seen
            assert dict(left._reservoir) == dict(right._reservoir)

    def test_tree_path_is_taken_when_plain(self, stream_file, monkeypatch):
        _, path = stream_file
        taken = []
        original = ShardedRunner._run_file_tree

        def spy(self, *args, **kwargs):
            taken.append(True)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(ShardedRunner, "_run_file_tree", spy)
        runner = ShardedRunner(_factory(), n_workers=2, chunk_size=CHUNK)
        runner.run(path)
        assert taken

    def test_tree_path_skipped_under_retry_policy(
        self, stream_file, monkeypatch
    ):
        _, path = stream_file

        def explode(self, *args, **kwargs):  # pragma: no cover
            raise AssertionError("tree path taken on a retrying runner")

        monkeypatch.setattr(ShardedRunner, "_run_file_tree", explode)
        runner = ShardedRunner(
            _factory(), n_workers=2, chunk_size=CHUNK, on_failure="retry"
        )
        single = FanoutRunner(_factory(), chunk_size=CHUNK)
        single.run(stream_file[0])
        runner.run(path)
        assert np.array_equal(single["cm"]._table, runner["cm"]._table)

    def test_worker_error_fails_fast_with_root_cause(self, stream_file):
        _, path = stream_file
        runner = ShardedRunner(
            {"poison": _PoisonSketch(0.05, 0.05, seed=5)},
            n_workers=4,
            chunk_size=CHUNK,
        )
        with pytest.raises(ShardedWorkerError) as excinfo:
            runner.run(path)
        # The reported cause must be the worker's actual exception,
        # not the EOF cascade its tree partners see when it dies.
        assert excinfo.value.cause_type == "ValueError"
        assert "poison vertex observed" in str(excinfo.value)
