"""Shared-memory columnar transport: correctness, traffic, and leaks.

Covers the :mod:`repro.engine.shm` pool directly (publish/attach
round-trips, refcounted recycling, unconditional unlink) and through
:class:`~repro.engine.ShardedRunner`:

* sharded answers with the transport on are bit-identical to the
  single-core path and to the classic pickled-column path;
* with the transport engaged, chunk queues carry **only**
  :class:`~repro.engine.shm.ShmChunk` descriptors (and ``None``
  shutdown sentinels) — never column arrays;
* a SIGKILLed worker leaves **zero** shared segments behind, on both
  the raising path (retries exhausted) and the retry-and-succeed path.
"""

import numpy as np
import pytest

from repro.baselines import CountMinSketch, CountSketch
from repro.engine import FanoutRunner, ShardedRunner
from repro.engine.faults import FaultPlan
from repro.engine.sharded import fork_available
from repro.engine.shm import (
    ChunkAttacher,
    ChunkPublisher,
    ShmChunk,
    shm_available,
)
from repro.streams.columnar import ColumnarEdgeStream

pytestmark = pytest.mark.skipif(
    not (fork_available() and shm_available()),
    reason="queue-pool shm transport needs fork and POSIX shared memory",
)

CHUNK = 173


def turnstile_stream(length=2000, n=48, seed=17):
    """Signed stream obeying the simple-graph sign discipline: every
    (a, b) pair's updates alternate +1, -1, +1, ... by construction."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, n, size=length)
    b = rng.integers(0, 64, size=length)
    order = np.lexsort((b, a))
    parity = np.empty(length, dtype=np.int64)
    position = np.arange(length)
    boundaries = np.r_[
        True, (np.diff(a[order]) != 0) | (np.diff(b[order]) != 0)
    ]
    starts = np.maximum.accumulate(np.where(boundaries, position, 0))
    parity[order] = 1 - 2 * ((position - starts) % 2)
    return ColumnarEdgeStream(a, b, sign=parity, n=n, m=64)


def insert_stream(length=2000, n=48, seed=19):
    rng = np.random.default_rng(seed)
    return ColumnarEdgeStream(
        rng.integers(0, n, size=length),
        np.arange(length, dtype=np.int64),
        n=n,
        m=length,
    )


def attach_raises(name: str) -> bool:
    """True when ``name`` no longer exists in the shm namespace."""
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


class TestPublisherAttacher:
    def test_round_trip_preserves_columns(self):
        publisher = ChunkPublisher()
        try:
            a0 = np.arange(10, dtype=np.int64)
            b0 = a0 * 2
            s0 = np.where(a0 % 2 == 0, 1, -1).astype(np.int64)
            a1 = np.arange(100, 107, dtype=np.int64)
            b1 = a1 + 5
            descriptors = publisher.publish([(a0, b0, s0), None, (a1, b1, None)])
            assert descriptors[1] is None
            attacher = ChunkAttacher()
            va, vb, vs = attacher.view(descriptors[0])
            assert np.array_equal(va, a0)
            assert np.array_equal(vb, b0)
            assert np.array_equal(vs, s0)
            wa, wb, ws = attacher.view(descriptors[2])
            assert np.array_equal(wa, a1)
            assert np.array_equal(wb, b1)
            assert ws is None
            del va, vb, vs, wa, wb, ws
            attacher.close()
        finally:
            publisher.close()

    def test_refcount_recycles_only_at_zero(self):
        publisher = ChunkPublisher()
        try:
            columns = (
                np.zeros(8, dtype=np.int64),
                np.zeros(8, dtype=np.int64),
                None,
            )
            descriptors = publisher.publish([columns, columns])
            name = descriptors[0].segment
            assert descriptors[1].segment == name  # one segment, two users
            publisher.release(name)
            assert name not in publisher._free  # still referenced
            publisher.release(name)
            assert name in publisher._free
            # The freed segment is reused for the next chunk.
            again = publisher.publish([columns])
            assert again[0].segment == name
            assert publisher.segment_names() == [name]
        finally:
            publisher.close()

    def test_close_unlinks_everything(self):
        publisher = ChunkPublisher()
        columns = (
            np.ones(4, dtype=np.int64),
            np.ones(4, dtype=np.int64),
            None,
        )
        publisher.publish([columns])
        publisher.publish([columns])  # second segment: first still referenced
        names = publisher.segment_names()
        assert len(names) == 2
        publisher.close()  # success and failure paths share this
        assert all(attach_raises(name) for name in names)

    def test_empty_publish_allocates_nothing(self):
        publisher = ChunkPublisher()
        try:
            assert publisher.publish([None, None]) == [None, None]
            assert publisher.segment_names() == []
        finally:
            publisher.close()


class TestShardedTransportEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("shm_transport", [True, False, None])
    def test_count_sketch_bit_identical(self, workers, shm_transport):
        stream = turnstile_stream()
        factory = lambda: {"cs": CountSketch(64, rows=3, seed=6)}
        single = FanoutRunner(factory(), chunk_size=CHUNK).run(stream)
        sharded = ShardedRunner(
            factory(),
            n_workers=workers,
            chunk_size=CHUNK,
            shm_transport=shm_transport,
        ).run(stream)
        assert np.array_equal(single["cs"]._table, sharded["cs"]._table)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_count_min_insertion_only_bit_identical(self, workers):
        """sign=None chunks ride the two-column segment layout."""
        stream = insert_stream()
        factory = lambda: {"cm": CountMinSketch(0.05, 0.05, seed=5)}
        single = FanoutRunner(factory(), chunk_size=CHUNK).run(stream)
        sharded = ShardedRunner(
            factory(), n_workers=workers, chunk_size=CHUNK, shm_transport=True
        ).run(stream)
        assert np.array_equal(single["cm"]._table, sharded["cm"]._table)


class TestDescriptorOnlyTraffic:
    def test_chunk_queues_carry_only_descriptors(self, monkeypatch):
        payloads = []
        original = ShardedRunner._put_alive

        def spy(self, queue, item, process, worker):
            payloads.append(item)
            return original(self, queue, item, process, worker)

        monkeypatch.setattr(ShardedRunner, "_put_alive", spy)
        ShardedRunner(
            {"cs": CountSketch(64, rows=3, seed=6)},
            n_workers=2,
            chunk_size=CHUNK,
            shm_transport=True,
        ).run(turnstile_stream())
        chunks = [item for item in payloads if item is not None]
        assert chunks, "expected routed chunks on the queues"
        assert all(isinstance(item, ShmChunk) for item in chunks)


class TestChaosNoLeaks:
    @staticmethod
    def _record_segments(monkeypatch):
        names = []
        original = ChunkPublisher._acquire

        def recording(self, required):
            name = original(self, required)
            names.append(name)
            return name

        monkeypatch.setattr(ChunkPublisher, "_acquire", recording)
        return names

    def test_killed_worker_leaves_no_segments_on_raise(self, monkeypatch):
        names = self._record_segments(monkeypatch)
        runner = ShardedRunner(
            {"cs": CountSketch(64, rows=3, seed=6)},
            n_workers=2,
            chunk_size=CHUNK,
            shm_transport=True,
            retries=0,
            fault_plan=FaultPlan.kill(1, 2),
        )
        with pytest.raises(RuntimeError, match="terminated abnormally"):
            runner.run(turnstile_stream())
        assert names, "expected segments to have been allocated"
        assert all(attach_raises(name) for name in set(names))

    def test_worker_error_drain_releases_and_no_leaks(self, monkeypatch):
        """A worker that raises mid-stream drains its queue (releasing
        descriptors it will never process) and nothing leaks."""
        names = self._record_segments(monkeypatch)
        runner = ShardedRunner(
            {"cs": CountSketch(64, rows=3, seed=6)},
            n_workers=2,
            chunk_size=CHUNK,
            shm_transport=True,
            fault_plan=FaultPlan.read_error(1, 2),
        )
        with pytest.raises(RuntimeError):
            runner.run(turnstile_stream())
        assert names, "expected segments to have been allocated"
        assert all(attach_raises(name) for name in set(names))


def test_auto_mode_falls_back_to_pickling_when_probe_fails(monkeypatch):
    """shm_transport=None degrades gracefully on hosts without POSIX shm."""
    import repro.engine.sharded as sharded_module

    monkeypatch.setattr(sharded_module, "shm_available", lambda: False)
    stream = turnstile_stream(length=600)
    factory = lambda: {"cs": CountSketch(64, rows=3, seed=6)}
    single = FanoutRunner(factory(), chunk_size=CHUNK).run(stream)
    sharded = ShardedRunner(
        factory(), n_workers=2, chunk_size=CHUNK, shm_transport=None
    ).run(stream)
    assert np.array_equal(single["cs"]._table, sharded["cs"]._table)
