"""FaultPlan semantics: scoping, firing points, and validation."""

import pickle

import pytest

from repro.engine.faults import FAULT_KINDS, Fault, FaultPlan
from repro.streams.persist import StreamFormatError


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            Fault("meteor", worker=0, chunk=0)

    @pytest.mark.parametrize("kind", ["kill", "raise", "delay"])
    def test_chunk_scoped_kinds_need_a_chunk(self, kind):
        with pytest.raises(ValueError, match="chunk index"):
            Fault(kind, worker=0)

    def test_unknown_exception_name_rejected(self):
        with pytest.raises(ValueError, match="exception"):
            Fault("raise", worker=0, chunk=0, exc="KeyboardInterrupt")

    def test_negative_attempt_and_delay_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            Fault("kill", worker=0, chunk=0, attempt=-1)
        with pytest.raises(ValueError, match="delay_s"):
            Fault("delay", worker=0, chunk=0, delay_s=-0.5)

    def test_every_kind_has_a_constructor_covering_it(self):
        plans = (
            FaultPlan.kill(0, 1),
            FaultPlan.read_error(0, 1),
            FaultPlan.delay(0, 1, 0.0),
            FaultPlan.drop_result(0),
            FaultPlan.corrupt_result(0),
        )
        assert {plan.faults[0].kind for plan in plans} == set(FAULT_KINDS)


class TestFiring:
    def test_noop_plan_fires_nothing(self):
        plan = FaultPlan()
        assert plan.is_noop
        plan.fire(0, 0)  # no exception, no side effect
        assert not plan.drops_result(0)
        assert not plan.corrupts_result(0)

    def test_raise_fires_only_at_its_coordinates(self):
        plan = FaultPlan.read_error(worker=1, chunk=3, message="boom")
        plan.fire(0, 3)  # other worker
        plan.fire(1, 2)  # other chunk
        plan.fire(1, 3, attempt=1)  # other attempt
        with pytest.raises(OSError, match="boom"):
            plan.fire(1, 3)

    def test_wildcard_worker_matches_any(self):
        plan = FaultPlan.read_error(worker=None, chunk=0)
        for worker in (0, 3):
            with pytest.raises(OSError):
                plan.fire(worker, 0)

    def test_injectable_exception_classes(self):
        with pytest.raises(StreamFormatError):
            FaultPlan.read_error(0, 0, exc="StreamFormatError").fire(0, 0)
        with pytest.raises(TimeoutError):
            FaultPlan.read_error(0, 0, exc="TimeoutError").fire(0, 0)

    def test_in_process_kill_refuses_to_sigkill_the_caller(self):
        plan = FaultPlan.kill(worker=0, chunk=0)
        with pytest.raises(RuntimeError, match="in-process"):
            plan.fire(0, 0, in_process=True)

    def test_delay_is_inert_beyond_sleeping(self):
        FaultPlan.delay(worker=0, chunk=0, delay_s=0.0).fire(0, 0)

    def test_result_fault_predicates_respect_attempts(self):
        plan = FaultPlan.drop_result(2, attempt=1) + FaultPlan.corrupt_result(0)
        assert plan.drops_result(2, attempt=1)
        assert not plan.drops_result(2, attempt=0)
        assert not plan.drops_result(0, attempt=1)
        assert plan.corrupts_result(0)
        assert not plan.corrupts_result(1)


class TestComposition:
    def test_plans_compose_and_stay_immutable(self):
        first = FaultPlan.kill(0, 1)
        second = FaultPlan.delay(1, 2, 0.01)
        combined = first + second
        assert len(combined.faults) == 2
        assert len(first.faults) == 1  # operands untouched

    def test_plan_is_picklable(self):
        """Plans cross the process boundary inside worker task tuples."""
        plan = FaultPlan.kill(1, 3) + FaultPlan.drop_result(0, attempt=2)
        assert pickle.loads(pickle.dumps(plan)) == plan
