"""Public-API hygiene: ``__all__`` is sorted and matches reality.

For each curated package namespace, three invariants:

* every name in ``__all__`` actually exists on the module,
* ``__all__`` is sorted (so diffs stay reviewable as the API grows),
* every public symbol the module's namespace carries (anything not
  underscore-prefixed and not a submodule) appears in ``__all__`` —
  an import added to the package without an export decision is a bug
  one way or the other.
"""

import types

import pytest

import repro
import repro.engine
import repro.pipeline
import repro.streams

MODULES = [repro, repro.engine, repro.pipeline, repro.streams]


def public_symbols(module) -> set:
    return {
        name
        for name, value in vars(module).items()
        if not name.startswith("_")
        and not isinstance(value, types.ModuleType)
    }


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_names_exist(module):
    missing = [name for name in module.__all__ if not hasattr(module, name)]
    assert not missing, f"{module.__name__}.__all__ lists missing {missing}"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_is_sorted(module):
    assert list(module.__all__) == sorted(module.__all__), (
        f"{module.__name__}.__all__ is not sorted"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_has_no_duplicates(module):
    assert len(module.__all__) == len(set(module.__all__))


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_matches_public_namespace(module):
    public = public_symbols(module)
    exported = set(module.__all__)
    unexported = sorted(public - exported)
    phantom = sorted(exported - public)
    assert not unexported and not phantom, (
        f"{module.__name__}: public-but-unexported {unexported}, "
        f"exported-but-absent {phantom}"
    )
