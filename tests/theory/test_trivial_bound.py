"""Tests for the §1.3 trivial witness lower bound."""

import pytest

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.theory.bounds import trivial_witness_lower_bound_words


class TestTrivialBound:
    def test_formula(self):
        assert trivial_witness_lower_bound_words(100, 4) == 25.0
        assert trivial_witness_lower_bound_words(7, 2) == 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            trivial_witness_lower_bound_words(0, 1)
        with pytest.raises(ValueError):
            trivial_witness_lower_bound_words(10, 0)

    def test_any_correct_output_respects_it(self):
        """An output's witness words alone are >= 2 * d/alpha."""
        config = GeneratorConfig(n=64, m=512, seed=1)
        stream = planted_star_graph(config, star_degree=48, background_degree=3)
        for alpha in (1, 2, 4):
            algorithm = InsertionOnlyFEwW(64, 48, alpha, seed=alpha)
            result = algorithm.process(stream).result()
            floor = trivial_witness_lower_bound_words(48, alpha)
            assert result.size >= floor
            assert algorithm.space_words() >= 2 * floor
