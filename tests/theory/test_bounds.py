"""Tests for the closed-form bound formulas."""

import math

import pytest

from repro.theory.bounds import (
    deg_res_success_lower_bound,
    insertion_deletion_lower_bound_words,
    insertion_deletion_space_words,
    insertion_only_lower_bound_words,
    insertion_only_space_words,
    sampling_lemma_draws,
    set_disjointness_lower_bound_words,
)


class TestLemma31:
    def test_zero_heavy_nodes_gives_zero(self):
        assert deg_res_success_lower_bound(10, 0, 5) == 0.0

    def test_reservoir_covers_all_candidates(self):
        assert deg_res_success_lower_bound(5, 1, 5) == 1.0
        assert deg_res_success_lower_bound(3, 1, 10) == 1.0

    def test_matches_closed_form(self):
        n1, n2, s = 100, 10, 5
        expected = 1.0 - (1.0 - s / n1) ** n2
        assert deg_res_success_lower_bound(n1, n2, s) == pytest.approx(expected)

    def test_monotone_in_s(self):
        probabilities = [
            deg_res_success_lower_bound(100, 10, s) for s in (1, 5, 20, 50)
        ]
        assert probabilities == sorted(probabilities)

    def test_monotone_in_n2(self):
        probabilities = [
            deg_res_success_lower_bound(100, n2, 5) for n2 in (1, 5, 20)
        ]
        assert probabilities == sorted(probabilities)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            deg_res_success_lower_bound(-1, 0, 1)
        with pytest.raises(ValueError):
            deg_res_success_lower_bound(1, 1, 0)

    def test_exponential_form_is_weaker(self):
        """1 - (1-s/n1)^n2 >= 1 - e^{-s n2/n1} (the paper states both)."""
        for n1, n2, s in [(100, 10, 5), (50, 25, 3), (1000, 2, 7)]:
            tight = deg_res_success_lower_bound(n1, n2, s)
            loose = 1.0 - math.exp(-s * n2 / n1)
            assert tight >= loose - 1e-12


class TestLemma51:
    def test_formula(self):
        assert sampling_lemma_draws(100, 50, 10) == math.ceil(
            4 * math.log(100) * 100 * 10 / 50
        )

    def test_rejects_bad_ordering(self):
        with pytest.raises(ValueError):
            sampling_lemma_draws(10, 20, 5)
        with pytest.raises(ValueError):
            sampling_lemma_draws(10, 5, 6)

    def test_more_confidence_more_draws(self):
        assert sampling_lemma_draws(100, 50, 10, c=8) > sampling_lemma_draws(
            100, 50, 10, c=4
        )


class TestUpperBounds:
    def test_insertion_only_alpha_tradeoff(self):
        """Larger alpha shrinks the witness term (for fixed n, d)."""
        words = [insertion_only_space_words(4096, 256, alpha) for alpha in (1, 2, 4)]
        assert words == sorted(words, reverse=True)

    def test_insertion_only_contains_degree_table(self):
        assert insertion_only_space_words(1000, 1, 1) >= 1000

    def test_insertion_only_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            insertion_only_space_words(10, 5, 0)

    def test_insertion_deletion_alpha_quadratic(self):
        small_alpha = insertion_deletion_space_words(256, 256, 16, 2)
        large_alpha = insertion_deletion_space_words(256, 256, 16, 8)
        assert small_alpha / large_alpha > 6  # ~ (8/2)^2 = 16, with slack

    def test_insertion_deletion_crossover_at_sqrt_n(self):
        """Beyond alpha = sqrt(n) the bound decays like 1/alpha, not
        1/alpha^2: ratios flatten."""
        n = 1024  # sqrt = 32
        below = insertion_deletion_space_words(n, n, 8, 4)
        at = insertion_deletion_space_words(n, n, 8, 32)
        above = insertion_deletion_space_words(n, n, 8, 128)
        assert below > at > above
        # below the crossover the decay is super-linear in alpha (the
        # vertex-sample cap at n keeps it short of fully quadratic at
        # this n); above the crossover it is at most linear.
        assert below / at > 32 / 4
        assert at / above < (128 / 32) ** 1.5


class TestLowerBounds:
    def test_set_disjointness_shape(self):
        assert set_disjointness_lower_bound_words(100, 2) == 25
        with pytest.raises(ValueError):
            set_disjointness_lower_bound_words(100, 0.5)

    def test_insertion_only_two_terms(self):
        value = insertion_only_lower_bound_words(64, 16, 2)
        assert value == pytest.approx(64 / 4 + 64 * 16 / 4)

    def test_insertion_only_rejects_alpha_one(self):
        with pytest.raises(ValueError):
            insertion_only_lower_bound_words(64, 16, 1)

    def test_insertion_deletion_shape(self):
        assert insertion_deletion_lower_bound_words(100, 10, 2) == 250
        with pytest.raises(ValueError):
            insertion_deletion_lower_bound_words(100, 10, 0.1)

    def test_upper_bound_dominates_lower_bound(self):
        """Sanity: for matching parameters the algorithm's space is at
        least the lower bound (they're tight up to polylog)."""
        for n, d, alpha in [(256, 16, 2), (1024, 32, 4)]:
            upper = insertion_only_space_words(n, d, alpha)
            lower = insertion_only_lower_bound_words(n, d, alpha)
            assert upper >= lower
