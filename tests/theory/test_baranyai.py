"""Tests for the constructive Baranyai partition (Theorem 4.4)."""

import math

import pytest

from repro.theory.baranyai import baranyai_partition, is_baranyai_partition


class TestSmallCases:
    def test_k_equals_one(self):
        """k=1: a single class of n singletons."""
        partition = baranyai_partition(4, 1)
        assert len(partition) == 1
        assert sorted(map(min, partition[0])) == [0, 1, 2, 3]
        assert is_baranyai_partition(partition, 4, 1)

    def test_k_equals_n(self):
        """k=n: one class containing the full set."""
        partition = baranyai_partition(5, 5)
        assert partition == [[frozenset(range(5))]]
        assert is_baranyai_partition(partition, 5, 5)

    def test_k2_is_one_factorisation_of_k_n(self):
        """k=2 is the classical 1-factorisation of K_n (n even):
        n-1 perfect matchings."""
        for n in (4, 6, 8):
            partition = baranyai_partition(n, 2)
            assert len(partition) == n - 1
            assert is_baranyai_partition(partition, n, 2)

    @pytest.mark.parametrize("n,k", [(6, 3), (8, 4), (9, 3), (10, 5), (6, 2)])
    def test_general_cases(self, n, k):
        partition = baranyai_partition(n, k)
        assert is_baranyai_partition(partition, n, k)

    def test_class_count_is_binom(self):
        partition = baranyai_partition(8, 2)
        assert len(partition) == math.comb(7, 1)
        partition = baranyai_partition(6, 3)
        assert len(partition) == math.comb(5, 2)


class TestValidation:
    def test_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            baranyai_partition(7, 2)

    def test_rejects_k_out_of_range(self):
        with pytest.raises(ValueError):
            baranyai_partition(4, 0)
        with pytest.raises(ValueError):
            baranyai_partition(4, 5)


class TestChecker:
    def test_rejects_wrong_class_count(self):
        partition = baranyai_partition(6, 2)
        assert not is_baranyai_partition(partition[:-1], 6, 2)

    def test_rejects_duplicate_edge(self):
        partition = baranyai_partition(6, 2)
        tampered = [list(cls) for cls in partition]
        tampered[0][0] = tampered[1][0]
        assert not is_baranyai_partition(tampered, 6, 2)

    def test_rejects_non_covering_class(self):
        partition = [[frozenset({0, 1}), frozenset({0, 2})]]
        assert not is_baranyai_partition(partition, 4, 2)

    def test_rejects_non_divisor_input(self):
        assert not is_baranyai_partition([], 7, 2)


class TestLemma45Usage:
    def test_partition_splits_subsets_evenly(self):
        """Lemma 4.5 partitions the n_i-subsets of x_{i-1} into groups of
        n_{i-1}/n_i sets covering x_{i-1}: exactly the Baranyai classes."""
        n_prev, n_cur = 8, 4
        partition = baranyai_partition(n_prev, n_cur)
        expected_classes = math.comb(n_prev, n_cur) * n_cur // n_prev
        assert len(partition) == expected_classes
        assert all(len(cls) == n_prev // n_cur for cls in partition)

    def test_uniform_subset_decomposes_via_classes(self):
        """The expectation split at the heart of Lemma 4.5: drawing a
        uniform k-subset is identical to drawing a uniform class, then a
        uniform member of it.  Exact counting identity: every subset
        appears in exactly one class and all classes have equal size, so
        P[class] * P[member | class] = 1/C(n, k) for every subset."""
        n, k = 6, 3
        partition = baranyai_partition(n, k)
        per_class = n // k
        appearances = {}
        for cls in partition:
            for edge in cls:
                appearances[edge] = appearances.get(edge, 0) + 1
        assert all(count == 1 for count in appearances.values())
        for cls in partition:
            assert len(cls) == per_class
        # probability of any fixed subset under the two-stage draw:
        two_stage = (1 / len(partition)) * (1 / per_class)
        assert two_stage == pytest.approx(1 / math.comb(n, k))

    def test_each_element_covered_once_per_class(self):
        """Theorem 4.4(3) as Lemma 4.5 uses it: within a class, every
        ground element belongs to exactly one chosen subset, so summing
        conditional informations over a class's members telescopes to
        the whole of x_{i-1}."""
        partition = baranyai_partition(9, 3)
        for cls in partition:
            membership = {}
            for edge in cls:
                for element in edge:
                    membership[element] = membership.get(element, 0) + 1
            assert membership == {element: 1 for element in range(9)}
