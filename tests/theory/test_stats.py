"""Tests for the statistical helpers."""

import random

import pytest

from repro.theory.stats import (
    binomial_tail_bound,
    chi_square_uniformity_pvalue,
    wilson_interval,
)


class TestChiSquare:
    def test_uniform_histogram_high_pvalue(self):
        rng = random.Random(0)
        counts = [0] * 10
        for _ in range(5000):
            counts[rng.randrange(10)] += 1
        assert chi_square_uniformity_pvalue(counts) > 0.001

    def test_skewed_histogram_low_pvalue(self):
        assert chi_square_uniformity_pvalue([1000, 10, 10, 10]) < 1e-6

    def test_exact_uniform_pvalue_one(self):
        assert chi_square_uniformity_pvalue([100, 100, 100]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_uniformity_pvalue([5])
        with pytest.raises(ValueError):
            chi_square_uniformity_pvalue([0, 0])
        with pytest.raises(ValueError):
            chi_square_uniformity_pvalue([5, -1])


class TestBinomialTail:
    def test_consistent_observation(self):
        # 90 of 100 at claimed p=0.9: perfectly consistent
        assert binomial_tail_bound(90, 100, 0.9) > 0.05

    def test_refuting_observation(self):
        # 50 of 100 at claimed p=0.95: essentially impossible
        assert binomial_tail_bound(50, 100, 0.95) < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_tail_bound(11, 10, 0.5)
        with pytest.raises(ValueError):
            binomial_tail_bound(5, 10, 1.5)

    def test_monotone_in_successes(self):
        low = binomial_tail_bound(40, 100, 0.9)
        high = binomial_tail_bound(85, 100, 0.9)
        assert low < high


class TestWilson:
    def test_contains_true_rate(self):
        lower, upper = wilson_interval(80, 100)
        assert lower < 0.8 < upper

    def test_narrower_with_more_trials(self):
        wide = wilson_interval(8, 10)
        narrow = wilson_interval(800, 1000)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_bounds_clamped(self):
        lower, upper = wilson_interval(0, 10)
        assert lower == pytest.approx(0.0, abs=1e-12)
        lower, upper = wilson_interval(10, 10)
        assert upper == pytest.approx(1.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
