"""Tests for the empirical information-theory estimators."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.theory.information import (
    empirical_entropy,
    empirical_mutual_information,
    entropy_of_counts,
)


class TestEntropyOfCounts:
    def test_uniform_two_outcomes(self):
        assert entropy_of_counts([5, 5]) == pytest.approx(1.0)

    def test_deterministic_is_zero(self):
        assert entropy_of_counts([10]) == 0.0

    def test_uniform_n_outcomes(self):
        assert entropy_of_counts([3] * 8) == pytest.approx(3.0)

    def test_empty_is_zero(self):
        assert entropy_of_counts([]) == 0.0
        assert entropy_of_counts([0, 0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            entropy_of_counts([-1])

    def test_biased_coin(self):
        p = 0.25
        expected = -p * math.log2(p) - (1 - p) * math.log2(1 - p)
        assert entropy_of_counts([25, 75]) == pytest.approx(expected)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=20))
    def test_bounded_by_log_support(self, counts):
        assert entropy_of_counts(counts) <= math.log2(len(counts)) + 1e-9


class TestEmpiricalEntropy:
    def test_from_samples(self):
        samples = ["a"] * 50 + ["b"] * 50
        assert empirical_entropy(samples) == pytest.approx(1.0)

    def test_empty(self):
        assert empirical_entropy([]) == 0.0


class TestMutualInformation:
    def test_independent_variables_near_zero(self):
        rng = random.Random(0)
        pairs = [(rng.randrange(2), rng.randrange(2)) for _ in range(5000)]
        assert empirical_mutual_information(pairs) < 0.01

    def test_identical_variables_full_information(self):
        rng = random.Random(1)
        pairs = [(x, x) for x in (rng.randrange(4) for _ in range(4000))]
        assert empirical_mutual_information(pairs) == pytest.approx(2.0, abs=0.05)

    def test_deterministic_function(self):
        """I(X : f(X)) = H(f(X)) for deterministic f."""
        rng = random.Random(2)
        xs = [rng.randrange(8) for _ in range(4000)]
        pairs = [(x, x % 2) for x in xs]
        assert empirical_mutual_information(pairs) == pytest.approx(1.0, abs=0.05)

    def test_empty_pairs(self):
        assert empirical_mutual_information([]) == 0.0

    def test_never_negative(self):
        rng = random.Random(3)
        pairs = [(rng.randrange(10), rng.randrange(10)) for _ in range(50)]
        assert empirical_mutual_information(pairs) >= 0.0

    def test_bounded_by_marginal_entropy(self):
        rng = random.Random(4)
        pairs = [(rng.randrange(4), rng.randrange(16)) for _ in range(2000)]
        mi = empirical_mutual_information(pairs)
        assert mi <= empirical_entropy([x for x, _ in pairs]) + 1e-9
