"""Tests for the peak-space tracker."""

import pytest

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.spacemeter.tracker import SpaceTracker
from repro.streams.edge import Edge, StreamItem
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.streams.stream import stream_from_edges


class FakeAlgorithm:
    """Deterministic space profile: grows by 2 words per update."""

    def __init__(self):
        self._words = 10

    def process_item(self, item):
        self._words += 2

    def space_words(self):
        return self._words


def one_edge_stream(count):
    return stream_from_edges([Edge(0, b) for b in range(count)], 4, count)


class TestTracker:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SpaceTracker(FakeAlgorithm(), sample_every=0)

    def test_initial_sample(self):
        tracker = SpaceTracker(FakeAlgorithm())
        assert tracker.trace == [(0, 10)]
        assert tracker.peak_words == 10

    def test_peak_tracks_growth(self):
        tracker = SpaceTracker(FakeAlgorithm())
        tracker.process(one_edge_stream(5))
        assert tracker.peak_words == 10 + 2 * 5
        assert tracker.updates_seen == 5
        assert tracker.final_words() == 20

    def test_sampling_interval_thins_trace(self):
        dense = SpaceTracker(FakeAlgorithm(), sample_every=1)
        sparse = SpaceTracker(FakeAlgorithm(), sample_every=4)
        dense.process(one_edge_stream(8))
        sparse.process(one_edge_stream(8))
        assert len(dense.trace) > len(sparse.trace)
        # but the peak is identical because 8 % 4 == 0 samples the end
        assert dense.peak_words == sparse.peak_words

    def test_final_sample_taken_even_off_cadence(self):
        tracker = SpaceTracker(FakeAlgorithm(), sample_every=4)
        tracker.process(one_edge_stream(6))  # 6 % 4 != 0
        assert tracker.trace[-1] == (6, 10 + 12)
        assert tracker.peak_words == 22

    def test_with_real_algorithm(self):
        """Algorithm 2's space is monotone during an insertion-only
        stream, so peak == final."""
        config = GeneratorConfig(n=64, m=256, seed=1)
        stream = planted_star_graph(config, star_degree=32, background_degree=3)
        algorithm = InsertionOnlyFEwW(64, 32, 2, seed=2)
        tracker = SpaceTracker(algorithm, sample_every=16).process(stream)
        assert tracker.peak_words == tracker.final_words()
        assert tracker.peak_words >= 64  # at least the degree table

    def test_trace_positions_increasing(self):
        tracker = SpaceTracker(FakeAlgorithm(), sample_every=3)
        tracker.process(one_edge_stream(10))
        positions = [position for position, _ in tracker.trace]
        assert positions == sorted(positions)
