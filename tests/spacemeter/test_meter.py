"""Unit tests for the space accounting primitives."""

import pytest

from repro.spacemeter import (
    WORD_BITS,
    SpaceBreakdown,
    SpaceMetered,
    edge_words,
    vertex_words,
    words_to_bits,
)


class TestUnits:
    def test_vertex_words(self):
        assert vertex_words() == 1
        assert vertex_words(5) == 5

    def test_edge_words_two_per_edge(self):
        assert edge_words() == 2
        assert edge_words(10) == 20

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            vertex_words(-1)
        with pytest.raises(ValueError):
            edge_words(-1)

    def test_words_to_bits(self):
        assert words_to_bits(3) == 3 * WORD_BITS


class TestSpaceBreakdown:
    def test_add_and_total(self):
        breakdown = SpaceBreakdown()
        breakdown.add("counters", 10)
        breakdown.add("edges", 6)
        assert breakdown.total_words() == 16
        assert breakdown.total_bits() == 16 * WORD_BITS

    def test_add_accumulates_same_label(self):
        breakdown = SpaceBreakdown()
        breakdown.add("x", 3)
        breakdown.add("x", 4)
        assert breakdown.components["x"] == 7

    def test_negative_rejected(self):
        breakdown = SpaceBreakdown()
        with pytest.raises(ValueError):
            breakdown.add("x", -1)

    def test_merge_with_prefix(self):
        inner = SpaceBreakdown({"edges": 4})
        outer = SpaceBreakdown({"counters": 2})
        outer.merge(inner, prefix="run0 ")
        assert outer.components == {"counters": 2, "run0 edges": 4}
        assert outer.total_words() == 6

    def test_str_contains_total(self):
        breakdown = SpaceBreakdown({"x": 1})
        assert "TOTAL: 1 words" in str(breakdown)

    def test_empty_total_is_zero(self):
        assert SpaceBreakdown().total_words() == 0


class TestProtocol:
    def test_structures_satisfy_protocol(self):
        from repro.sketch.exact import DegreeCounter

        assert isinstance(DegreeCounter(4), SpaceMetered)

    def test_non_metered_object_fails_protocol(self):
        assert not isinstance(object(), SpaceMetered)
