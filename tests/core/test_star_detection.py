"""Tests for the Star Detection wrapper (Lemma 3.3, Corollaries 3.4/5.5)."""

import math

import pytest

from repro.core.neighbourhood import AlgorithmFailed
from repro.core.star_detection import StarDetection, degree_guesses
from repro.streams.generators import social_network_stream
from repro.streams.adapters import bipartite_double_cover


class TestDegreeGuesses:
    def test_covers_range(self):
        guesses = degree_guesses(1000, 0.5)
        assert guesses[0] == 1
        assert guesses[-1] >= 1000

    def test_geometric_spacing(self):
        """Every possible Delta has a guess within factor (1+eps) below."""
        eps = 0.5
        guesses = degree_guesses(500, eps)
        for delta in range(1, 501):
            best = max(g for g in guesses if g <= delta)
            assert delta / best <= (1 + eps) * 2  # integer floor slack

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            degree_guesses(10, 0)

    def test_finer_eps_gives_more_guesses(self):
        assert len(degree_guesses(1000, 0.1)) > len(degree_guesses(1000, 1.0))


class TestConstruction:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            StarDetection(10, 2, model="two-pass")

    def test_one_run_per_guess(self):
        detector = StarDetection(100, 2, eps=0.5, seed=0)
        assert len(detector._runs) == len(detector.guesses)

    def test_approximation_ratio(self):
        detector = StarDetection(100, 4, eps=0.5, seed=0)
        assert detector.approximation_ratio() == 1.5 * 4


class TestInsertionOnlyModel:
    def test_finds_influencer(self):
        edges, n_users = social_network_stream(
            n_users=150, n_followers=40, n_background=150, seed=1
        )
        detector = StarDetection(n_users, alpha=2, eps=0.5, seed=2)
        detector.process_undirected(edges)
        result = detector.result()
        assert result.vertex == 0

    def test_approximation_guarantee(self):
        """Output size >= Delta / ((1+eps) * alpha)."""
        edges, n_users = social_network_stream(
            n_users=150, n_followers=40, n_background=150, seed=3
        )
        stream = bipartite_double_cover(edges, n_users)
        delta = stream.max_degree()
        detector = StarDetection(n_users, alpha=2, eps=0.5, seed=4)
        detector.process(stream)
        result = detector.result()
        assert result.size >= delta / detector.approximation_ratio()

    def test_witnesses_are_real_neighbours(self):
        edges, n_users = social_network_stream(
            n_users=100, n_followers=25, n_background=80, seed=5
        )
        stream = bipartite_double_cover(edges, n_users)
        detector = StarDetection(n_users, alpha=2, eps=0.5, seed=6)
        detector.process(stream)
        result = detector.result()
        assert result.neighbourhood.witnesses <= stream.neighbours_of(result.vertex)

    def test_winning_guess_at_most_max_degree(self):
        edges, n_users = social_network_stream(
            n_users=100, n_followers=30, n_background=60, seed=7
        )
        stream = bipartite_double_cover(edges, n_users)
        detector = StarDetection(n_users, alpha=2, eps=0.5, seed=8)
        detector.process(stream)
        result = detector.result()
        # a guess can only succeed if enough witnesses exist
        assert result.size >= math.ceil(result.winning_guess / (2 * detector.alpha))

    def test_empty_graph_raises(self):
        detector = StarDetection(10, 1, seed=0)
        detector.process_undirected([])
        with pytest.raises(AlgorithmFailed):
            detector.result()

    def test_semi_streaming_corollary_parameters(self):
        """Corollary 3.4: alpha = log n gives an O(log n)-approximation."""
        n_users = 128
        alpha = round(math.log2(n_users))
        edges, _ = social_network_stream(
            n_users=n_users, n_followers=60, n_background=100, seed=9
        )
        stream = bipartite_double_cover(edges, n_users)
        detector = StarDetection(n_users, alpha=alpha, eps=0.5, seed=10)
        detector.process(stream)
        result = detector.result()
        assert result.size >= stream.max_degree() / detector.approximation_ratio()


class TestInsertionDeletionModel:
    def test_finds_influencer_with_deletions(self):
        """Friendships form and dissolve; final influencer still found
        (Corollary 5.5's model)."""
        edges, n_users = social_network_stream(
            n_users=48, n_followers=16, n_background=40, seed=11
        )
        # dissolve every background friendship (those not touching 0)
        background = [(u, v) for u, v in edges if 0 not in (u, v)]
        all_edges = edges + background
        signs = [1] * len(edges) + [-1] * len(background)
        detector = StarDetection(
            n_users, alpha=2, eps=1.0, model="insertion-deletion",
            seed=12, scale=0.15,
        )
        detector.process_undirected(all_edges, signs)
        result = detector.result()
        assert result.vertex == 0
        assert result.size >= 16 / detector.approximation_ratio()

    def test_space_breakdown_nonempty(self):
        detector = StarDetection(
            16, alpha=2, eps=1.0, model="insertion-deletion", seed=0, scale=0.1
        )
        assert detector.space_words() > 0
