"""Unit tests for the Neighbourhood result type and its verifier."""

import pytest

from repro.core.neighbourhood import (
    AlgorithmFailed,
    Neighbourhood,
    verify_neighbourhood,
)
from repro.streams.edge import Edge
from repro.streams.stream import stream_from_edges


class TestNeighbourhood:
    def test_size(self):
        assert Neighbourhood.of(0, [1, 2, 3]).size == 3

    def test_of_deduplicates(self):
        assert Neighbourhood.of(0, [1, 1, 2]).size == 2

    def test_empty_witnesses_default(self):
        assert Neighbourhood(5).size == 0

    def test_meets_threshold(self):
        neighbourhood = Neighbourhood.of(0, range(10))
        assert neighbourhood.meets_threshold(d=20, alpha=2)
        assert neighbourhood.meets_threshold(d=10, alpha=1)
        assert not neighbourhood.meets_threshold(d=21, alpha=2)

    def test_meets_threshold_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            Neighbourhood.of(0, [1]).meets_threshold(1, 0)

    def test_frozen_and_hashable(self):
        a = Neighbourhood.of(0, [1, 2])
        b = Neighbourhood.of(0, [2, 1])
        assert a == b
        assert len({a, b}) == 1

    def test_str_previews_witnesses(self):
        text = str(Neighbourhood.of(3, range(20)))
        assert "a=3" in text and "|S|=20" in text and "..." in text


class TestVerify:
    def setup_method(self):
        self.stream = stream_from_edges(
            [Edge(0, b) for b in range(10)] + [Edge(1, 0)], 5, 20
        )

    def test_accepts_valid_output(self):
        verify_neighbourhood(Neighbourhood.of(0, range(5)), self.stream, d=10, alpha=2)

    def test_rejects_fake_witness(self):
        with pytest.raises(AssertionError, match="non-neighbours"):
            verify_neighbourhood(
                Neighbourhood.of(0, [0, 1, 15]), self.stream, d=6, alpha=2
            )

    def test_rejects_undersized_neighbourhood(self):
        with pytest.raises(AssertionError, match="below threshold"):
            verify_neighbourhood(
                Neighbourhood.of(0, [0, 1]), self.stream, d=10, alpha=2
            )

    def test_rejects_wrong_vertex_witnesses(self):
        with pytest.raises(AssertionError, match="non-neighbours"):
            verify_neighbourhood(
                Neighbourhood.of(1, [0, 1]), self.stream, d=2, alpha=1
            )

    def test_algorithm_failed_is_runtime_error(self):
        assert issubclass(AlgorithmFailed, RuntimeError)
