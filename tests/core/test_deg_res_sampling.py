"""Tests for Algorithm 1 (Deg-Res-Sampling): reservoir semantics,
witness collection, uniformity, and the Lemma 3.1 success bound."""

import random
from collections import Counter

import pytest

from repro.core.deg_res_sampling import DegResSampling
from repro.core.neighbourhood import AlgorithmFailed
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.streams.stream import stream_from_edges
from repro.theory.bounds import deg_res_success_lower_bound


def run_on_edges(edges, n=50, m=200, d1=1, d2=5, s=10, seed=0):
    algorithm = DegResSampling(n, d1, d2, s, random.Random(seed))
    algorithm.process(stream_from_edges(edges, n, m))
    return algorithm


class TestValidation:
    def test_rejects_bad_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            DegResSampling(10, 0, 1, 1, rng)
        with pytest.raises(ValueError):
            DegResSampling(10, 1, 0, 1, rng)
        with pytest.raises(ValueError):
            DegResSampling(10, 1, 1, 0, rng)

    def test_rejects_deletions(self):
        algorithm = DegResSampling(10, 1, 1, 1, random.Random(0))
        with pytest.raises(ValueError):
            algorithm.process_item(StreamItem(Edge(0, 0), DELETE))

    def test_external_mode_rejects_process_item(self):
        algorithm = DegResSampling(10, 1, 1, 1, random.Random(0), own_degrees=False)
        with pytest.raises(RuntimeError):
            algorithm.process_item(StreamItem(Edge(0, 0)))


class TestCollectionSemantics:
    def test_vertex_enters_reservoir_at_threshold(self):
        """A vertex becomes a candidate the moment its degree hits d1,
        and the triggering edge itself is collected."""
        algorithm = run_on_edges([Edge(0, b) for b in range(5)], d1=3, d2=10, s=5)
        candidates = algorithm.candidates()
        assert len(candidates) == 1
        # degree 5, d1=3: collects edges 3rd..5th = min(d2, deg-d1+1) = 3
        assert candidates[0].size == 3
        assert candidates[0].witnesses == {2, 3, 4}

    def test_collection_caps_at_d2(self):
        algorithm = run_on_edges([Edge(0, b) for b in range(20)], d1=1, d2=4, s=5)
        assert algorithm.candidates()[0].size == 4

    def test_below_threshold_vertex_never_stored(self):
        algorithm = run_on_edges([Edge(0, 0), Edge(0, 1)], d1=3, d2=2, s=5)
        assert algorithm.candidates() == []

    def test_small_candidate_set_kept_entirely(self):
        """With fewer than s candidates the reservoir holds all of them
        (the deterministic case of Lemma 3.1)."""
        edges = []
        for a in range(4):
            edges.extend(Edge(a, a * 10 + j) for j in range(6))
        algorithm = run_on_edges(edges, d1=2, d2=5, s=10)
        assert len(algorithm.candidates()) == 4
        assert algorithm.successful

    def test_success_and_result(self):
        algorithm = run_on_edges([Edge(0, b) for b in range(10)], d1=1, d2=5, s=3)
        assert algorithm.successful
        result = algorithm.result()
        assert result.vertex == 0
        assert result.size == 5

    def test_result_raises_on_failure(self):
        algorithm = run_on_edges([Edge(0, 0)], d1=1, d2=5, s=3)
        assert not algorithm.successful
        with pytest.raises(AlgorithmFailed):
            algorithm.result()

    def test_eviction_discards_witnesses(self):
        """With reservoir size 1 and many candidates, evicted vertices'
        edges must not linger (line 12 of Algorithm 1)."""
        edges = []
        for a in range(30):
            edges.extend(Edge(a, a * 10 + j) for j in range(3))
        algorithm = run_on_edges(edges, n=50, m=500, d1=1, d2=10, s=1, seed=3)
        assert len(algorithm.candidates()) == 1

    def test_witnesses_are_true_neighbours(self):
        config = GeneratorConfig(n=40, m=300, seed=5)
        stream = planted_star_graph(config, star_degree=50, background_degree=4)
        algorithm = DegResSampling(40, 1, 10, 20, random.Random(1))
        algorithm.process(stream)
        for candidate in algorithm.candidates():
            assert candidate.witnesses <= stream.neighbours_of(candidate.vertex)

    def test_space_accounts_reservoir_and_edges(self):
        algorithm = run_on_edges([Edge(0, b) for b in range(10)], d1=1, d2=5, s=3)
        breakdown = algorithm.space_breakdown()
        assert breakdown.components["reservoir ids"] == 1
        assert breakdown.components["collected edges"] == 2 * 5
        assert breakdown.components["degree counts"] == 50
        assert algorithm.space_words() == breakdown.total_words()

    def test_external_mode_excludes_degree_table(self):
        algorithm = DegResSampling(50, 1, 5, 3, random.Random(0), own_degrees=False)
        assert "degree counts" not in algorithm.space_breakdown().components


class TestReservoirUniformity:
    def test_sampled_vertex_distribution_uniform(self):
        """Over many runs, each degree->=d1 vertex lands in a size-1
        reservoir with roughly equal frequency (reservoir invariant)."""
        n_candidates = 12
        edges = []
        for a in range(n_candidates):
            edges.extend(Edge(a, a * 10 + j) for j in range(2))
        counts = Counter()
        trials = 1800
        for seed in range(trials):
            algorithm = run_on_edges(
                edges, n=20, m=200, d1=2, d2=1, s=1, seed=seed
            )
            (candidate,) = algorithm.candidates()
            counts[candidate.vertex] += 1
        expected = trials / n_candidates
        for a in range(n_candidates):
            assert abs(counts[a] - expected) < 0.35 * expected

    def test_uniform_regardless_of_arrival_order(self):
        """Vertices crossing the threshold late are not disadvantaged."""
        first_block = [Edge(a, a * 10 + j) for a in range(6) for j in range(2)]
        late_block = [Edge(a, a * 10 + j) for a in range(6, 12) for j in range(2)]
        counts = Counter()
        trials = 1500
        for seed in range(trials):
            algorithm = run_on_edges(
                first_block + late_block, n=20, m=200, d1=2, d2=1, s=1, seed=seed
            )
            (candidate,) = algorithm.candidates()
            counts[candidate.vertex] += 1
        early = sum(counts[a] for a in range(6))
        late = sum(counts[a] for a in range(6, 12))
        assert abs(early - late) < 0.2 * trials


class TestLemma31Bound:
    def test_success_rate_meets_lemma_bound(self):
        """Planted instance with n1 candidates and n2 heavy vertices:
        empirical success rate >= the Lemma 3.1 lower bound (within
        sampling noise)."""
        n1, n2, s = 20, 4, 5
        d1, d2 = 2, 3
        edges = []
        for a in range(n1):
            # first n2 vertices get degree d1+d2-1 = 4; rest degree d1 = 2
            degree = d1 + d2 - 1 if a < n2 else d1
            edges.extend(Edge(a, a * 10 + j) for j in range(degree))
        rng = random.Random(99)
        shuffled = list(edges)
        successes = 0
        trials = 300
        for seed in range(trials):
            rng.shuffle(shuffled)
            algorithm = run_on_edges(
                shuffled, n=30, m=300, d1=d1, d2=d2, s=s, seed=seed
            )
            successes += algorithm.successful
        bound = deg_res_success_lower_bound(n1, n2, s)
        assert bound > 0.5  # the instance is meaningful
        assert successes / trials >= bound - 0.08
