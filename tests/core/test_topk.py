"""Tests for the top-k FEwW extension."""

import pytest

from repro.core.neighbourhood import AlgorithmFailed
from repro.core.topk import TopKFEwW
from repro.streams.edge import Edge
from repro.streams.stream import stream_from_edges
from repro.streams.generators import GeneratorConfig
import random


def multi_star_stream(star_degrees, n=100, m=5000, seed=0):
    """Plant len(star_degrees) stars with the given degrees plus noise."""
    rng = random.Random(seed)
    edges = []
    b = 0
    for vertex, degree in enumerate(star_degrees):
        for _ in range(degree):
            edges.append(Edge(vertex, b))
            b += 1
    for vertex in range(len(star_degrees), min(n, len(star_degrees) + 30)):
        for _ in range(3):
            edges.append(Edge(vertex, b))
            b += 1
    rng.shuffle(edges)
    return stream_from_edges(edges, n, m)


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKFEwW(10, 5, 1, 0)

    def test_parameter_passthrough(self):
        algorithm = TopKFEwW(50, 20, 2, 3, seed=0)
        assert (algorithm.n, algorithm.d, algorithm.alpha) == (50, 20, 2)
        assert algorithm.threshold == 10


class TestResults:
    def test_finds_all_planted_stars(self):
        degrees = [60, 55, 50]
        stream = multi_star_stream(degrees, seed=1)
        algorithm = TopKFEwW(100, 50, 2, 3, seed=2).process(stream)
        results = algorithm.results()
        assert {result.vertex for result in results} == {0, 1, 2}

    def test_results_sorted_by_size(self):
        stream = multi_star_stream([60, 55, 50], seed=3)
        algorithm = TopKFEwW(100, 50, 2, 3, seed=4).process(stream)
        sizes = [result.size for result in algorithm.results()]
        assert sizes == sorted(sizes, reverse=True)

    def test_k_caps_output(self):
        stream = multi_star_stream([60, 55, 50, 52], seed=5)
        algorithm = TopKFEwW(100, 50, 2, 2, seed=6).process(stream)
        assert len(algorithm.results()) == 2

    def test_every_result_meets_threshold(self):
        stream = multi_star_stream([60, 55, 50], seed=7)
        algorithm = TopKFEwW(100, 50, 2, 3, seed=8).process(stream)
        for result in algorithm.results():
            assert result.size >= algorithm.threshold

    def test_witnesses_genuine(self):
        stream = multi_star_stream([60, 55], seed=9)
        algorithm = TopKFEwW(100, 55, 2, 2, seed=10).process(stream)
        for result in algorithm.results():
            assert result.witnesses <= stream.neighbours_of(result.vertex)

    def test_distinct_vertices(self):
        stream = multi_star_stream([60, 55, 50], seed=11)
        algorithm = TopKFEwW(100, 50, 2, 3, seed=12).process(stream)
        vertices = [result.vertex for result in algorithm.results()]
        assert len(vertices) == len(set(vertices))

    def test_empty_stream_raises(self):
        algorithm = TopKFEwW(10, 5, 1, 2, seed=0)
        algorithm.process(stream_from_edges([], 10, 10))
        with pytest.raises(AlgorithmFailed):
            algorithm.results()

    def test_union_success_rate(self):
        """Each planted star is reported in almost every trial
        (guarantee: 1 - k/n per the extension's analysis)."""
        degrees = [64, 60, 56]
        misses = 0
        trials = 30
        for seed in range(trials):
            stream = multi_star_stream(degrees, seed=100 + seed)
            algorithm = TopKFEwW(100, 56, 2, 3, seed=seed).process(stream)
            found = {result.vertex for result in algorithm.results()}
            misses += len({0, 1, 2} - found)
        assert misses <= 3

    def test_reservoir_capacity_grows_with_k(self):
        stream = multi_star_stream([60, 55], seed=13)
        small = TopKFEwW(100, 50, 2, 1, seed=14).process(stream)
        large = TopKFEwW(100, 50, 2, 8, seed=14).process(stream)
        assert large._inner.s == 8 * small._inner.s
        # retained space can only grow with capacity (here the candidate
        # set is small enough that both hold everything)
        assert large.space_words() >= small.space_words()
