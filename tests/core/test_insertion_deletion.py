"""Tests for Algorithm 3 (insertion-deletion FEwW): Theorem 5.4."""

import math
import random

import pytest

from repro.core.insertion_deletion import (
    InsertionDeletionFEwW,
    SamplingStrategy,
    edge_sampler_count,
    samplers_per_vertex,
    vertex_sample_size,
    x_parameter,
)
from repro.core.neighbourhood import AlgorithmFailed, verify_neighbourhood
from repro.streams.edge import DELETE, INSERT, Edge, StreamItem
from repro.streams.generators import (
    GeneratorConfig,
    deletion_churn_stream,
    planted_star_graph,
    random_bipartite_graph,
)
from repro.streams.stream import EdgeStream


class TestParameters:
    def test_x_parameter_crossover(self):
        """x = n/alpha below sqrt(n), sqrt(n) above."""
        n = 100
        assert x_parameter(n, 2) == 50
        assert x_parameter(n, 10) == 10
        assert x_parameter(n, 20) == 10  # sqrt(100) = 10 takes over
        assert x_parameter(n, 50) == 10

    def test_vertex_sample_size_caps_at_n(self):
        assert vertex_sample_size(50, 2) == 50

    def test_sampler_counts_positive(self):
        assert samplers_per_vertex(100, 10, 2) > 0
        assert edge_sampler_count(100, 200, 10, 2) > 0

    def test_scale_shrinks_counts(self):
        full = edge_sampler_count(100, 200, 10, 2, scale=1.0)
        tiny = edge_sampler_count(100, 200, 10, 2, scale=0.01)
        assert tiny < full

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            InsertionDeletionFEwW(10, 10, 5, 0.5)
        with pytest.raises(ValueError):
            InsertionDeletionFEwW(10, 10, 0, 2)

    def test_rejects_out_of_range_edge(self):
        algorithm = InsertionDeletionFEwW(4, 4, 1, 1, seed=0, scale=0.05)
        with pytest.raises(ValueError):
            algorithm.process_item(StreamItem(Edge(4, 0)))


class TestCorrectness:
    def test_planted_star_insert_only_input(self):
        config = GeneratorConfig(n=48, m=96, seed=1)
        stream = planted_star_graph(config, star_degree=24, background_degree=2)
        algorithm = InsertionDeletionFEwW(48, 96, 24, 2, seed=2, scale=0.3)
        algorithm.process(stream)
        result = algorithm.result()
        verify_neighbourhood(result, stream, 24, 2)
        assert result.vertex == 0

    def test_deletion_churn(self):
        """The separating workload: all noise is deleted, only the star
        survives — a reservoir would be poisoned, ℓ₀-samplers are not."""
        config = GeneratorConfig(n=32, m=64, seed=3)
        stream = deletion_churn_stream(config, star_degree=16, churn_edges=200)
        algorithm = InsertionDeletionFEwW(32, 64, 16, 2, seed=4, scale=0.3)
        algorithm.process(stream)
        result = algorithm.result()
        verify_neighbourhood(result, stream, 16, 2)
        assert result.vertex == 0

    def test_witnesses_exclude_deleted_edges(self):
        config = GeneratorConfig(n=16, m=32, seed=5)
        stream = deletion_churn_stream(config, star_degree=8, churn_edges=80)
        algorithm = InsertionDeletionFEwW(16, 32, 8, 1, seed=6, scale=0.4)
        algorithm.process(stream)
        result = algorithm.result()
        assert result.witnesses <= stream.neighbours_of(result.vertex)

    def test_dense_graph_vertex_strategy_alone(self):
        """Lemma 5.2's regime: many heavy vertices -> vertex sampling
        alone succeeds."""
        config = GeneratorConfig(n=24, m=48, seed=7)
        # every vertex heavy: dense random graph
        stream = random_bipartite_graph(config, n_edges=24 * 24)
        d = min(stream.final_degrees().values())
        algorithm = InsertionDeletionFEwW(
            24, 48, d, 2, seed=8, strategy=SamplingStrategy.VERTEX, scale=0.4
        )
        algorithm.process(stream)
        assert algorithm.successful

    def test_sparse_graph_edge_strategy_alone(self):
        """Lemma 5.3's regime: a single heavy vertex owning most edges ->
        edge sampling alone succeeds."""
        config = GeneratorConfig(n=32, m=64, seed=9)
        stream = planted_star_graph(config, star_degree=30, background_degree=1)
        algorithm = InsertionDeletionFEwW(
            32, 64, 30, 2, seed=10, strategy=SamplingStrategy.EDGE, scale=0.4
        )
        algorithm.process(stream)
        result = algorithm.result()
        assert result.vertex == 0

    def test_success_probability_high(self):
        config = GeneratorConfig(n=32, m=64, seed=11)
        stream = deletion_churn_stream(config, star_degree=16, churn_edges=100)
        failures = 0
        trials = 40
        for seed in range(trials):
            algorithm = InsertionDeletionFEwW(32, 64, 16, 2, seed=seed, scale=0.3)
            algorithm.process(stream)
            failures += not algorithm.successful
        assert failures <= 2

    def test_empty_graph_fails(self):
        algorithm = InsertionDeletionFEwW(8, 8, 2, 1, seed=0, scale=0.2)
        algorithm.process(EdgeStream([], 8, 8))
        with pytest.raises(AlgorithmFailed):
            algorithm.result()

    def test_result_memoised(self):
        """Sampler queries are randomised; repeated result() must agree."""
        config = GeneratorConfig(n=16, m=32, seed=12)
        stream = planted_star_graph(config, star_degree=8, background_degree=1)
        algorithm = InsertionDeletionFEwW(16, 32, 8, 2, seed=13, scale=0.4)
        algorithm.process(stream)
        assert algorithm.result() == algorithm.result()

    def test_exact_sampler_mode_small_instance(self):
        """End-to-end with real ℓ₀-sampler sketches (slow path)."""
        items = [StreamItem(Edge(0, b), INSERT) for b in range(6)]
        items += [StreamItem(Edge(1, 0), INSERT), StreamItem(Edge(1, 0), DELETE)]
        stream = EdgeStream(items, 4, 8)
        algorithm = InsertionDeletionFEwW(
            4, 8, 6, 2, seed=14, scale=0.05, sampler_mode="exact"
        )
        algorithm.process(stream)
        result = algorithm.result()
        assert result.vertex == 0
        assert result.witnesses <= set(range(6))


class TestSpace:
    def test_breakdown_components(self):
        algorithm = InsertionDeletionFEwW(16, 32, 4, 2, seed=0, scale=0.2)
        components = algorithm.space_breakdown().components
        assert "vertex-sampling l0 banks" in components
        assert "edge-sampling l0 bank" in components
        assert algorithm.space_words() > 0

    def test_strategy_restriction_drops_component(self):
        vertex_only = InsertionDeletionFEwW(
            16, 32, 4, 2, seed=0, strategy=SamplingStrategy.VERTEX, scale=0.2
        )
        assert "edge-sampling l0 bank" not in vertex_only.space_breakdown().components
        edge_only = InsertionDeletionFEwW(
            16, 32, 4, 2, seed=0, strategy=SamplingStrategy.EDGE, scale=0.2
        )
        assert "vertex-sampling l0 banks" not in edge_only.space_breakdown().components

    def test_space_decreases_with_alpha_squared(self):
        """Theorem 5.4: for alpha <= sqrt(n), space ~ dn/alpha^2."""
        words = [
            InsertionDeletionFEwW(64, 64, 8, alpha, seed=0, scale=0.2).space_words()
            for alpha in (1, 2, 4)
        ]
        assert words[0] > words[1] > words[2]
        # roughly quadratic: doubling alpha cuts space by ~3-4x
        assert words[0] / words[1] > 2.0

    def test_threshold_uses_ceiling(self):
        algorithm = InsertionDeletionFEwW(16, 16, 7, 2, seed=0, scale=0.2)
        assert algorithm.threshold == math.ceil(7 / 2) == 4
