"""Tests for Algorithm 2 (insertion-only FEwW): Theorem 3.2's guarantees."""

import math

import pytest

from repro.core.insertion_only import InsertionOnlyFEwW, reservoir_size
from repro.core.neighbourhood import AlgorithmFailed, verify_neighbourhood
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.generators import (
    GeneratorConfig,
    adversarial_interleaved_stream,
    degree_cascade_graph,
    planted_star_graph,
    zipf_frequency_stream,
)
from repro.streams.stream import stream_from_edges


class TestConstruction:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            InsertionOnlyFEwW(10, 5, 0)

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            InsertionOnlyFEwW(10, 0, 1)

    def test_reservoir_size_formula(self):
        assert reservoir_size(100, 1) == math.ceil(math.log(100) * 100)
        assert reservoir_size(100, 2) == math.ceil(math.log(100) * 10)
        assert reservoir_size(1, 3) == 1

    def test_alpha_parallel_runs(self):
        algorithm = InsertionOnlyFEwW(100, 40, 4, seed=0)
        assert len(algorithm.runs) == 4

    def test_thresholds_are_geometric(self):
        algorithm = InsertionOnlyFEwW(100, 40, 4, seed=0)
        assert [run.d1 for run in algorithm.runs] == [1, 10, 20, 30]

    def test_threshold_chain_invariant(self):
        """d1_{i+1} >= d1_i + d2 - 1 for non-divisible d/alpha too —
        the inequality Theorem 3.2's counting argument needs."""
        for n, d, alpha in [(50, 7, 3), (100, 10, 4), (64, 13, 5), (30, 9, 2)]:
            algorithm = InsertionOnlyFEwW(n, d, alpha, seed=0)
            d2 = algorithm.d2
            thresholds = [run.d1 for run in algorithm.runs]
            for lower, upper in zip(thresholds, thresholds[1:]):
                assert upper >= lower + d2 - 1 or lower == 1

    def test_rejects_deletions(self):
        algorithm = InsertionOnlyFEwW(10, 2, 1, seed=0)
        with pytest.raises(ValueError):
            algorithm.process_item(StreamItem(Edge(0, 0), DELETE))

    def test_reservoir_override(self):
        algorithm = InsertionOnlyFEwW(100, 10, 2, seed=0, reservoir_override=3)
        assert algorithm.s == 3
        assert all(run.s == 3 for run in algorithm.runs)


class TestCorrectness:
    def test_planted_star(self):
        config = GeneratorConfig(n=300, m=600, seed=1)
        stream = planted_star_graph(config, star_degree=120, background_degree=6)
        algorithm = InsertionOnlyFEwW(300, 120, 2, seed=2).process(stream)
        result = algorithm.result()
        verify_neighbourhood(result, stream, 120, 2)
        assert result.vertex == 0

    def test_alpha_one_exact_recovery(self):
        """alpha=1 must report a full-degree neighbourhood."""
        config = GeneratorConfig(n=60, m=200, seed=3)
        stream = planted_star_graph(config, star_degree=50, background_degree=2)
        algorithm = InsertionOnlyFEwW(60, 50, 1, seed=4).process(stream)
        result = algorithm.result()
        assert result.size >= 50

    def test_degree_cascade(self):
        """The ratio-adversarial profile from the Theorem 3.2 analysis."""
        config = GeneratorConfig(n=400, m=400, seed=5)
        stream = degree_cascade_graph(config, d=60, alpha=3)
        algorithm = InsertionOnlyFEwW(400, 60, 3, seed=6).process(stream)
        verify_neighbourhood(algorithm.result(), stream, 60, 3)

    def test_adversarial_arrival_order(self):
        """Heavy vertex arrives after the reservoir fills with decoys."""
        config = GeneratorConfig(n=40, m=2000, seed=7)
        stream = adversarial_interleaved_stream(
            config, star_degree=60, n_decoys=30, decoy_degree=20
        )
        algorithm = InsertionOnlyFEwW(40, 60, 2, seed=8).process(stream)
        result = algorithm.result()
        verify_neighbourhood(result, stream, 60, 2)

    def test_zipf_stream(self):
        config = GeneratorConfig(n=100, m=4000, seed=9)
        stream = zipf_frequency_stream(config, n_records=4000, exponent=1.3)
        d = stream.max_degree()
        algorithm = InsertionOnlyFEwW(100, d, 2, seed=10).process(stream)
        verify_neighbourhood(algorithm.result(), stream, d, 2)

    def test_success_probability_meets_theorem(self):
        """Theorem 3.2: success w.p. >= 1 - 1/n.  Run many trials on a
        planted instance; failures must be rare."""
        config = GeneratorConfig(n=64, m=256, seed=11)
        stream = planted_star_graph(config, star_degree=32, background_degree=4)
        failures = 0
        trials = 120
        for seed in range(trials):
            algorithm = InsertionOnlyFEwW(64, 32, 2, seed=seed).process(stream)
            failures += not algorithm.successful
        # theorem allows 1/n = 1.6% failures; tolerate noise up to 6%
        assert failures / trials < 0.06

    def test_result_meets_ceiling_threshold(self):
        """Non-divisible d/alpha: output must still reach ceil(d/alpha)."""
        config = GeneratorConfig(n=50, m=200, seed=12)
        stream = planted_star_graph(config, star_degree=25, background_degree=2)
        algorithm = InsertionOnlyFEwW(50, 25, 4, seed=13).process(stream)
        result = algorithm.result()
        assert result.size >= math.ceil(25 / 4) == 7

    def test_failure_raises(self):
        """Empty stream cannot produce a neighbourhood."""
        algorithm = InsertionOnlyFEwW(10, 5, 2, seed=0)
        algorithm.process(stream_from_edges([], 10, 10))
        with pytest.raises(AlgorithmFailed):
            algorithm.result()
        assert not algorithm.successful
        assert algorithm.successful_runs() == []

    def test_witnesses_never_fake(self):
        """Soundness: even on failure-prone parameters, any reported
        witness is a real neighbour."""
        config = GeneratorConfig(n=30, m=100, seed=14)
        stream = planted_star_graph(config, star_degree=20, background_degree=5)
        for seed in range(20):
            algorithm = InsertionOnlyFEwW(
                30, 20, 2, seed=seed, reservoir_override=2
            ).process(stream)
            for run in algorithm.runs:
                for candidate in run.candidates():
                    assert candidate.witnesses <= stream.neighbours_of(
                        candidate.vertex
                    )

    def test_current_degree_tracking(self):
        algorithm = InsertionOnlyFEwW(10, 2, 1, seed=0)
        algorithm.process_item(StreamItem(Edge(3, 0)))
        algorithm.process_item(StreamItem(Edge(3, 1)))
        assert algorithm.current_degree(3) == 2
        assert algorithm.current_degree(0) == 0


class TestSpace:
    def test_degree_table_charged_once(self):
        algorithm = InsertionOnlyFEwW(100, 10, 4, seed=0)
        breakdown = algorithm.space_breakdown()
        assert breakdown.components["degree counts"] == 100
        assert sum(
            1 for label in breakdown.components if "degree" in label
        ) == 1

    def test_space_bounded_by_reservoir_capacity(self):
        """Each run stores at most s ids and s*d2 edges."""
        config = GeneratorConfig(n=200, m=800, seed=15)
        stream = planted_star_graph(config, star_degree=80, background_degree=8)
        algorithm = InsertionOnlyFEwW(200, 80, 2, seed=16).process(stream)
        cap = algorithm.n + algorithm.alpha * (
            algorithm.s + 2 * algorithm.s * algorithm.d2 + 1
        )
        assert algorithm.space_words() <= cap

    def test_space_decreases_with_alpha(self):
        """Higher alpha -> smaller reservoirs & witness sets: the
        headline trade-off of Theorem 3.2 (for fixed n, d)."""
        config = GeneratorConfig(n=256, m=1024, seed=17)
        stream = planted_star_graph(config, star_degree=128, background_degree=4)
        words = []
        for alpha in (1, 2, 4):
            algorithm = InsertionOnlyFEwW(256, 128, alpha, seed=18).process(stream)
            words.append(algorithm.space_words())
        assert words[0] > words[1] > words[2]


class TestShardSeedDerivation:
    """split() derives independent per-shard RNG streams (SeedSequence
    spawn) instead of replicating the parent's coins."""

    @staticmethod
    def draws(algorithm, run_index=0, count=2000):
        return [algorithm.runs[run_index]._rng.random() for _ in range(count)]

    def test_shard_streams_pairwise_uncorrelated(self):
        import numpy as np

        shards = InsertionOnlyFEwW(64, 8, 2, seed=11).split(4)
        sequences = [np.array(self.draws(shard)) for shard in shards]
        for i in range(len(sequences)):
            for j in range(i + 1, len(sequences)):
                assert not np.array_equal(sequences[i], sequences[j]), (
                    f"shards {i} and {j} replicate the same coin stream"
                )
                correlation = abs(float(np.corrcoef(sequences[i], sequences[j])[0, 1]))
                assert correlation < 0.1, (
                    f"shards {i}/{j} correlate at {correlation:.3f}"
                )

    def test_runs_within_a_shard_are_distinct(self):
        import numpy as np

        shard = InsertionOnlyFEwW(64, 8, 3, seed=11).split(2)[0]
        streams = [
            np.array([run._rng.random() for _ in range(500)])
            for run in shard.runs
        ]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert not np.array_equal(streams[i], streams[j])

    def test_derivation_is_deterministic(self):
        first = InsertionOnlyFEwW(64, 8, 2, seed=11).split(3)
        second = InsertionOnlyFEwW(64, 8, 2, seed=11).split(3)
        for mine, theirs in zip(first, second):
            assert self.draws(mine, count=100) == self.draws(theirs, count=100)

    def test_different_master_seeds_derive_different_shards(self):
        one = InsertionOnlyFEwW(64, 8, 2, seed=1).split(2)[0]
        other = InsertionOnlyFEwW(64, 8, 2, seed=2).split(2)[0]
        assert self.draws(one, count=100) != self.draws(other, count=100)

    def test_negative_seed_is_valid(self):
        shards = InsertionOnlyFEwW(64, 8, 2, seed=-5).split(2)
        assert len(shards) == 2
