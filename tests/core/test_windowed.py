"""Tests for the tumbling-window FEwW extension."""

import pytest

from repro.core.neighbourhood import AlgorithmFailed
from repro.core.windowed import TumblingWindowFEwW
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.stream import EdgeStream, stream_from_edges


def star_burst(vertex, degree, b_offset):
    """One vertex's burst of `degree` edges (distinct witnesses)."""
    return [Edge(vertex, b_offset + j) for j in range(degree)]


class TestBasics:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            TumblingWindowFEwW(10, 5, 1, 0)

    def test_rejects_deletions(self):
        windowed = TumblingWindowFEwW(10, 2, 1, 4)
        with pytest.raises(ValueError):
            windowed.process_item(StreamItem(Edge(0, 0), DELETE))

    def test_latest_before_any_window_raises(self):
        with pytest.raises(AlgorithmFailed):
            TumblingWindowFEwW(10, 2, 1, 4).latest()


class TestWindowing:
    def test_windows_close_at_boundaries(self):
        edges = star_burst(0, 12, 0)
        stream = stream_from_edges(edges, 10, 100)
        windowed = TumblingWindowFEwW(10, 4, 1, window=4, seed=0).process(stream)
        assert len(windowed.completed_windows()) == 3
        for index, window in enumerate(windowed.completed_windows()):
            assert window.window_index == index
            assert window.end_update == (index + 1) * 4

    def test_per_window_heavy_item_changes(self):
        """Different vertices dominate different windows; each window's
        answer reflects only its own updates."""
        edges = (
            star_burst(0, 10, 0)
            + star_burst(1, 10, 100)
            + star_burst(2, 10, 200)
        )
        stream = stream_from_edges(edges, 10, 300)
        windowed = TumblingWindowFEwW(10, 10, 1, window=10, seed=1).process(stream)
        winners = [
            window.neighbourhood.vertex
            for window in windowed.completed_windows()
            if window.found
        ]
        assert winners == [0, 1, 2]

    def test_window_without_heavy_item_reports_none(self):
        edges = [Edge(a, a) for a in range(8)]  # all degree 1
        stream = stream_from_edges(edges, 10, 10)
        windowed = TumblingWindowFEwW(10, 5, 1, window=4, seed=2).process(stream)
        assert all(not window.found for window in windowed.completed_windows())

    def test_flush_closes_partial_window(self):
        edges = star_burst(0, 6, 0)
        stream = stream_from_edges(edges, 10, 10)
        windowed = TumblingWindowFEwW(10, 2, 1, window=4, seed=3).process(stream)
        assert len(windowed.completed_windows()) == 1
        windowed.flush()
        assert len(windowed.completed_windows()) == 2
        assert windowed.completed_windows()[-1].end_update == 6

    def test_flush_on_exact_boundary_is_noop_window(self):
        edges = star_burst(0, 4, 0)
        stream = stream_from_edges(edges, 10, 10)
        windowed = TumblingWindowFEwW(10, 2, 1, window=4, seed=4).process(stream)
        count = len(windowed.completed_windows())
        windowed.flush()
        assert len(windowed.completed_windows()) == count

    def test_latest_returns_most_recent(self):
        edges = star_burst(0, 8, 0) + star_burst(1, 8, 50)
        stream = stream_from_edges(edges, 10, 100)
        windowed = TumblingWindowFEwW(10, 8, 1, window=8, seed=5).process(stream)
        assert windowed.latest().neighbourhood.vertex == 1

    def test_witnesses_come_from_own_window(self):
        edges = star_burst(0, 8, 0) + star_burst(0, 8, 50)
        stream = stream_from_edges(edges, 10, 100)
        windowed = TumblingWindowFEwW(10, 8, 1, window=8, seed=6).process(stream)
        first, second = windowed.completed_windows()
        assert first.neighbourhood.witnesses <= set(range(8))
        assert second.neighbourhood.witnesses <= set(range(50, 58))

    def test_space_bounded_by_single_instance_plus_answer(self):
        edges = star_burst(0, 40, 0)
        stream = stream_from_edges(edges, 10, 100)
        windowed = TumblingWindowFEwW(10, 10, 2, window=10, seed=7).process(stream)
        assert windowed.space_words() > 0
