"""Shared fixtures for the test suite."""

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; every test gets the same seed for repeatability."""
    return random.Random(0xC0FFEE)


def fresh_rng(seed: int) -> random.Random:
    """Helper for tests that need several independent generators."""
    return random.Random(seed)
