"""Tests for the Count-Min sketch baseline."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.count_min import CountMinSketch
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.stream import EdgeStream


class TestBasics:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            CountMinSketch(0.0, 0.1)
        with pytest.raises(ValueError):
            CountMinSketch(1.0, 0.1)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            CountMinSketch(0.1, 0.0)

    def test_dimensions(self):
        sketch = CountMinSketch(0.01, 0.01)
        assert sketch.width == math.ceil(math.e / 0.01)
        assert sketch.rows == math.ceil(math.log(100))

    def test_single_item(self):
        sketch = CountMinSketch(0.1, 0.05, seed=0)
        sketch.update(42, 3)
        assert sketch.estimate(42) >= 3

    def test_supports_deletions(self):
        sketch = CountMinSketch(0.1, 0.05, seed=1)
        sketch.update(7, 5)
        sketch.update(7, -5)
        assert sketch.estimate(7) == 0

    def test_turnstile_stream_adapter(self):
        items = [
            StreamItem(Edge(3, 0)),
            StreamItem(Edge(3, 1)),
            StreamItem(Edge(3, 0), DELETE),
        ]
        sketch = CountMinSketch(0.05, 0.01, seed=2).process(EdgeStream(items, 5, 5))
        assert sketch.estimate(3) >= 1

    def test_space_words(self):
        sketch = CountMinSketch(0.1, 0.1, seed=3)
        expected = sketch.rows * sketch.width + 3 * sketch.rows
        assert sketch.space_words() == expected


class TestGuarantee:
    def test_never_underestimates_nonnegative_streams(self):
        rng = random.Random(4)
        sketch = CountMinSketch(0.02, 0.01, seed=5)
        true = {}
        for _ in range(2000):
            item = rng.randrange(100)
            sketch.update(item)
            true[item] = true.get(item, 0) + 1
        for item, count in true.items():
            assert sketch.estimate(item) >= count

    def test_error_within_epsilon_bound(self):
        rng = random.Random(6)
        epsilon = 0.02
        sketch = CountMinSketch(epsilon, 0.001, seed=7)
        length = 3000
        true = {}
        for _ in range(length):
            item = rng.randrange(200)
            sketch.update(item)
            true[item] = true.get(item, 0) + 1
        violations = sum(
            1
            for item, count in true.items()
            if sketch.estimate(item) > count + math.e * epsilon * length
        )
        assert violations == 0

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=150))
    def test_overestimate_only(self, stream):
        sketch = CountMinSketch(0.05, 0.01, seed=8)
        true = {}
        for item in stream:
            sketch.update(item)
            true[item] = true.get(item, 0) + 1
        for item, count in true.items():
            assert sketch.estimate(item) >= count
