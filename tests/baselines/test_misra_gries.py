"""Tests for the Misra–Gries baseline, including its classical guarantee."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.misra_gries import MisraGries
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.generators import GeneratorConfig, zipf_frequency_stream


class TestBasics:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MisraGries(0)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            MisraGries(2).update(0, 0)

    def test_rejects_deletions(self):
        with pytest.raises(ValueError):
            MisraGries(2).process_item(StreamItem(Edge(0, 0), DELETE))

    def test_exact_when_few_items(self):
        summary = MisraGries(10)
        for item in [1, 1, 2, 3, 1]:
            summary.update(item)
        assert summary.estimate(1) == 3
        assert summary.estimate(2) == 1
        assert summary.estimate(4) == 0

    def test_decrement_step(self):
        summary = MisraGries(2)
        for item in [1, 1, 2, 3]:  # 3 evicts via decrement
            summary.update(item)
        assert summary.estimate(1) == 1
        assert summary.estimate(2) == 0
        assert summary.estimate(3) == 0

    def test_weighted_update(self):
        summary = MisraGries(4)
        summary.update(7, 5)
        assert summary.estimate(7) == 5

    def test_error_bound_value(self):
        summary = MisraGries(9)
        for item in range(20):
            summary.update(item % 4)
        assert summary.error_bound() == 20 / 10

    def test_space_proportional_to_counters(self):
        summary = MisraGries(5)
        for item in range(3):
            summary.update(item)
        assert summary.space_words() == 2 * 3 + 1

    def test_candidates_superset_of_heavy(self):
        summary = MisraGries(5)
        stream = [1] * 50 + [2] * 30 + list(range(10, 40))
        for item in stream:
            summary.update(item)
        candidate_items = {item for item, _ in summary.candidates(30)}
        assert 1 in candidate_items


class TestGuarantee:
    @settings(max_examples=60)
    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=300),
        st.integers(1, 12),
    )
    def test_classical_error_guarantee(self, stream, k):
        """true - L/(k+1) <= estimate <= true, for every item."""
        summary = MisraGries(k)
        true = {}
        for item in stream:
            summary.update(item)
            true[item] = true.get(item, 0) + 1
        bound = len(stream) / (k + 1)
        for item, count in true.items():
            estimate = summary.estimate(item)
            assert estimate <= count
            assert estimate >= count - bound - 1e-9

    def test_heavy_hitter_survives(self):
        """Any item above L/(k+1) remains in the summary."""
        config = GeneratorConfig(n=50, m=3000, seed=1)
        stream = zipf_frequency_stream(config, n_records=3000, exponent=1.5)
        summary = MisraGries(20).process(stream)
        degrees = stream.final_degrees()
        for item, count in degrees.items():
            if count > len(stream) / 21:
                assert summary.estimate(item) > 0

    def test_space_independent_of_stream_length(self):
        rng = random.Random(2)
        summary = MisraGries(8)
        for _ in range(5000):
            summary.update(rng.randrange(1000))
        assert summary.space_words() <= 2 * 8 + 1
