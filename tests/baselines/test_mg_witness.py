"""Tests for the Misra–Gries-with-witnesses strawman, including the
witness-loss failure mode it exists to demonstrate."""

import pytest

from repro.baselines.mg_witness import MisraGriesWithWitnesses
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.stream import EdgeStream, stream_from_edges


def items_for(pairs):
    return [StreamItem(Edge(a, b)) for a, b in pairs]


class TestBasics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MisraGriesWithWitnesses(0, 1)
        with pytest.raises(ValueError):
            MisraGriesWithWitnesses(1, 0)

    def test_rejects_deletions(self):
        summary = MisraGriesWithWitnesses(2, 4)
        with pytest.raises(ValueError):
            summary.process_item(StreamItem(Edge(0, 0), DELETE))

    def test_collects_witnesses_when_uncontended(self):
        summary = MisraGriesWithWitnesses(4, 10)
        for item in items_for([(0, 5), (0, 6), (0, 7)]):
            summary.process_item(item)
        assert summary.estimate(0) == 3
        assert summary.witnesses_of(0) == [5, 6, 7]
        result = summary.result(d=3)
        assert result.vertex == 0
        assert result.witnesses == {5, 6, 7}

    def test_witness_cap(self):
        summary = MisraGriesWithWitnesses(4, 2)
        for item in items_for([(0, b) for b in range(5)]):
            summary.process_item(item)
        assert summary.estimate(0) == 5
        assert summary.witnesses_of(0) == [0, 1]

    def test_result_raises_when_insufficient(self):
        summary = MisraGriesWithWitnesses(4, 10)
        summary.process_item(StreamItem(Edge(0, 0)))
        with pytest.raises(AlgorithmFailed):
            summary.result(d=5)

    def test_space_words(self):
        summary = MisraGriesWithWitnesses(4, 10)
        for item in items_for([(0, 1), (0, 2), (1, 3)]):
            summary.process_item(item)
        assert summary.space_words() == 2 * 2 + 2 * 3


class TestWitnessLossFailureMode:
    @staticmethod
    def spread_out_stream(n_bursts=30, noise_per_burst=12, n=400, m=4000):
        """The heavy item appears once per burst, drowned in fresh noise
        between appearances: MG evicts it (losing its witnesses) again
        and again."""
        pairs = []
        b = 0
        noise_vertex = 1
        for burst in range(n_bursts):
            pairs.append((0, b)); b += 1
            for _ in range(noise_per_burst):
                pairs.append((noise_vertex, b))
                noise_vertex = 1 + (noise_vertex % (n - 1))
                b += 1
        return EdgeStream(items_for(pairs), n, m), n_bursts

    def test_heavy_item_witnesses_lost_to_decrements(self):
        stream, true_degree = self.spread_out_stream()
        summary = MisraGriesWithWitnesses(4, true_degree).process(stream)
        # The frequency estimate may survive within MG's error bound, but
        # the witness list was repeatedly reset by evictions.
        assert len(summary.witnesses_of(0)) < true_degree / 2
        assert summary.witnesses_lost > 0

    def test_algorithm2_succeeds_on_same_stream(self):
        """The paper's algorithm keeps the witnesses the strawman loses."""
        stream, true_degree = self.spread_out_stream()
        algorithm = InsertionOnlyFEwW(stream.n, true_degree, 2, seed=1)
        algorithm.process(stream)
        result = algorithm.result()
        assert result.vertex == 0
        assert result.size >= true_degree / 2

    def test_no_loss_when_item_never_evicted(self):
        edges = [Edge(0, b) for b in range(20)]
        stream = stream_from_edges(edges, 10, 50)
        summary = MisraGriesWithWitnesses(2, 20).process(stream)
        assert summary.witnesses_lost == 0
        assert len(summary.witnesses_of(0)) == 20
