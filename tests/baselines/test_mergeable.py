"""Tests for summary mergeability (distributed-streams support)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.count_min import CountMinSketch
from repro.baselines.misra_gries import MisraGries


class TestMisraGriesMerge:
    def test_rejects_mismatched_k(self):
        with pytest.raises(ValueError):
            MisraGries(4).merge(MisraGries(8))

    def test_merge_of_disjoint_small_streams_exact(self):
        left, right = MisraGries(10), MisraGries(10)
        for item in [1, 1, 2]:
            left.update(item)
        for item in [1, 3]:
            right.update(item)
        merged = left.merge(right)
        assert merged.estimate(1) == 3
        assert merged.estimate(2) == 1
        assert merged.estimate(3) == 1

    def test_merge_respects_counter_budget(self):
        left, right = MisraGries(3), MisraGries(3)
        for item in range(3):
            left.update(item)
            left.update(item)
        for item in range(10, 13):
            right.update(item)
            right.update(item)
        merged = left.merge(right)
        assert len(merged._counters) <= 3

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(0, 7), max_size=150),
        st.lists(st.integers(0, 7), max_size=150),
        st.integers(2, 10),
    )
    def test_merged_guarantee_on_concatenation(self, left_stream, right_stream, k):
        """The merged summary obeys the MG guarantee for the full
        concatenated stream: true - L/(k+1) <= est <= true."""
        left, right = MisraGries(k), MisraGries(k)
        true = {}
        for item in left_stream:
            left.update(item)
            true[item] = true.get(item, 0) + 1
        for item in right_stream:
            right.update(item)
            true[item] = true.get(item, 0) + 1
        merged = left.merge(right)
        total = len(left_stream) + len(right_stream)
        assert merged._length == total
        for item, count in true.items():
            estimate = merged.estimate(item)
            assert estimate <= count
            assert estimate >= count - total / (k + 1) - 1e-9

    def test_merge_is_associative_on_lengths(self):
        parts = [MisraGries(5) for _ in range(3)]
        rng = random.Random(0)
        for part in parts:
            for _ in range(40):
                part.update(rng.randrange(6))
        left_first = parts[0].merge(parts[1]).merge(parts[2])
        right_first = parts[0].merge(parts[1].merge(parts[2]))
        assert left_first._length == right_first._length == 120


class TestCountMinMerge:
    def test_same_seed_sketches_merge(self):
        left = CountMinSketch(0.1, 0.05, seed=7)
        right = CountMinSketch(0.1, 0.05, seed=7)
        left.update(3, 5)
        right.update(3, 2)
        right.update(9, 1)
        merged = left.merge(right)
        assert merged.estimate(3) >= 7
        assert merged.estimate(9) >= 1

    def test_different_seed_rejected(self):
        left = CountMinSketch(0.1, 0.05, seed=1)
        right = CountMinSketch(0.1, 0.05, seed=2)
        assert not left.shares_hashes_with(right)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_equals_single_sketch_of_union(self):
        """Merging sketches of two halves gives cell-for-cell the sketch
        of the whole stream."""
        rng = random.Random(3)
        whole = CountMinSketch(0.05, 0.01, seed=11)
        left = CountMinSketch(0.05, 0.01, seed=11)
        right = CountMinSketch(0.05, 0.01, seed=11)
        for index in range(500):
            item = rng.randrange(50)
            whole.update(item)
            (left if index % 2 == 0 else right).update(item)
        merged = left.merge(right)
        assert (merged._table == whole._table).all()

    def test_merged_never_underestimates(self):
        rng = random.Random(4)
        left = CountMinSketch(0.05, 0.01, seed=13)
        right = CountMinSketch(0.05, 0.01, seed=13)
        true = {}
        for _ in range(300):
            item = rng.randrange(40)
            (left if rng.random() < 0.5 else right).update(item)
            true[item] = true.get(item, 0) + 1
        merged = left.merge(right)
        for item, count in true.items():
            assert merged.estimate(item) >= count
