"""Tests for the CountSketch baseline."""

import random
import statistics

import pytest

from repro.baselines.count_sketch import CountSketch
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.stream import EdgeStream


class TestBasics:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            CountSketch(0)
        with pytest.raises(ValueError):
            CountSketch(8, rows=0)

    def test_single_item_exact_when_alone(self):
        sketch = CountSketch(64, rows=5, seed=0)
        sketch.update(42, 7)
        assert sketch.estimate(42) == 7

    def test_supports_deletions(self):
        sketch = CountSketch(64, rows=5, seed=1)
        sketch.update(3, 5)
        sketch.update(3, -5)
        assert sketch.estimate(3) == 0

    def test_turnstile_adapter(self):
        items = [StreamItem(Edge(2, 0)), StreamItem(Edge(2, 0), DELETE)]
        sketch = CountSketch(32, seed=2).process(EdgeStream(items, 4, 4))
        assert sketch.estimate(2) == 0

    def test_space_words(self):
        sketch = CountSketch(16, rows=3, seed=3)
        assert sketch.space_words() == 3 * 16 + 6 * 3


class TestAccuracy:
    def test_unbiasedness_over_seeds(self):
        """Averaged over seeds, the estimate centres on the true count."""
        estimates = []
        for seed in range(60):
            sketch = CountSketch(32, rows=1, seed=seed)
            sketch.update(0, 50)
            for item in range(1, 40):
                sketch.update(item, 1)
            estimates.append(sketch.estimate(0))
        mean = statistics.mean(estimates)
        assert abs(mean - 50) < 6

    def test_heavy_item_recovered_sharply(self):
        rng = random.Random(4)
        sketch = CountSketch(128, rows=7, seed=5)
        sketch.update(999, 300)
        for _ in range(1000):
            sketch.update(rng.randrange(500), 1)
        assert abs(sketch.estimate(999) - 300) < 60

    def test_median_robust_to_one_bad_row(self):
        """With several rows the median damps collision noise."""
        few = CountSketch(8, rows=1, seed=6)
        many = CountSketch(8, rows=9, seed=6)
        for sketch in (few, many):
            sketch.update(0, 100)
            for item in range(1, 30):
                sketch.update(item, 10)
        assert abs(many.estimate(0) - 100) <= abs(few.estimate(0) - 100) + 30
