"""Tests for the naive witness baselines."""

import pytest

from repro.baselines.naive import FirstKWitnessCollector, FullStorage
from repro.core.neighbourhood import AlgorithmFailed
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.streams.stream import EdgeStream


class TestFullStorage:
    def test_exact_answer(self):
        config = GeneratorConfig(n=20, m=100, seed=0)
        stream = planted_star_graph(config, star_degree=30, background_degree=3)
        result = FullStorage(20, 100).process(stream).result(d=30)
        assert result.vertex == 0
        assert result.size == 30

    def test_handles_deletions(self):
        items = [
            StreamItem(Edge(0, 0)),
            StreamItem(Edge(0, 1)),
            StreamItem(Edge(0, 0), DELETE),
        ]
        storage = FullStorage(4, 4).process(EdgeStream(items, 4, 4))
        result = storage.result(d=1)
        assert result.witnesses == {1}

    def test_raises_when_promise_violated(self):
        storage = FullStorage(4, 4)
        storage.process_item(StreamItem(Edge(0, 0)))
        with pytest.raises(AlgorithmFailed):
            storage.result(d=5)

    def test_space_proportional_to_edges(self):
        config = GeneratorConfig(n=20, m=100, seed=1)
        stream = planted_star_graph(config, star_degree=30, background_degree=3)
        storage = FullStorage(20, 100).process(stream)
        n_edges = len(stream.final_edges())
        assert storage.space_words() >= 2 * n_edges


class TestFirstKWitnessCollector:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            FirstKWitnessCollector(10, 0)

    def test_rejects_deletions(self):
        collector = FirstKWitnessCollector(4, 2)
        with pytest.raises(ValueError):
            collector.process_item(StreamItem(Edge(0, 0), DELETE))

    def test_collects_first_k(self):
        collector = FirstKWitnessCollector(4, 3)
        for b in range(10):
            collector.process_item(StreamItem(Edge(0, b)))
        result = collector.result(d=9, alpha=3)
        assert result.vertex == 0
        assert result.witnesses == {0, 1, 2}

    def test_correct_when_k_reaches_threshold(self):
        config = GeneratorConfig(n=20, m=100, seed=2)
        stream = planted_star_graph(config, star_degree=30, background_degree=3)
        collector = FirstKWitnessCollector(20, 15).process(stream)
        result = collector.result(d=30, alpha=2)
        assert result.vertex == 0
        assert result.size >= 15

    def test_fails_when_k_too_small(self):
        collector = FirstKWitnessCollector(4, 2)
        for b in range(10):
            collector.process_item(StreamItem(Edge(0, b)))
        with pytest.raises(AlgorithmFailed):
            collector.result(d=10, alpha=1)

    def test_empty_stream_raises(self):
        with pytest.raises(AlgorithmFailed):
            FirstKWitnessCollector(4, 2).result(d=1)

    def test_space_scales_with_active_vertices(self):
        """Every touched vertex pays ~k words: the factor-n overhead the
        paper's sampling avoids."""
        collector = FirstKWitnessCollector(100, 5)
        for a in range(50):
            for b in range(5):
                collector.process_item(StreamItem(Edge(a, b)))
        assert collector.space_words() >= 50 * (2 + 2 * 5) - 10
