"""Tests for the SpaceSaving baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.space_saving import SpaceSaving
from repro.streams.edge import DELETE, Edge, StreamItem


class TestBasics:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_rejects_deletions(self):
        with pytest.raises(ValueError):
            SpaceSaving(2).process_item(StreamItem(Edge(0, 0), DELETE))

    def test_exact_when_few_items(self):
        summary = SpaceSaving(10)
        for item in [1, 1, 2]:
            summary.update(item)
        assert summary.estimate(1) == 2
        assert summary.guaranteed_count(1) == 2

    def test_eviction_inherits_minimum(self):
        summary = SpaceSaving(2)
        for item in [1, 1, 1, 2, 3]:  # 3 evicts 2 (count 1), inherits 1
            summary.update(item)
        assert summary.estimate(3) == 2
        assert summary.guaranteed_count(3) == 1
        assert summary.estimate(2) == 0

    def test_counters_always_full_after_k_distinct(self):
        summary = SpaceSaving(3)
        for item in range(10):
            summary.update(item)
        assert len(summary._counters) == 3

    def test_candidates_by_threshold(self):
        summary = SpaceSaving(4)
        for item in [1] * 10 + [2] * 5 + [3]:
            summary.update(item)
        assert (1, 10) in summary.candidates(5)
        assert all(count >= 5 for _, count in summary.candidates(5))

    def test_space_words(self):
        summary = SpaceSaving(4)
        for item in range(10):
            summary.update(item)
        assert summary.space_words() == 3 * 4 + 1


class TestGuarantees:
    @settings(max_examples=60)
    @given(
        st.lists(st.integers(0, 9), min_size=1, max_size=300),
        st.integers(1, 12),
    )
    def test_overestimate_bounded_by_min_counter(self, stream, k):
        """true <= estimate <= true + L/k for tracked items, and every
        item with count > L/k is tracked."""
        summary = SpaceSaving(k)
        true = {}
        for item in stream:
            summary.update(item)
            true[item] = true.get(item, 0) + 1
        bound = len(stream) / k
        for item, count in true.items():
            estimate = summary.estimate(item)
            if estimate:
                assert count <= estimate <= count + bound + 1e-9
            else:
                assert count <= bound + 1e-9

    @settings(max_examples=60)
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=200))
    def test_guaranteed_count_is_sound(self, stream):
        summary = SpaceSaving(4)
        true = {}
        for item in stream:
            summary.update(item)
            true[item] = true.get(item, 0) + 1
        for item in true:
            assert summary.guaranteed_count(item) <= true[item]

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 19), min_size=1, max_size=200))
    def test_counter_sum_equals_stream_length(self, stream):
        """Invariant: the k counters always sum to the stream length
        (each update adds exactly 1 to the total)."""
        summary = SpaceSaving(5)
        for item in stream:
            summary.update(item)
        assert sum(summary._counters.values()) == len(stream)
