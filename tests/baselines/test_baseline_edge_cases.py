"""Edge cases in the classical baselines' update paths."""

import pytest

from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving import SpaceSaving


class TestMisraGriesWeightedEviction:
    def test_weight_spanning_decrement(self):
        """A weighted update larger than the minimum counter must apply
        the leftover after the decrement round (the recursive branch)."""
        summary = MisraGries(1)
        summary.update(1, 1)
        summary.update(2, 5)  # decrement by 1 clears item 1; leftover 4
        assert summary.estimate(1) == 0
        assert summary.estimate(2) == 4
        assert summary._length == 6

    def test_weighted_update_equal_to_minimum(self):
        summary = MisraGries(1)
        summary.update(1, 3)
        summary.update(2, 3)  # decrement 3 clears both; leftover 0
        assert summary.estimate(1) == 0
        assert summary.estimate(2) == 0
        assert summary._length == 6

    def test_guarantee_survives_weighted_updates(self):
        summary = MisraGries(3)
        true = {}
        for item, weight in [(1, 10), (2, 4), (3, 1), (4, 7), (5, 2), (1, 3)]:
            summary.update(item, weight)
            true[item] = true.get(item, 0) + weight
        length = sum(true.values())
        for item, count in true.items():
            estimate = summary.estimate(item)
            assert estimate <= count
            assert estimate >= count - length / 4 - 1e-9


class TestSpaceSavingTies:
    def test_eviction_breaks_ties_deterministically(self):
        """With all counters equal, evicting any is valid; the estimate
        invariant must hold regardless."""
        summary = SpaceSaving(2)
        summary.update(1)
        summary.update(2)
        summary.update(3)  # evicts one of the two, inherits count 1
        assert summary.estimate(3) == 2
        assert summary.guaranteed_count(3) == 1

    def test_repeated_churn_keeps_sum_invariant(self):
        summary = SpaceSaving(3)
        for item in range(30):
            summary.update(item)
        assert sum(summary._counters.values()) == 30
        assert len(summary._counters) == 3
