"""Coverage of remaining small code paths across modules."""

import argparse

import pytest

from repro.cli import make_workload
from repro.comm.protocol import MessageLog
from repro.core.neighbourhood import AlgorithmFailed
from repro.core.windowed import TumblingWindowFEwW
from repro.spacemeter import SpaceBreakdown


class TestCliWorkloadFactory:
    def test_unknown_workload_raises(self):
        args = argparse.Namespace(
            workload="mystery", n=8, m=8, d=2, alpha=1, seed=0
        )
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload(args)


class TestMessageLogOrdering:
    def test_messages_preserve_send_order(self):
        log = MessageLog()
        log.record(0, 1, 10)
        log.record(1, 2, 5)
        log.record(2, 3, 20)
        assert [entry[0] for entry in log.messages] == [0, 1, 2]
        assert [entry[2] for entry in log.messages] == [10, 5, 20]


class TestWindowedEdgeCases:
    def test_flush_on_empty_stream_closes_empty_window(self):
        windowed = TumblingWindowFEwW(8, 2, 1, window=4, seed=0)
        windowed.flush()
        windows = windowed.completed_windows()
        assert len(windows) == 1
        assert windows[0].end_update == 0
        assert not windows[0].found

    def test_latest_after_empty_flush(self):
        windowed = TumblingWindowFEwW(8, 2, 1, window=4, seed=0)
        windowed.flush()
        assert windowed.latest().neighbourhood is None


class TestSpaceBreakdownChaining:
    def test_nested_merges_accumulate(self):
        leaf = SpaceBreakdown({"cells": 4})
        middle = SpaceBreakdown({"hash": 2})
        middle.merge(leaf, prefix="row0 ")
        top = SpaceBreakdown()
        top.merge(middle, prefix="sampler0 ")
        top.merge(middle, prefix="sampler1 ")
        assert top.components == {
            "sampler0 hash": 2,
            "sampler0 row0 cells": 4,
            "sampler1 hash": 2,
            "sampler1 row0 cells": 4,
        }
        assert top.total_words() == 12


class TestStarDetectionGuessEdge:
    def test_single_vertex_graph_guesses(self):
        from repro.core.star_detection import degree_guesses

        guesses = degree_guesses(1, 0.5)
        assert guesses[0] == 1
