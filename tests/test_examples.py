"""Smoke tests: every shipped example runs to completion and produces
its advertised output (guards the examples against API drift)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_FRAGMENTS = {
    "quickstart.py": "verification: all witnesses are genuine neighbours",
    "dos_detection.py": "FEwW identifies the victim",
    "social_influencer.py": "verification: centre and all followers confirmed",
    "turnstile_updates.py": "every witness survives all deletions",
    "lower_bound_reductions.py": "Figure 3",
    "pipeline_spec.py": "fluent builder and JSON spec agree",
    "windowed_monitoring.py": "each window's hot row detected in order",
    "sliding_window_monitoring.py": "sliding verdict reflects only the recent hot row",
    "distributed_merge.py": "all three views agree on the heavy item",
    "crash_and_resume.py": "crash, resume and retry all preserved the exact answer",
}


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_FRAGMENTS))
def test_example_runs_and_reports(name):
    output = run_example(name)
    assert EXPECTED_FRAGMENTS[name] in output


def test_every_example_file_is_covered():
    """A new example must be registered here (and thus smoke-tested)."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_FRAGMENTS)
