"""Integration tests: full pipelines from application logs to verified
FEwW output, crossing every package boundary."""

import math
import random

import pytest

from repro import (
    GeneratorConfig,
    InsertionDeletionFEwW,
    InsertionOnlyFEwW,
    StarDetection,
    verify_neighbourhood,
)
from repro.baselines import FullStorage, MisraGries
from repro.streams.adapters import bipartite_double_cover, log_records_to_stream
from repro.streams.generators import (
    database_log_stream,
    dos_attack_log,
    social_network_stream,
    zipf_frequency_stream,
)


class TestDosDetectionPipeline:
    """The paper's third motivating example: detect the DoS victim AND
    the attacking sources."""

    def test_victim_and_sources_recovered(self):
        records = dos_attack_log(n_hosts=60, n_records=1500, seed=0)
        stream, items, witnesses = log_records_to_stream(records)
        d = stream.max_degree()
        algorithm = InsertionOnlyFEwW(stream.n, d, alpha=2, seed=1).process(stream)
        result = algorithm.result()
        verify_neighbourhood(result, stream, d, 2)
        assert items.decode(result.vertex) == "10.0.0.1"
        sources = {witnesses.decode(b) for b in result.witnesses}
        assert len(sources) >= d / 2
        assert all(isinstance(source, str) for source in sources)

    def test_witness_free_baseline_cannot_name_sources(self):
        """Misra-Gries finds the victim but holds no source at all —
        the gap that motivates FEwW."""
        records = dos_attack_log(n_hosts=60, n_records=1500, seed=0)
        stream, items, _ = log_records_to_stream(records)
        summary = MisraGries(20).process(stream)
        victim = items.encode("10.0.0.1")
        assert summary.estimate(victim) > 0  # detected...
        # ...but the summary's entire state is item counters; no B-side
        # information exists anywhere in it.
        assert all(isinstance(key, int) for key in summary._counters)


class TestDatabaseLogPipeline:
    def test_hot_row_with_users(self):
        records = database_log_stream(
            n_rows=80, n_users=40, n_updates=1200, hot_fraction=0.3, seed=2
        )
        stream, items, witnesses = log_records_to_stream(records)
        d = stream.max_degree()
        algorithm = InsertionOnlyFEwW(stream.n, d, alpha=2, seed=3).process(stream)
        result = algorithm.result()
        assert items.decode(result.vertex) == "orders:42"
        users = {witnesses.decode(b) for b in result.witnesses}
        assert all(user.startswith("user") for user in users)


class TestSocialNetworkPipeline:
    def test_influencer_with_followers(self):
        edges, n_users = social_network_stream(
            n_users=120, n_followers=35, n_background=120, seed=4
        )
        detector = StarDetection(n_users, alpha=2, eps=0.5, seed=5)
        detector.process_undirected(edges)
        result = detector.result()
        assert result.vertex == 0
        stream = bipartite_double_cover(edges, n_users)
        followers = stream.neighbours_of(0)
        assert result.neighbourhood.witnesses <= followers


class TestModelAgreement:
    def test_both_models_agree_on_insertion_only_input(self):
        """On a pure-insertion stream, Algorithms 2 and 3 must identify
        the same heavy vertex."""
        config = GeneratorConfig(n=40, m=2000, seed=6)
        stream = zipf_frequency_stream(config, n_records=1500, exponent=1.6)
        d = stream.max_degree()
        io_result = InsertionOnlyFEwW(40, d, 2, seed=7).process(stream).result()
        id_algorithm = InsertionDeletionFEwW(40, 2000, d, 2, seed=8, scale=0.2)
        id_result = id_algorithm.process(stream).result()
        oracle = FullStorage(40, 2000).process(stream).result(d)
        assert io_result.vertex == id_result.vertex == oracle.vertex

    def test_algorithms_match_oracle_witnesses(self):
        config = GeneratorConfig(n=40, m=2000, seed=9)
        stream = zipf_frequency_stream(config, n_records=1500, exponent=1.6)
        d = stream.max_degree()
        oracle = FullStorage(40, 2000).process(stream).result(d)
        result = InsertionOnlyFEwW(40, d, 2, seed=10).process(stream).result()
        assert result.witnesses <= oracle.witnesses


class TestRepeatability:
    def test_same_seed_same_output(self):
        config = GeneratorConfig(n=60, m=3000, seed=11)
        stream = zipf_frequency_stream(config, n_records=2000)
        d = stream.max_degree()
        first = InsertionOnlyFEwW(60, d, 2, seed=42).process(stream).result()
        second = InsertionOnlyFEwW(60, d, 2, seed=42).process(stream).result()
        assert first == second

    def test_different_seeds_vary_witness_sets(self):
        """Randomised algorithm: over several seeds the collected
        witness sets should not all coincide (sanity check that seeding
        is real)."""
        config = GeneratorConfig(n=60, m=3000, seed=12)
        stream = zipf_frequency_stream(config, n_records=2000)
        d = stream.max_degree()
        outputs = {
            InsertionOnlyFEwW(60, d, 3, seed=seed).process(stream).result().witnesses
            for seed in range(6)
        }
        assert len(outputs) > 1
