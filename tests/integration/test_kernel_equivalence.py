"""Frozen-legacy equivalence for the fused sketch kernels.

The fused kernels (stacked-hash CountSketch/CountMin scatter, the
array-backed SpaceSaving store, Algorithm 3's netting pass) replaced
per-row / per-item Python loops.  These tests pin the new kernels
against *frozen copies of the legacy semantics* embedded below — not
against the current scalar paths alone — so a future "optimisation"
that silently changes results cannot pass by being compared to itself.

* CountSketch / CountMin: bit-identical tables and estimates.
* Algorithm 3: bit-identical bank state and samples (linear sketches).
* SpaceSaving: guarantee-identical *and* state-identical — same
  estimates, same overestimate bounds, same eviction tie-break order
  (the legacy ``min()`` evicts the first minimal counter in tracking
  order; the fused composite-key argmin must agree exactly).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.space_saving import SpaceSaving
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.streams.edge import Edge, StreamItem


# ----------------------------------------------------------------------
# Frozen legacy kernels (verbatim semantics of the pre-fusion code).
# ----------------------------------------------------------------------


def legacy_count_sketch_table(sketch: CountSketch, chunks) -> np.ndarray:
    """The table the legacy per-row loop would produce for ``chunks``.

    Frozen copy of the old ``update_batch``: one ``batch`` hash
    evaluation and one ``np.add.at`` per row, per chunk.
    """
    table = np.zeros((sketch.rows, sketch.width), dtype=np.int64)
    for items, deltas in chunks:
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        for row_index in range(sketch.rows):
            buckets = sketch._bucket_hashes[row_index].batch(items)
            signs = 2 * sketch._sign_hashes[row_index].batch(items) - 1
            np.add.at(table[row_index], buckets, signs * deltas)
    return table


def legacy_count_sketch_estimate(sketch: CountSketch, item: int) -> int:
    """Frozen copy of the old median-of-rows point query."""
    values = []
    for row_index in range(sketch.rows):
        bucket = sketch._bucket_hashes[row_index](item)
        sign = 1 if sketch._sign_hashes[row_index](item) == 1 else -1
        values.append(sign * int(sketch._table[row_index, bucket]))
    return round(statistics.median(values))


def legacy_count_min_table(sketch: CountMinSketch, chunks) -> np.ndarray:
    """The table the legacy per-row CountMin loop would produce."""
    table = np.zeros((sketch.rows, sketch.width), dtype=np.int64)
    for items, deltas in chunks:
        items = np.asarray(items, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        for row_index, hash_function in enumerate(sketch._hashes):
            np.add.at(table[row_index], hash_function.batch(items), deltas)
    return table


def legacy_count_min_estimate(sketch: CountMinSketch, item: int) -> int:
    """Frozen copy of the old min-over-cells point query."""
    return int(
        min(
            sketch._table[row_index, hash_function(item)]
            for row_index, hash_function in enumerate(sketch._hashes)
        )
    )


class LegacySpaceSaving:
    """Frozen copy of the dict-backed SpaceSaving (pre array store).

    Eviction: ``min()`` over the counter dict keyed by value — the
    *first* minimal counter in insertion (= tracking) order wins ties.
    Batch ingestion: one ``np.unique`` pass applied as weighted scalar
    updates in order of first appearance.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._counters: Dict[int, int] = {}
        self._overestimates: Dict[int, int] = {}
        self._length = 0

    def update(self, item: int, weight: int = 1) -> None:
        self._length += weight
        if item in self._counters:
            self._counters[item] += weight
            return
        if len(self._counters) < self.k:
            self._counters[item] = weight
            self._overestimates[item] = 0
            return
        victim = min(self._counters, key=self._counters.__getitem__)
        inherited = self._counters.pop(victim)
        self._overestimates.pop(victim, None)
        self._counters[item] = inherited + weight
        self._overestimates[item] = inherited

    def process_batch(self, a, b=None, sign=None) -> None:
        items, first_positions, counts = np.unique(
            np.asarray(a, dtype=np.int64),
            return_index=True,
            return_counts=True,
        )
        appearance = np.argsort(first_positions, kind="stable")
        for slot in appearance.tolist():
            self.update(int(items[slot]), int(counts[slot]))

    def estimate(self, item: int) -> int:
        return self._counters.get(item, 0)

    def guaranteed_count(self, item: int) -> int:
        if item not in self._counters:
            return 0
        return self._counters[item] - self._overestimates.get(item, 0)

    def candidates(self, threshold: int) -> List[Tuple[int, int]]:
        return sorted(
            (item, count)
            for item, count in self._counters.items()
            if count >= threshold
        )


# ----------------------------------------------------------------------
# Workloads.
# ----------------------------------------------------------------------


def turnstile_chunks(seed: int, n_items: int = 300, chunks: int = 6,
                     chunk_len: int = 2048):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(chunks):
        items = rng.integers(0, n_items, chunk_len).astype(np.int64)
        deltas = rng.choice(
            np.array([-2, -1, 1, 1, 2], dtype=np.int64), chunk_len
        )
        out.append((items, deltas))
    return out


def zipf_items(seed: int, n_items: int, length: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = 1.0 / ranks ** 1.3
    return rng.choice(
        n_items, size=length, p=weights / weights.sum()
    ).astype(np.int64)


# ----------------------------------------------------------------------
# CountSketch / CountMin: bit identity.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("rows", [4, 5])
def test_count_sketch_fused_kernel_bit_identical(rows):
    chunks = turnstile_chunks(seed=11)
    sketch = CountSketch(128, rows=rows, seed=7)
    for items, deltas in chunks:
        sketch.update_batch(items, deltas)
    assert np.array_equal(
        sketch._table, legacy_count_sketch_table(sketch, chunks)
    )
    queries = list(range(0, 300, 7))
    fused = sketch.estimate_batch(np.array(queries, dtype=np.int64))
    for query, value in zip(queries, fused.tolist()):
        assert value == legacy_count_sketch_estimate(sketch, query)
        assert sketch.estimate(query) == value


def test_count_sketch_scalar_and_batch_agree():
    chunks = turnstile_chunks(seed=23, chunks=2, chunk_len=512)
    batched = CountSketch(64, rows=5, seed=3)
    scalar = CountSketch(64, rows=5, seed=3)
    for items, deltas in chunks:
        batched.update_batch(items, deltas)
        for item, delta in zip(items.tolist(), deltas.tolist()):
            scalar.update(item, delta)
    assert np.array_equal(batched._table, scalar._table)


def test_count_min_fused_kernel_bit_identical():
    chunks = turnstile_chunks(seed=29)
    sketch = CountMinSketch(0.05, 0.05, seed=13)
    for items, deltas in chunks:
        sketch.update_batch(items, deltas)
    assert np.array_equal(
        sketch._table, legacy_count_min_table(sketch, chunks)
    )
    queries = np.arange(0, 300, 5, dtype=np.int64)
    fused = sketch.estimate_batch(queries)
    for query, value in zip(queries.tolist(), fused.tolist()):
        assert value == legacy_count_min_estimate(sketch, query)
        assert sketch.estimate(query) == value


def test_count_min_scalar_and_batch_agree():
    chunks = turnstile_chunks(seed=31, chunks=2, chunk_len=512)
    batched = CountMinSketch(0.05, 0.05, seed=5)
    scalar = CountMinSketch(0.05, 0.05, seed=5)
    for items, deltas in chunks:
        batched.update_batch(items, deltas)
        for item, delta in zip(items.tolist(), deltas.tolist()):
            scalar.update(item, delta)
    assert np.array_equal(batched._table, scalar._table)


def test_count_sketch_merge_preserves_fused_kernel():
    """Merged sketches must keep working fused stacks (split + merge)."""
    chunks = turnstile_chunks(seed=37, chunks=4, chunk_len=1024)
    single = CountSketch(64, rows=5, seed=11)
    shards = CountSketch(64, rows=5, seed=11).split(2)
    for index, (items, deltas) in enumerate(chunks):
        single.update_batch(items, deltas)
        shards[index % 2].update_batch(items, deltas)
    merged = shards[0].merge(shards[1])
    assert np.array_equal(merged._table, single._table)
    probe = np.arange(0, 100, dtype=np.int64)
    assert np.array_equal(
        merged.estimate_batch(probe), single.estimate_batch(probe)
    )


# ----------------------------------------------------------------------
# SpaceSaving: guarantee identity against the frozen dict legacy.
# ----------------------------------------------------------------------


def assert_space_saving_identical(new: SpaceSaving, old: LegacySpaceSaving,
                                  n_items: int):
    """Full state identity: values, overestimate bounds, and order.

    Comparing ``list(items())`` (not just the dict contents) pins the
    eviction tie-break order — the counter dicts enumerate in tracking
    order on both sides.
    """
    assert list(new._counters.items()) == list(old._counters.items())
    assert list(new._overestimates.items()) == list(
        old._overestimates.items()
    )
    assert new._length == old._length
    for item in range(n_items):
        assert new.estimate(item) == old.estimate(item)
        assert new.guaranteed_count(item) == old.guaranteed_count(item)
    for threshold in (1, 5, 50):
        assert new.candidates(threshold) == old.candidates(threshold)


def test_space_saving_scalar_updates_match_legacy():
    new, old = SpaceSaving(16), LegacySpaceSaving(16)
    items = zipf_items(seed=41, n_items=200, length=4000)
    weights = (np.random.default_rng(42).integers(1, 4, 4000)).astype(np.int64)
    for item, weight in zip(items.tolist(), weights.tolist()):
        new.update(item, weight)
        old.update(item, weight)
    assert_space_saving_identical(new, old, 200)


def test_space_saving_batch_matches_legacy_batch():
    new, old = SpaceSaving(24), LegacySpaceSaving(24)
    items = zipf_items(seed=43, n_items=400, length=20000)
    for start in range(0, len(items), 4096):
        chunk = items[start:start + 4096]
        new.process_batch(chunk, chunk)
        old.process_batch(chunk)
    assert_space_saving_identical(new, old, 400)


def test_space_saving_eviction_tie_break_order():
    """All-distinct unit weights force maximal eviction with constant
    ties — the case where tie-break order is the entire answer."""
    new, old = SpaceSaving(4), LegacySpaceSaving(4)
    for item in range(64):
        new.update(item)
        old.update(item)
    assert_space_saving_identical(new, old, 64)
    # And through the batch path, chunk boundaries mid-cascade.
    new2, old2 = SpaceSaving(4), LegacySpaceSaving(4)
    stream = np.arange(64, dtype=np.int64)
    for start in range(0, 64, 10):
        chunk = stream[start:start + 10]
        new2.process_batch(chunk, chunk)
        old2.process_batch(chunk)
    assert_space_saving_identical(new2, old2, 64)


def test_space_saving_interleaved_scalar_and_batch():
    new, old = SpaceSaving(8), LegacySpaceSaving(8)
    items = zipf_items(seed=47, n_items=100, length=3000)
    cursor = 0
    for step, size in enumerate([500, 1, 700, 3, 900]):
        chunk = items[cursor:cursor + size]
        cursor += size
        if step % 2 == 0:
            new.process_batch(chunk, chunk)
            old.process_batch(chunk)
        else:
            for item in chunk.tolist():
                new.update(item)
                old.update(item)
    assert_space_saving_identical(new, old, 100)


# ----------------------------------------------------------------------
# Algorithm 3: the netting pass against the frozen per-item path.
# ----------------------------------------------------------------------


def alg3_stream(seed: int, n: int, m: int, length: int):
    """A turnstile edge stream whose deletions only cancel live edges."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, n, length).astype(np.int64)
    b = rng.integers(0, m, length).astype(np.int64)
    sign = np.ones(length, dtype=np.int64)
    live: Dict[Tuple[int, int], int] = {}
    for index in range(length):
        edge = (int(a[index]), int(b[index]))
        if live.get(edge, 0) > 0 and rng.random() < 0.35:
            sign[index] = -1
            live[edge] -= 1
        else:
            live[edge] = live.get(edge, 0) + 1
    return a, b, sign


@pytest.mark.parametrize("scale", [0.05, 0.3])
def test_alg3_netting_pass_matches_per_item(scale):
    """Fused netting (one unique pass, per-bank nets) vs the frozen
    per-item route — ``process_item`` is the unchanged legacy scalar
    path.  Banks are linear, so the state must match bit for bit."""
    n, m = 48, 64
    a, b, sign = alg3_stream(seed=53, n=n, m=m, length=6000)
    batched = InsertionDeletionFEwW(n, m, 8, 2, seed=9, scale=scale)
    scalar = InsertionDeletionFEwW(n, m, 8, 2, seed=9, scale=scale)
    for start in range(0, len(a), 1024):
        stop = start + 1024
        batched.process_batch(a[start:stop], b[start:stop], sign[start:stop])
    for index in range(len(a)):
        scalar.process_item(
            StreamItem(Edge(int(a[index]), int(b[index])), int(sign[index]))
        )

    def bank_state(algorithm):
        state = {"edge": None, "vertex": {}}
        bank = algorithm._edge_bank
        if bank is not None:
            state["edge"] = sorted(bank._support.items())
        for vertex, vertex_bank in algorithm._vertex_banks.items():
            state["vertex"][vertex] = sorted(vertex_bank._support.items())
        return state

    assert bank_state(batched) == bank_state(scalar)
    # Same support + same seeds => identical sampler draws at query time.
    assert batched.result() == scalar.result()


def test_alg3_insert_only_chunks_match_per_item():
    """sign=None chunks (the cached insert-signs path) stay identical."""
    n, m = 32, 40
    rng = np.random.default_rng(59)
    a = rng.integers(0, n, 3000).astype(np.int64)
    b = rng.integers(0, m, 3000).astype(np.int64)
    batched = InsertionDeletionFEwW(n, m, 6, 2, seed=21, scale=0.2)
    scalar = InsertionDeletionFEwW(n, m, 6, 2, seed=21, scale=0.2)
    for start in range(0, len(a), 512):
        stop = start + 512
        batched.process_batch(a[start:stop], b[start:stop], None)
    for index in range(len(a)):
        scalar.process_item(StreamItem(Edge(int(a[index]), int(b[index]))))
    assert batched.result() == scalar.result()
