"""Engine vs per-item equivalence for the extension wrappers.

PR 1 proved ``process_batch`` bit-identical to ``process_item`` for the
core structures; this suite extends the contract up the stack: driving
Star Detection, top-k, and tumbling windows through the batch engine
(any chunk size, including chunks that straddle window boundaries)
produces *bit-identical* output to the old hand-rolled per-item loops —
same winners, same witness sets, same per-guess reservoir states, same
space accounting.
"""

import numpy as np
import pytest

from repro.core.star_detection import StarDetection
from repro.core.topk import TopKFEwW
from repro.core.windowed import TumblingWindowFEwW
from repro.engine import FanoutRunner
from repro.streams.adapters import (
    bipartite_double_cover,
    bipartite_double_cover_columnar,
)
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.generators import (
    GeneratorConfig,
    planted_star_graph,
    planted_star_undirected,
    zipf_frequency_stream,
)

CHUNK_SIZES = (1, 7, 100, 10**6)


def undirected_instance(seed=11, n_vertices=48, n_edges=260, star_degree=30):
    u, v = planted_star_undirected(n_vertices, n_edges, star_degree, seed=seed)
    cover = bipartite_double_cover_columnar(u, v, n_vertices)
    pairs = list(zip(u.tolist(), v.tolist()))
    return pairs, cover


class TestStarDetectionEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_insertion_only_bit_identical(self, chunk_size):
        pairs, cover = undirected_instance()
        per_item = StarDetection(cover.n, alpha=2, eps=0.5, seed=3)
        for item in bipartite_double_cover(pairs, cover.n):
            per_item.process_item(item)
        engine = StarDetection(cover.n, alpha=2, eps=0.5, seed=3)
        for a, b, sign in cover.chunks(chunk_size):
            engine.process_batch(a, b, sign)
        # Bit-identical state: every guess's every run holds the same
        # reservoir (same vertices, same witness lists, same order).
        for (guess_a, run_a), (guess_b, run_b) in zip(
            per_item._runs, engine._runs
        ):
            assert guess_a == guess_b
            for inner_a, inner_b in zip(run_a.runs, run_b.runs):
                assert inner_a._reservoir == inner_b._reservoir
        result_item = per_item.result()
        result_engine = engine.result()
        assert result_item.vertex == result_engine.vertex
        assert result_item.winning_guess == result_engine.winning_guess
        assert (
            result_item.neighbourhood.witnesses
            == result_engine.neighbourhood.witnesses
        )
        assert per_item.space_words() == engine.space_words()

    def test_process_undirected_matches_process_item(self):
        pairs, cover = undirected_instance(seed=12)
        reference = StarDetection(cover.n, alpha=2, eps=0.5, seed=4)
        for item in bipartite_double_cover(pairs, cover.n):
            reference.process_item(item)
        through_adapter = StarDetection(cover.n, alpha=2, eps=0.5, seed=4)
        through_adapter.process_undirected(pairs)
        assert reference.result().vertex == through_adapter.result().vertex
        assert (
            reference.result().neighbourhood.witnesses
            == through_adapter.result().neighbourhood.witnesses
        )

    def test_insertion_deletion_model_through_engine(self):
        pairs, cover = undirected_instance(seed=13, n_edges=200)
        signs = [1] * len(pairs)
        per_item = StarDetection(
            cover.n, alpha=2, eps=0.5, model="insertion-deletion",
            seed=5, scale=0.3,
        )
        for item in bipartite_double_cover(pairs, cover.n, signs):
            per_item.process_item(item)
        engine = StarDetection(
            cover.n, alpha=2, eps=0.5, model="insertion-deletion",
            seed=5, scale=0.3,
        )
        engine.process(cover)
        assert per_item.result().vertex == engine.result().vertex
        assert (
            per_item.result().neighbourhood.witnesses
            == engine.result().neighbourhood.witnesses
        )

    def test_insertion_only_model_rejects_deletions(self):
        detector = StarDetection(8, alpha=2, seed=0)
        with pytest.raises(ValueError, match="deletions"):
            detector.process_batch(
                np.array([0]), np.array([1]), np.array([-1])
            )


class TestTopKEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_results_bit_identical(self, chunk_size):
        stream = zipf_frequency_stream(
            GeneratorConfig(n=48, m=1200, seed=21), n_records=1000
        )
        d = stream.max_degree() // 2
        per_item = TopKFEwW(stream.n, d, 2, k=3, seed=9)
        for item in stream:
            per_item.process_item(item)
        engine = TopKFEwW(stream.n, d, 2, k=3, seed=9)
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        for a, b, sign in columnar.chunks(chunk_size):
            engine.process_batch(a, b, sign)
        expected = [
            (nb.vertex, nb.witnesses) for nb in per_item.results()
        ]
        actual = [(nb.vertex, nb.witnesses) for nb in engine.results()]
        assert actual == expected
        assert per_item.space_words() == engine.space_words()


class TestTumblingWindowEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("window", (37, 100, 251))
    def test_windows_bit_identical(self, chunk_size, window):
        """Chunks split at window boundaries: every window result matches."""
        stream = planted_star_graph(
            GeneratorConfig(n=32, m=512, seed=31),
            star_degree=40,
            background_degree=4,
        )
        per_item = TumblingWindowFEwW(stream.n, 8, 2, window=window, seed=13)
        for item in stream:
            per_item.process_item(item)
        per_item.flush()
        engine = TumblingWindowFEwW(stream.n, 8, 2, window=window, seed=13)
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        for a, b, sign in columnar.chunks(chunk_size):
            engine.process_batch(a, b, sign)
        engine_windows = engine.finalize()  # flush + completed windows
        reference = per_item.completed_windows()
        assert len(engine_windows) == len(reference)
        for expected, actual in zip(reference, engine_windows):
            assert expected.window_index == actual.window_index
            assert expected.start_update == actual.start_update
            assert expected.end_update == actual.end_update
            assert expected.found == actual.found
            if expected.found:
                assert (
                    expected.neighbourhood.vertex
                    == actual.neighbourhood.vertex
                )
                assert (
                    expected.neighbourhood.witnesses
                    == actual.neighbourhood.witnesses
                )

    def test_deletions_rejected_in_batch(self):
        windowed = TumblingWindowFEwW(8, 2, 2, window=4, seed=0)
        with pytest.raises(ValueError, match="insertion-only"):
            windowed.process_batch(
                np.array([0]), np.array([1]), np.array([-1])
            )


class TestFanoutAcrossWrappers:
    def test_one_pass_feeds_all_three_wrappers(self):
        """The headline engine scenario: star + top-k + windows, one pass."""
        stream = planted_star_graph(
            GeneratorConfig(n=40, m=600, seed=41),
            star_degree=32,
            background_degree=3,
        )
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        runner = FanoutRunner(
            {
                "topk": TopKFEwW(stream.n, 16, 2, k=2, seed=2),
                "windows": TumblingWindowFEwW(
                    stream.n, 8, 2, window=100, seed=3
                ),
            },
            chunk_size=64,
        )
        results = runner.run(columnar)
        assert results["topk"], "planted star not found by top-k"
        assert results["topk"][0].vertex == 0
        assert results["windows"], "no windows completed"
        # Solo runs from the same seeds are bit-identical.
        solo = TopKFEwW(stream.n, 16, 2, k=2, seed=2)
        for item in stream:
            solo.process_item(item)
        assert [nb.vertex for nb in results["topk"]] == [
            nb.vertex for nb in solo.results()
        ]
