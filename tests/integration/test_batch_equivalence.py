"""Batch/per-item equivalence for every structure with a `process_batch`.

The columnar engine's contract: for the deterministic structures and for
the randomized ones driven by a seeded RNG, feeding a stream through
``process_batch`` (at any chunk size, including chunks that split a
vertex's d1 crossing) produces exactly the same state, query answers,
space accounting, and success flags as feeding it through
``process_item``.  Misra-Gries and SpaceSaving use weight-collapsed
batch paths whose counters may legitimately differ from the interleaved
per-item schedule; for those the tests assert the structures' error
guarantees instead.
"""

import random

import numpy as np
import pytest

from repro.baselines import (
    CountMinSketch,
    CountSketch,
    FirstKWitnessCollector,
    FullStorage,
    MisraGries,
    SpaceSaving,
)
from repro.core.deg_res_sampling import DegResSampling
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.sketch.l0 import L0SamplerBank
from repro.streams.columnar import ColumnarEdgeStream, process_columnar
from repro.streams.generators import (
    GeneratorConfig,
    adversarial_interleaved_stream,
    deletion_churn_stream,
    zipf_frequency_stream,
)

CHUNK_SIZES = (1, 7, 100, 1000, 10**6)


def zipf(seed, n=64, records=1500, exponent=1.3):
    stream = zipf_frequency_stream(
        GeneratorConfig(n=n, m=records, seed=seed), records, exponent
    )
    return stream, ColumnarEdgeStream.from_edge_stream(stream)


def churn(seed):
    stream = deletion_churn_stream(
        GeneratorConfig(n=20, m=40, seed=seed), star_degree=12, churn_edges=150
    )
    return stream, ColumnarEdgeStream.from_edge_stream(stream)


class TestAlgorithm2:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_bit_identical_state(self, seed, chunk):
        stream, columnar = zipf(seed)
        per_item = InsertionOnlyFEwW(64, 60, 2, seed=seed)
        for item in stream:
            per_item.process_item(item)
        batched = InsertionOnlyFEwW(64, 60, 2, seed=seed)
        process_columnar(batched, columnar, chunk_size=chunk)
        for run_item, run_batch in zip(per_item.runs, batched.runs):
            assert run_item._reservoir == run_batch._reservoir
            assert run_item._resident == run_batch._resident
            assert run_item._candidates_seen == run_batch._candidates_seen
        assert per_item.successful == batched.successful
        assert per_item.successful_runs() == batched.successful_runs()
        assert per_item.space_words() == batched.space_words()
        if per_item.successful:
            assert per_item.result().vertex == batched.result().vertex
            assert per_item.result().witnesses == batched.result().witnesses

    def test_chunk_boundary_splits_d1_crossing(self):
        """Chunks cut right at/around the positions where vertices cross d1."""
        stream = adversarial_interleaved_stream(
            GeneratorConfig(n=32, m=4000, seed=5),
            star_degree=200,
            n_decoys=12,
            decoy_degree=30,
        )
        columnar = ColumnarEdgeStream.from_edge_stream(stream)
        # Decoy i crosses d1=30 at position 30*i - 1; chunk sizes 29, 30
        # and 31 place boundaries on, before, and after crossings.
        for chunk in (29, 30, 31):
            per_item = DegResSampling(32, 30, 10, 3, random.Random(7))
            for item in stream:
                per_item.process_item(item)
            batched = DegResSampling(32, 30, 10, 3, random.Random(7))
            for a, b, sign in columnar.chunks(chunk):
                batched.process_batch(a, b, sign)
            assert per_item._reservoir == batched._reservoir
            assert per_item._resident == batched._resident
            assert per_item._candidates_seen == batched._candidates_seen
            assert per_item.successful == batched.successful
            assert per_item.space_words() == batched.space_words()

    def test_fast_path_skip_changes_nothing(self):
        """process_item's no-op skip must not affect any run's trajectory."""
        stream, _ = zipf(3)
        algorithm = InsertionOnlyFEwW(64, 60, 4, seed=3)
        for item in stream:
            algorithm.process_item(item)
        reference = InsertionOnlyFEwW(64, 60, 4, seed=3)
        for item in stream:
            degree = reference._degrees.increment(item.edge.a)
            for run in reference.runs:  # unconditional fan-out
                run.observe_edge(item.edge.a, item.edge.b, degree)
        for run_a, run_b in zip(algorithm.runs, reference.runs):
            assert run_a._reservoir == run_b._reservoir
            assert run_a._candidates_seen == run_b._candidates_seen


class TestAlgorithm3:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("chunk", (1, 13, 1000))
    def test_identical_results_fast_mode(self, seed, chunk):
        stream, columnar = churn(seed)
        per_item = InsertionDeletionFEwW(20, 40, 8, 2, seed=seed, scale=0.2)
        for item in stream:
            per_item.process_item(item)
        batched = InsertionDeletionFEwW(20, 40, 8, 2, seed=seed, scale=0.2)
        process_columnar(batched, columnar, chunk_size=chunk)
        assert per_item.successful == batched.successful
        assert per_item._collected() == batched._collected()
        assert per_item.space_words() == batched.space_words()

    # Exact-mode banks route through the same L0SamplerBank.update_batch
    # as fast mode; their batch/scalar agreement is covered (cheaply) by
    # TestLinearSketches.test_l0_bank_batch_matches_scalar[exact] — the
    # paper's delta = 1/(n^10 d) makes full exact-mode Algorithm 3 runs
    # far too large for the unit suite.


class TestLinearSketches:
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_count_min_bit_identical(self, chunk):
        stream, columnar = churn(1)
        per_item = CountMinSketch(0.05, 0.05, seed=9)
        for item in stream:
            per_item.process_item(item)
        batched = CountMinSketch(0.05, 0.05, seed=9)
        process_columnar(batched, columnar, chunk_size=chunk)
        assert (per_item._table == batched._table).all()
        assert all(
            per_item.estimate(a) == batched.estimate(a) for a in range(20)
        )

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_count_sketch_bit_identical(self, chunk):
        stream, columnar = churn(3)
        per_item = CountSketch(32, rows=5, seed=11)
        for item in stream:
            per_item.process_item(item)
        batched = CountSketch(32, rows=5, seed=11)
        process_columnar(batched, columnar, chunk_size=chunk)
        assert (per_item._table == batched._table).all()
        assert all(
            per_item.estimate(a) == batched.estimate(a) for a in range(20)
        )

    @pytest.mark.parametrize("mode", ["fast", "exact"])
    def test_l0_bank_batch_matches_scalar(self, mode):
        rng_a, rng_b = random.Random(5), random.Random(5)
        bank_scalar = L0SamplerBank(50, 4, 0.05, rng_a, mode=mode)
        bank_batch = L0SamplerBank(50, 4, 0.05, rng_b, mode=mode)
        updates = [(i % 50, +1) for i in range(120)] + [
            (i % 7, -1) for i in range(21)
        ]
        for index, delta in updates:
            bank_scalar.update(index, delta)
        bank_batch.update_batch(
            np.array([u[0] for u in updates]),
            np.array([u[1] for u in updates]),
        )
        assert bank_scalar.sample_all() == bank_batch.sample_all()
        assert bank_scalar.space_words() == bank_batch.space_words()


class TestExactStores:
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_full_storage_identical(self, chunk):
        stream, columnar = churn(4)
        per_item = FullStorage(20, 40)
        for item in stream:
            per_item.process_item(item)
        batched = FullStorage(20, 40)
        process_columnar(batched, columnar, chunk_size=chunk)
        assert per_item._neighbours == batched._neighbours
        assert per_item.space_words() == batched.space_words()

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_first_k_collector_identical(self, chunk):
        stream, columnar = zipf(6)
        per_item = FirstKWitnessCollector(64, 5)
        for item in stream:
            per_item.process_item(item)
        batched = FirstKWitnessCollector(64, 5)
        process_columnar(batched, columnar, chunk_size=chunk)
        assert per_item._witnesses == batched._witnesses
        assert per_item._degrees == batched._degrees
        assert per_item.space_words() == batched.space_words()


class TestWeightedSummaries:
    """MG / SpaceSaving batch paths are weight-collapsed: equivalence is
    at the level of the structures' guarantees, not counter values."""

    @pytest.mark.parametrize("chunk", (1, 64, 1000))
    def test_misra_gries_guarantees_hold(self, chunk):
        stream, columnar = zipf(7)
        truth = {}
        for item in stream:
            truth[item.edge.a] = truth.get(item.edge.a, 0) + 1
        summary = MisraGries(8)
        process_columnar(summary, columnar, chunk_size=chunk)
        assert summary._length == len(stream)
        assert len(summary._counters) <= summary.k
        bound = summary.error_bound()
        for vertex, count in truth.items():
            estimate = summary.estimate(vertex)
            assert estimate <= count
            assert estimate >= count - bound

    @pytest.mark.parametrize("chunk", (1, 64, 1000))
    def test_space_saving_guarantees_hold(self, chunk):
        stream, columnar = zipf(8)
        truth = {}
        for item in stream:
            truth[item.edge.a] = truth.get(item.edge.a, 0) + 1
        summary = SpaceSaving(8)
        process_columnar(summary, columnar, chunk_size=chunk)
        assert summary._length == len(stream)
        assert len(summary._counters) <= summary.k
        min_counter = min(summary._counters.values())
        assert min_counter <= len(stream) / summary.k
        for vertex, count in truth.items():
            if vertex in summary._counters:
                assert summary.estimate(vertex) >= count
                assert summary.guaranteed_count(vertex) <= count

    def test_batch_matches_per_item_on_grouped_streams(self):
        """When every item's occurrences are consecutive, the weighted
        batch path reproduces the per-item trajectory exactly."""
        items = [0] * 5 + [1] * 3 + [2] * 4 + [3] * 2 + [4] * 6
        a = np.array(items, dtype=np.int64)
        b = np.arange(len(items), dtype=np.int64)
        per_item = SpaceSaving(3)
        for vertex in items:
            per_item.update(vertex)
        batched = SpaceSaving(3)
        batched.process_batch(a, b)
        assert per_item._counters == batched._counters
        assert per_item._overestimates == batched._overestimates


class TestInsertionOnlyGuards:
    def test_batch_rejects_deletions(self):
        a = np.array([1, 1])
        b = np.array([1, 2])
        sign = np.array([1, -1])
        with pytest.raises(ValueError):
            InsertionOnlyFEwW(4, 2, 1, seed=0).process_batch(a, b, sign)
        with pytest.raises(ValueError):
            DegResSampling(4, 1, 1, 1, random.Random(0)).process_batch(a, b, sign)
        with pytest.raises(ValueError):
            MisraGries(4).process_batch(a, b, sign)
        with pytest.raises(ValueError):
            SpaceSaving(4).process_batch(a, b, sign)
        with pytest.raises(ValueError):
            FirstKWitnessCollector(4, 2).process_batch(a, b, sign)
