"""ShardedRunner equivalence: sharded answers match the single-core path.

For every processor family, a :class:`~repro.engine.ShardedRunner` at
1, 2 and 4 workers must produce answers matching a single-core
:class:`~repro.engine.FanoutRunner` over the same stream:

* **bit-identical** for the linear seeded sketches (Count-Min,
  CountSketch, Algorithm 3's sampler banks), the exact structures
  (FullStorage, FirstKWitnessCollector), the tumbling-window wrapper
  (windows are seeded by global index), and — in the no-eviction regime
  where the reservoirs never consume randomness — Algorithms 1–2, the
  top-k wrapper and Star Detection;
* **guarantee-identical** for the counter summaries (Misra-Gries,
  SpaceSaving: merged estimates bracket the true counts with the
  classical mergeable-summaries error) and for Algorithm 2's sampled
  answers in the general (evicting) regime.

A from-disk source (v2 NPZ, memory-mapped, workers self-reading) is
covered alongside the in-memory queue path.
"""

import math

import numpy as np
import pytest

from repro.baselines import (
    CountMinSketch,
    CountSketch,
    FirstKWitnessCollector,
    FullStorage,
    MisraGries,
    SpaceSaving,
)
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.star_detection import StarDetection
from repro.core.topk import TopKFEwW
from repro.core.windowed import TumblingWindowFEwW
from repro.engine import FanoutRunner, ShardedRunner
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.generators import (
    GeneratorConfig,
    deletion_churn_stream,
    planted_star_graph,
    zipf_frequency_columnar,
)
from repro.streams.persist import dump_stream

WORKERS = (1, 2, 4)
CHUNK = 173  # deliberately odd: chunks straddle every boundary kind


@pytest.fixture(scope="module")
def zipf():
    """Insertion-only Zipf workload (many distinct vertices; evictions)."""
    return zipf_frequency_columnar(
        GeneratorConfig(n=48, m=1500, seed=61), 1500, exponent=1.3
    )


@pytest.fixture(scope="module")
def sparse():
    """Insertion-only workload touching few vertices: every Algorithm 2
    reservoir admits without ever evicting (s >= candidate count), so
    the whole reservoir trajectory is deterministic."""
    rng = np.random.default_rng(7)
    a = rng.integers(0, 12, size=1200)
    b = np.arange(1200, dtype=np.int64)
    return ColumnarEdgeStream(a, b, n=64, m=1200)


@pytest.fixture(scope="module")
def churn():
    """Turnstile workload (inserts and deletes) for Algorithm 3."""
    stream = deletion_churn_stream(
        GeneratorConfig(n=48, m=256, seed=4), star_degree=60, churn_edges=250
    )
    return ColumnarEdgeStream.from_edge_stream(stream)


@pytest.fixture(scope="module")
def star():
    """Planted star (vertex 0, degree 80) for success guarantees."""
    stream = planted_star_graph(
        GeneratorConfig(n=64, m=512, seed=9), star_degree=80,
        background_degree=4,
    )
    return ColumnarEdgeStream.from_edge_stream(stream)


def single_pass(factory, source):
    runner = FanoutRunner(factory(), chunk_size=CHUNK)
    results = runner.run(source)
    return results, runner


def sharded_pass(factory, source, workers, **kwargs):
    runner = ShardedRunner(
        factory(), n_workers=workers, chunk_size=CHUNK, **kwargs
    )
    results = runner.run(source)
    return results, runner


def reservoir_state(algorithm):
    """Order-insensitive fingerprint of Algorithm 2's full sampling state:
    per run, the candidate count and every reservoir vertex's witness
    sequence (witness order within a vertex is part of the state)."""
    return [
        (
            run._candidates_seen,
            {
                vertex: tuple(witnesses)
                for vertex, witnesses in run._reservoir.items()
            },
        )
        for run in algorithm.runs
    ]


class TestBitIdenticalLinearSketches:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_count_min_tables_equal(self, zipf, workers):
        factory = lambda: {"cm": CountMinSketch(0.05, 0.05, seed=5)}
        single, _ = single_pass(factory, zipf)
        sharded, _ = sharded_pass(factory, zipf, workers)
        assert np.array_equal(single["cm"]._table, sharded["cm"]._table)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_count_sketch_tables_equal(self, zipf, workers):
        factory = lambda: {"cs": CountSketch(64, rows=3, seed=6)}
        single, _ = single_pass(factory, zipf)
        sharded, _ = sharded_pass(factory, zipf, workers)
        assert np.array_equal(single["cs"]._table, sharded["cs"]._table)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_algorithm3_answer_and_supports_equal(self, churn, workers):
        factory = lambda: {
            "alg3": InsertionDeletionFEwW(48, 256, 60, 2, seed=11, scale=0.1)
        }
        single, single_runner = single_pass(factory, churn)
        sharded, sharded_runner = sharded_pass(factory, churn, workers)
        mine, theirs = single["alg3"], sharded["alg3"]
        assert (mine is None) == (theirs is None)
        if mine is not None:
            assert mine.vertex == theirs.vertex
            assert mine.witnesses == theirs.witnesses
        # The linear support trackers must agree coordinate for
        # coordinate, not just on the sampled answer.
        assert (
            single_runner["alg3"]._edge_bank._support._values
            == sharded_runner["alg3"]._edge_bank._support._values
        )


class TestBitIdenticalExactStructures:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_full_storage_graphs_equal(self, churn, workers):
        factory = lambda: {"full": FullStorage(48, 256)}
        single, _ = single_pass(factory, churn)
        sharded, _ = sharded_pass(factory, churn, workers)
        assert single["full"]._neighbours == sharded["full"]._neighbours

    @pytest.mark.parametrize("workers", WORKERS)
    def test_first_k_witnesses_equal(self, zipf, workers):
        factory = lambda: {"firstk": FirstKWitnessCollector(48, 8)}
        single, _ = single_pass(factory, zipf)
        sharded, _ = sharded_pass(factory, zipf, workers)
        assert single["firstk"]._degrees == sharded["firstk"]._degrees
        assert single["firstk"]._witnesses == sharded["firstk"]._witnesses


class TestGuaranteeIdenticalCounterSummaries:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_misra_gries_bracket(self, zipf, workers):
        factory = lambda: {"mg": MisraGries(16)}
        sharded, _ = sharded_pass(factory, zipf, workers)
        summary = sharded["mg"]
        true = np.bincount(zipf.a, minlength=zipf.n)
        total = len(zipf)
        assert summary._length == total
        for item in range(zipf.n):
            estimate = summary.estimate(item)
            assert estimate <= true[item]
            assert estimate >= true[item] - total / (16 + 1) - 1e-9

    @pytest.mark.parametrize("workers", WORKERS)
    def test_space_saving_bracket_and_heavy_hitters(self, zipf, workers):
        factory = lambda: {"ss": SpaceSaving(16)}
        sharded, _ = sharded_pass(factory, zipf, workers)
        summary = sharded["ss"]
        true = np.bincount(zipf.a, minlength=zipf.n)
        total = len(zipf)
        for item in range(zipf.n):
            estimate = summary.estimate(item)
            if estimate:
                assert estimate >= summary.guaranteed_count(item)
                assert estimate <= true[item] + total / 16 + 1e-9
        for item in np.flatnonzero(true > total / 16).tolist():
            assert summary.estimate(item) >= true[item]


class TestAlgorithm2:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_no_eviction_regime_bit_identical(self, sparse, workers):
        # s = ceil(ln 64 * 8) = 34 >= 12 candidate vertices: no RNG is
        # ever consumed, so the merged sampling state must equal the
        # single-core state exactly.
        factory = lambda: {"alg2": InsertionOnlyFEwW(64, 40, 2, seed=13)}
        _, single_runner = single_pass(factory, sparse)
        _, sharded_runner = sharded_pass(factory, sparse, workers)
        single_alg = single_runner["alg2"]
        merged_alg = sharded_runner["alg2"]
        assert np.array_equal(
            single_alg._degrees._degrees, merged_alg._degrees._degrees
        )
        assert reservoir_state(single_alg) == reservoir_state(merged_alg)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_planted_star_guarantee(self, star, workers):
        factory = lambda: {"alg2": InsertionOnlyFEwW(64, 80, 2, seed=3)}
        sharded, _ = sharded_pass(factory, star, workers)
        answer = sharded["alg2"]
        assert answer is not None
        assert answer.size >= math.ceil(80 / 2)
        true_neighbours = {
            int(b)
            for a, b in zip(star.a.tolist(), star.b.tolist())
            if a == answer.vertex
        }
        assert answer.witnesses <= true_neighbours

    @pytest.mark.parametrize("workers", WORKERS)
    def test_topk_no_eviction_bit_identical(self, sparse, workers):
        # k covers every candidate vertex, so ranking ties cannot push
        # different vertices past the cut in the two paths.
        factory = lambda: {"topk": TopKFEwW(64, 40, 2, k=12, seed=17)}
        _, single_runner = single_pass(factory, sparse)
        _, sharded_runner = sharded_pass(factory, sparse, workers)
        assert reservoir_state(single_runner["topk"]._inner) == (
            reservoir_state(sharded_runner["topk"]._inner)
        )
        single_results = single_runner["topk"].finalize()
        sharded_results = sharded_runner["topk"].finalize()
        assert sorted(
            (nb.vertex, nb.size, nb.witnesses) for nb in single_results
        ) == sorted(
            (nb.vertex, nb.size, nb.witnesses) for nb in sharded_results
        )


class TestWrappers:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_tumbling_windows_bit_identical(self, zipf, workers):
        factory = lambda: {
            "win": TumblingWindowFEwW(48, 30, 2, window=256, seed=19)
        }
        single, _ = single_pass(factory, zipf)
        sharded, _ = sharded_pass(factory, zipf, workers)

        def fingerprint(windows):
            return [
                (
                    window.window_index,
                    window.start_update,
                    window.end_update,
                    None
                    if window.neighbourhood is None
                    else (
                        window.neighbourhood.vertex,
                        window.neighbourhood.witnesses,
                    ),
                )
                for window in windows
            ]

        assert fingerprint(single["win"]) == fingerprint(sharded["win"])

    @pytest.mark.parametrize("workers", WORKERS)
    def test_star_detection_no_eviction_bit_identical(self, workers):
        # Few distinct vertices => every guess's reservoir admits all
        # candidates; compare the full per-guess sampling state.
        rng = np.random.default_rng(23)
        u = rng.integers(0, 10, size=400)
        v = rng.integers(200, 240, size=400)
        stream = ColumnarEdgeStream(
            np.concatenate([u, v]),
            np.concatenate([v, u]),
            n=512,
            m=512,
            validate=False,
        )
        factory = lambda: {"star": StarDetection(512, 2, eps=1.0, seed=29)}
        _, single_runner = single_pass(factory, stream)
        _, sharded_runner = sharded_pass(factory, stream, workers)
        for (guess_a, mine), (guess_b, theirs) in zip(
            single_runner["star"]._runs, sharded_runner["star"]._runs
        ):
            assert guess_a == guess_b
            assert reservoir_state(mine) == reservoir_state(theirs)


class TestFromDisk:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_mmap_file_source_matches_in_memory(
        self, sparse, tmp_path_factory, workers
    ):
        path = tmp_path_factory.mktemp("sharded") / "sparse.npz"
        dump_stream(sparse, path, format="v2")
        factory = lambda: {
            "alg2": InsertionOnlyFEwW(64, 40, 2, seed=13),
            "cm": CountMinSketch(0.05, 0.05, seed=5),
        }
        _, single_runner = single_pass(factory, sparse)
        sharded, sharded_runner = sharded_pass(
            factory, str(path), workers, mmap=True
        )
        assert np.array_equal(
            single_runner["cm"]._table, sharded_runner["cm"]._table
        )
        assert reservoir_state(single_runner["alg2"]) == (
            reservoir_state(sharded_runner["alg2"])
        )

    def test_serial_backend_matches_process_backend(self, zipf):
        factory = lambda: {"cm": CountMinSketch(0.05, 0.05, seed=5)}
        process, _ = sharded_pass(factory, zipf, 3)
        serial, _ = sharded_pass(factory, zipf, 3, backend="serial")
        assert np.array_equal(process["cm"]._table, serial["cm"]._table)
