"""Window-policy equivalences and guarantees.

Three pillars of the window subsystem:

* **Tumbling-as-a-policy is bit-identical to the pre-refactor
  TumblingWindowFEwW.**  A frozen reimplementation of the old bespoke
  per-item loop (fresh Algorithm 2 per window, the same
  ``seed * 1_000_003 + index`` derivation, result() caught per window)
  is compared window by window against the refactored wrapper on
  seeded streams, through both the per-item and the engine chunk path.

* **The smooth-histogram sliding window meets its (1+eps) bucket
  bound** — the answer is an *exact* summary of the trailing ``L``
  updates with ``window <= L <= window + bucket <= (1+eps)*window`` —
  at 1, 2 and 4 ShardedRunner workers (the acceptance criterion), and
  the sharded answers are bit-identical to the single-core pass.

* **Count-based decay shards faithfully**: recent buckets and the
  folded tail match the single-core run at every worker count (the
  inner FullStorage merge is commutative, so the tail is bit-identical).
"""

import functools
import math

import numpy as np
import pytest

from repro.baselines import FullStorage
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed
from repro.core.windowed import TumblingWindowFEwW
from repro.engine import (
    DecayPolicy,
    FanoutRunner,
    ShardedRunner,
    SlidingPolicy,
    WindowedProcessor,
)
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.generators import (
    GeneratorConfig,
    planted_star_graph,
    zipf_frequency_columnar,
)

WORKERS = (1, 2, 4)
CHUNK = 173


# ----------------------------------------------------------------------
# The pre-refactor tumbling loop, frozen for the equivalence test.
# ----------------------------------------------------------------------


class LegacyTumblingWindow:
    """Byte-for-byte reimplementation of the old core/windowed.py loop."""

    def __init__(self, n, d, alpha, window, seed=0):
        self.n, self.d, self.alpha, self.window = n, d, alpha, window
        self._seed = seed
        self._window_index = 0
        self._updates_in_window = 0
        self._current = self._fresh_instance()
        self.completed = []

    def _fresh_instance(self):
        derived = (self._seed * 1_000_003 + self._window_index) & 0xFFFFFFFF
        return InsertionOnlyFEwW(self.n, self.d, self.alpha, seed=derived)

    def _close_window(self):
        try:
            neighbourhood = self._current.result()
        except AlgorithmFailed:
            neighbourhood = None
        start = self._window_index * self.window
        self.completed.append(
            (
                self._window_index,
                start,
                start + self._updates_in_window,
                neighbourhood,
            )
        )
        self._window_index += 1
        self._updates_in_window = 0
        self._current = self._fresh_instance()

    def process_item(self, item):
        self._current.process_item(item)
        self._updates_in_window += 1
        if self._updates_in_window == self.window:
            self._close_window()

    def run(self, stream):
        for item in stream:
            self.process_item(item)
        if self._updates_in_window > 0 or (
            not self.completed and self._window_index == 0
        ):
            self._close_window()
        return self.completed


def fingerprint_legacy(completed):
    return [
        (
            index,
            start,
            end,
            None if nb is None else (nb.vertex, nb.witnesses),
        )
        for index, start, end, nb in completed
    ]


def fingerprint_new(windows):
    return [
        (
            w.window_index,
            w.start_update,
            w.end_update,
            None
            if w.neighbourhood is None
            else (w.neighbourhood.vertex, w.neighbourhood.witnesses),
        )
        for w in windows
    ]


class TestTumblingLegacyEquivalence:
    @pytest.mark.parametrize("window", (37, 100, 256))
    @pytest.mark.parametrize("seed", (0, 19))
    def test_engine_path_bit_identical_to_legacy_loop(self, window, seed):
        stream = zipf_frequency_columnar(
            GeneratorConfig(n=48, m=1500, seed=61), 1500, exponent=1.3
        )
        legacy = LegacyTumblingWindow(48, 30, 2, window, seed=seed)
        legacy_windows = legacy.run(stream)

        refactored = TumblingWindowFEwW(48, 30, 2, window=window, seed=seed)
        for a, b, sign in stream.chunks(CHUNK):
            refactored.process_batch(a, b, sign)
        assert fingerprint_new(refactored.finalize()) == fingerprint_legacy(
            legacy_windows
        )

    def test_per_item_path_bit_identical_to_legacy_loop(self):
        stream = planted_star_graph(
            GeneratorConfig(n=32, m=256, seed=7), star_degree=60,
            background_degree=3,
        )
        legacy_windows = LegacyTumblingWindow(32, 20, 2, 50, seed=5).run(stream)
        refactored = TumblingWindowFEwW(32, 20, 2, window=50, seed=5)
        for item in stream:
            refactored.process_item(item)
        assert fingerprint_new(refactored.finalize()) == fingerprint_legacy(
            legacy_windows
        )

    def test_empty_stream_still_records_one_empty_window(self):
        legacy_windows = LegacyTumblingWindow(8, 2, 1, 4, seed=0).run([])
        refactored = TumblingWindowFEwW(8, 2, 1, window=4, seed=0)
        assert fingerprint_new(refactored.finalize()) == fingerprint_legacy(
            legacy_windows
        )


# ----------------------------------------------------------------------
# Sliding (smooth histogram) accuracy at 1/2/4 workers.
# ----------------------------------------------------------------------


def full_storage_factory(n, m, seed):
    return FullStorage(n, m)


@pytest.fixture(scope="module")
def monitoring_stream():
    """Insertion-only stream, one distinct witness per update, so every
    vertex's exact count over any suffix is checkable directly."""
    rng = np.random.default_rng(23)
    a = rng.integers(0, 24, size=4000)
    b = np.arange(4000, dtype=np.int64)
    return ColumnarEdgeStream(a, b, n=24, m=4000, validate=False)


WINDOW = 700
RATIO = 0.25


def sliding_wrapper():
    return WindowedProcessor(
        functools.partial(full_storage_factory, 24, 4000),
        SlidingPolicy(WINDOW, bucket_ratio=RATIO),
        seed=9,
    )


def degrees_of(store):
    return {v: len(ws) for v, ws in store._neighbours.items() if ws}


def exact_suffix_counts(stream, length):
    tail = stream.a[len(stream) - length:]
    return {int(v): int(c) for v, c in zip(*np.unique(tail, return_counts=True))}


class TestSlidingAccuracy:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_one_plus_eps_bucket_bound(self, monitoring_stream, workers):
        """The sliding estimate is an exact recompute over a span within
        the (1+eps) bucket bound of the requested window."""
        runner = ShardedRunner(
            {"win": sliding_wrapper()}, n_workers=workers, chunk_size=CHUNK
        )
        answer = runner.run(monitoring_stream)["win"]
        policy = SlidingPolicy(WINDOW, bucket_ratio=RATIO)
        # Span: within one bucket of the requested window...
        assert WINDOW <= answer.span <= WINDOW + policy.bucket
        assert answer.span <= math.ceil((1 + RATIO) * WINDOW)
        # ...and the summary over that span is exact: sandwiched between
        # the exact recompute at the window and at the bucket bound.
        estimate = degrees_of(answer.processor)
        assert estimate == exact_suffix_counts(monitoring_stream, answer.span)
        lower = exact_suffix_counts(monitoring_stream, WINDOW)
        upper = exact_suffix_counts(
            monitoring_stream, WINDOW + policy.bucket
        )
        for vertex in range(24):
            assert lower.get(vertex, 0) <= estimate.get(vertex, 0)
            assert estimate.get(vertex, 0) <= upper.get(vertex, 0)

    @pytest.mark.parametrize("workers", (2, 4))
    def test_sharded_bit_identical_to_single_core(
        self, monitoring_stream, workers
    ):
        single = FanoutRunner(
            {"win": sliding_wrapper()}, chunk_size=CHUNK
        ).run(monitoring_stream)["win"]
        sharded = ShardedRunner(
            {"win": sliding_wrapper()}, n_workers=workers, chunk_size=CHUNK
        ).run(monitoring_stream)["win"]
        assert (sharded.start_update, sharded.end_update) == (
            single.start_update,
            single.end_update,
        )
        assert (
            sharded.processor._neighbours == single.processor._neighbours
        )

    @pytest.mark.parametrize("workers", WORKERS)
    def test_accuracy_holds_from_mmap_file(
        self, monitoring_stream, tmp_path_factory, workers
    ):
        from repro.streams.persist import dump_stream

        path = tmp_path_factory.mktemp("windows") / "monitoring.npz"
        dump_stream(monitoring_stream, path, format="v2")
        answer = ShardedRunner(
            {"win": sliding_wrapper()},
            n_workers=workers,
            chunk_size=CHUNK,
            mmap=True,
        ).run(str(path))["win"]
        assert WINDOW <= answer.span <= math.ceil((1 + RATIO) * WINDOW)
        assert degrees_of(answer.processor) == exact_suffix_counts(
            monitoring_stream, answer.span
        )


class TestDecaySharded:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_recent_and_tail_match_single_core(self, monitoring_stream, workers):
        def wrapper():
            return WindowedProcessor(
                functools.partial(full_storage_factory, 24, 4000),
                DecayPolicy(bucket_size=300, keep=3),
                seed=4,
            )

        single = FanoutRunner(
            {"win": wrapper()}, chunk_size=CHUNK
        ).run(monitoring_stream)["win"]
        sharded = ShardedRunner(
            {"win": wrapper()}, n_workers=workers, chunk_size=CHUNK
        ).run(monitoring_stream)["win"]
        assert [
            (r.window_index, r.start_update, r.end_update)
            for r in sharded.recent
        ] == [
            (r.window_index, r.start_update, r.end_update)
            for r in single.recent
        ]
        assert sharded.has_tail == single.has_tail
        assert (
            sharded.tail_processor._neighbours
            == single.tail_processor._neighbours
        )
        assert (sharded.tail_start_update, sharded.tail_end_update) == (
            single.tail_start_update,
            single.tail_end_update,
        )


class TestWindowedAlgorithm2Sharded:
    """The production shape: Algorithm 2 under a sliding policy through
    the sharded runner — every bucket is seeded by global index, so any
    worker count reports the same trailing-window verdict."""

    @pytest.mark.parametrize("workers", WORKERS)
    def test_sliding_alg2_consistent_across_workers(self, workers):
        from repro.core.windowed import Alg2WindowFactory

        rng = np.random.default_rng(31)
        phases = []
        for hot in (3, 9):
            a = np.full(800, hot, dtype=np.int64)
            a[:500] = rng.integers(12, 32, size=500)
            rng.shuffle(a)
            phases.append(a)
        a = np.concatenate(phases)
        b = np.arange(len(a), dtype=np.int64)
        stream = ColumnarEdgeStream(a, b, n=32, m=len(a), validate=False)

        def wrapper():
            return WindowedProcessor(
                Alg2WindowFactory(32, 200, 2),
                SlidingPolicy(800, bucket_ratio=0.25),
                seed=6,
            )

        single = FanoutRunner({"w": wrapper()}, chunk_size=CHUNK).run(stream)["w"]
        sharded = ShardedRunner(
            {"w": wrapper()}, n_workers=workers, chunk_size=CHUNK
        ).run(stream)["w"]
        assert single.value is not None
        assert single.value.vertex == 9  # the recent phase's hot vertex
        assert sharded.value is not None
        assert sharded.value.vertex == single.value.vertex
        assert sharded.value.witnesses == single.value.witnesses
        assert sharded.span == single.span
