"""Frozen-legacy equivalence for the fused exact-bank ingest and the
vectorized, memoized decode.

The exact-mode :class:`L0SamplerBank` no longer fans a batch out sampler
by sampler: update columns are buffered, netted across chunks, and
absorbed by one bank-wide fused kernel over the stacked ``(sampler,
level, row, bucket)`` accumulator planes.  Separately,
:class:`SSparseRecovery.decode` replaced its per-cell Python loop with a
vectorized classification plus a dirty-flag memo (and
:class:`L0Sampler.sample` memoizes on top).

These tests pin both against *frozen copies of the legacy semantics*
embedded below — the elementary per-item / per-cell Python-int
arithmetic — not against the current code paths, so a future
"optimisation" that silently changes results cannot pass by being
compared to itself.

* Bank ingest: bit-identical weight/dot/fingerprint planes and samples
  under any chunking, netting, or scalar/batch interleaving.
* Deferred buffering: every read path (sample_all / merge /
  space_words / pickle / deepcopy) consolidates first, and copies
  preserve the sampler-into-bank plane aliasing.
* Decode: bit-identical recovered sets (including insertion order and
  the peeling fallback) and collision verdicts; the memo never outlives
  a mutation and hands out independent dicts.
"""

from __future__ import annotations

import copy
import pickle
import random
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.sketch.hashing import PRIME_61
from repro.sketch.l0 import L0Sampler, L0SamplerBank
from repro.sketch.ssparse import SSparseRecovery

DIM = 64
COUNT = 3
DELTA = 0.1
SEED = 71


def make_bank(seed: int = SEED) -> L0SamplerBank:
    return L0SamplerBank(DIM, COUNT, DELTA, random.Random(seed), mode="exact")


def signed_stream(
    seed: int = 5, length: int = 400
) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, DIM, size=length).astype(np.int64)
    deltas = rng.choice([-3, -2, -1, 1, 2, 3], size=length).astype(np.int64)
    return indices, deltas


# ----------------------------------------------------------------------
# Frozen legacy semantics (verbatim pre-fusion arithmetic).
# ----------------------------------------------------------------------


def legacy_bank_planes(
    bank: L0SamplerBank, indices: np.ndarray, deltas: np.ndarray
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """The planes an item-at-a-time fan-out would produce.

    Per item, per sampler: walk the nested subsampling levels with the
    sampler's own level hash, and for every surviving level update each
    row's cell with elementary Python-int arithmetic — the exact
    semantics of a grid of 1-sparse cells.
    """
    planes = []
    for sampler in bank._samplers:
        n_levels = sampler.n_levels
        n_rows = sampler._n_rows
        n_buckets = sampler._n_buckets
        weight = np.zeros((n_levels, n_rows, n_buckets), dtype=np.int64)
        dot = np.zeros((n_levels, n_rows, n_buckets), dtype=np.int64)
        fingerprint = np.zeros((n_levels, n_rows, n_buckets), dtype=np.uint64)
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            value = sampler._level_hash(index)
            deepest = 0
            while deepest + 1 < n_levels and value % (1 << (deepest + 1)) == 0:
                deepest += 1
            for level in range(deepest + 1):
                for row, hash_function in enumerate(sampler._row_hashes[level]):
                    bucket = hash_function(index)
                    weight[level, row, bucket] += delta
                    dot[level, row, bucket] += index * delta
                    base = int(sampler._r[level, row, bucket])
                    fingerprint[level, row, bucket] = (
                        int(fingerprint[level, row, bucket])
                        + delta * pow(base, index, PRIME_61)
                    ) % PRIME_61
        planes.append((weight, dot, fingerprint))
    return planes


def legacy_decode(recovery: SSparseRecovery) -> Optional[Dict[int, int]]:
    """Frozen copy of the pre-vectorization per-cell decode + peeling."""
    dim = recovery.dim
    weight = recovery._weight.reshape(-1)
    dot = recovery._dot.reshape(-1)
    fingerprint = recovery._fingerprint.reshape(-1)
    bases = recovery._r.reshape(-1)

    def classify(w: int, dt: int, fp: int, base: int):
        if w == 0 and dt == 0 and fp == 0:
            return ("zero", None, None)
        if w != 0 and dt % w == 0:
            index = dt // w
            if 0 <= index < dim:
                if (w * pow(base, index, PRIME_61)) % PRIME_61 == fp:
                    return ("one", index, w)
        return ("collision", None, None)

    recovered: Dict[int, int] = {}
    saw_collision = False
    for cell in range(len(weight)):
        state, index, value = classify(
            int(weight[cell]), int(dot[cell]),
            int(fingerprint[cell]), int(bases[cell]),
        )
        if state == "one":
            recovered[index] = value
        elif state == "collision":
            saw_collision = True
    if not saw_collision:
        return recovered

    w = weight.copy()
    dt = dot.copy()
    fp = fingerprint.copy()

    def rescan():
        for cell in range(len(w)):
            yield classify(
                int(w[cell]), int(dt[cell]), int(fp[cell]), int(bases[cell])
            )

    result = dict(recovered)
    frontier = list(recovered.items())
    while frontier:
        index, value = frontier.pop()
        for row, hash_function in enumerate(recovery._hashes):
            cell = row * recovery.n_buckets + hash_function(index)
            w[cell] -= value
            dt[cell] -= index * value
            fp[cell] = (
                int(fp[cell]) - value * pow(int(bases[cell]), index, PRIME_61)
            ) % PRIME_61
        for state, peeled_index, peeled_value in rescan():
            if state == "one" and peeled_index not in result:
                result[peeled_index] = peeled_value
                frontier.append((peeled_index, peeled_value))
    for state, peeled_index, peeled_value in rescan():
        if state == "collision":
            return None
        if state == "one" and peeled_index not in result:
            result[peeled_index] = peeled_value
    return result


def legacy_sample(sampler: L0Sampler) -> Optional[int]:
    """Frozen copy of the pre-memo deepest-first level scan."""
    for level in range(sampler.n_levels - 1, -1, -1):
        decoded = legacy_decode(sampler._recovery(level))
        if decoded is None:
            continue
        if decoded:
            return min(decoded, key=sampler._tiebreak)
    return None


def assert_matches_legacy(bank: L0SamplerBank, legacy_planes) -> None:
    bank._flush_updates()
    for sampler, (weight, dot, fingerprint) in zip(bank._samplers, legacy_planes):
        np.testing.assert_array_equal(sampler._weight, weight)
        np.testing.assert_array_equal(sampler._dot, dot)
        np.testing.assert_array_equal(sampler._fingerprint, fingerprint)


# ----------------------------------------------------------------------
# Fused bank ingest.
# ----------------------------------------------------------------------


class TestFusedBankIngest:
    def test_batch_ingest_matches_frozen_item_fanout(self):
        indices, deltas = signed_stream()
        legacy = legacy_bank_planes(make_bank(), indices, deltas)
        bank = make_bank()
        bank.update_batch(indices, deltas)
        assert_matches_legacy(bank, legacy)
        scalar = make_bank()
        for index, delta in zip(indices.tolist(), deltas.tolist()):
            scalar.update(index, delta)
        assert bank.sample_all() == scalar.sample_all()

    @pytest.mark.parametrize("chunks", (1, 3, 7, 59))
    def test_any_chunking_is_bit_identical(self, chunks):
        indices, deltas = signed_stream(seed=11)
        legacy = legacy_bank_planes(make_bank(), indices, deltas)
        bank = make_bank()
        for part_i, part_d in zip(
            np.array_split(indices, chunks), np.array_split(deltas, chunks)
        ):
            bank.update_batch(part_i, part_d)
        assert_matches_legacy(bank, legacy)

    def test_prenetted_and_scalar_interleaving(self):
        indices, deltas = signed_stream(seed=13)
        legacy = legacy_bank_planes(make_bank(), indices, deltas)
        bank = make_bank()
        # scalar head, netted middle, raw batch tail — all interleaved
        # with the deferred buffer.
        for index, delta in zip(indices[:50].tolist(), deltas[:50].tolist()):
            bank.update(index, delta)
        unique, inverse = np.unique(indices[50:200], return_inverse=True)
        net = np.zeros(len(unique), dtype=np.int64)
        np.add.at(net, inverse, deltas[50:200])
        live = net != 0
        bank.update_batch(unique[live], net[live], netted=True)
        bank.update_batch(indices[200:], deltas[200:])
        assert_matches_legacy(bank, legacy)

    def test_cancelling_updates_leave_empty_bank(self):
        indices, deltas = signed_stream(seed=17)
        bank = make_bank()
        bank.update_batch(indices, deltas)
        bank.update_batch(indices, -deltas)
        assert bank.sample_all() == [None] * COUNT
        for sampler in bank._samplers:
            assert not sampler._weight.any()
            assert not sampler._fingerprint.any()

    def test_out_of_range_raises_before_buffering(self):
        bank = make_bank()
        with pytest.raises(ValueError, match="out of range"):
            bank.update_batch(
                np.array([0, DIM], dtype=np.int64),
                np.array([1, 1], dtype=np.int64),
            )
        assert not bank._pending


class TestDeferredConsolidation:
    def test_reads_flush_pending(self):
        indices, deltas = signed_stream(seed=19)
        for read in (
            lambda bank: bank.sample_all(),
            lambda bank: bank.space_words(),
            lambda bank: bank.merge(make_bank()),
            lambda bank: pickle.dumps(bank),
            lambda bank: copy.deepcopy(bank),
        ):
            bank = make_bank()
            bank.update_batch(indices, deltas)
            assert bank._pending
            read(bank)
            assert not bank._pending

    def test_merge_matches_single_pass(self):
        indices, deltas = signed_stream(seed=23)
        legacy = legacy_bank_planes(make_bank(), indices, deltas)
        left, right = make_bank(), make_bank()
        left.update_batch(indices[:170], deltas[:170])
        right.update_batch(indices[170:], deltas[170:])
        merged = left.merge(right)
        assert_matches_legacy(merged, legacy)

    @pytest.mark.parametrize(
        "round_trip",
        (copy.deepcopy, lambda bank: pickle.loads(pickle.dumps(bank))),
        ids=("deepcopy", "pickle"),
    )
    def test_copies_preserve_plane_aliasing(self, round_trip):
        indices, deltas = signed_stream(seed=29)
        legacy = legacy_bank_planes(make_bank(), indices, deltas)
        bank = make_bank()
        bank.update_batch(indices[:100], deltas[:100])
        dup = round_trip(bank)
        assert dup is not bank
        for sampler, original in zip(dup._samplers, bank._samplers):
            assert sampler is not original
            # every sampler's planes must still be views into the
            # copy's own stacked bank accumulators
            assert np.shares_memory(sampler._weight, dup._bank_weight)
            assert np.shares_memory(sampler._fingerprint, dup._bank_fingerprint)
            assert not np.shares_memory(sampler._weight, bank._bank_weight)
        # the copy keeps ingesting through both paths and stays exact
        dup.update_batch(indices[100:300], deltas[100:300])
        for index, delta in zip(indices[300:].tolist(), deltas[300:].tolist()):
            dup.update(index, delta)
        assert_matches_legacy(dup, legacy)


# ----------------------------------------------------------------------
# Vectorized, memoized decode.
# ----------------------------------------------------------------------


def make_recovery(seed: int, s: int = 4) -> SSparseRecovery:
    return SSparseRecovery(DIM, s, 0.05, random.Random(seed))


class TestVectorizedDecode:
    @pytest.mark.parametrize("support", (0, 1, 3, 4, 9, 30))
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_matches_frozen_cell_loop(self, support, seed):
        rng = np.random.default_rng(100 * support + seed)
        recovery = make_recovery(seed)
        indices = rng.choice(DIM, size=support, replace=False).astype(np.int64)
        deltas = rng.choice([-5, -1, 1, 2, 7], size=support).astype(np.int64)
        recovery.update_batch(indices, deltas)
        expected = legacy_decode(recovery)
        actual = recovery.decode()
        if expected is None:
            assert actual is None
        else:
            # same mapping AND same insertion order (callers iterate)
            assert list(actual.items()) == list(expected.items())

    def test_negative_weights_and_cancellation(self):
        recovery = make_recovery(9)
        recovery.update(3, -7)
        recovery.update(60, 2)
        recovery.update(60, -2)  # cancels back to zero
        assert list(recovery.decode().items()) == list(
            legacy_decode(recovery).items()
        )
        assert recovery.decode() == {3: -7}

    def test_memo_serves_until_dirtied(self):
        recovery = make_recovery(4)
        recovery.update_batch(
            np.array([5, 9], dtype=np.int64), np.array([1, 4], dtype=np.int64)
        )
        first = recovery.decode()
        assert recovery.decode() == first
        # callers own their dict: mutating it must not poison the memo
        first[99] = 99
        assert 99 not in recovery.decode()
        # a mutation invalidates: cancel everything, decode goes empty
        recovery.update_batch(
            np.array([5, 9], dtype=np.int64),
            np.array([-1, -4], dtype=np.int64),
        )
        assert recovery.decode() == {}

    def test_merge_invalidates_memo(self):
        left, right = make_recovery(6), make_recovery(6)
        left.update(10, 3)
        right.update(11, 5)
        assert left.decode() == {10: 3}
        left.merge(right)
        assert left.decode() == {10: 3, 11: 5}


class TestMemoizedSample:
    def test_matches_frozen_scan_and_serves_memo(self):
        indices, deltas = signed_stream(seed=31, length=120)
        sampler = L0Sampler(DIM, DELTA, random.Random(3))
        sampler.update_batch(indices, deltas)
        expected = legacy_sample(sampler)
        assert sampler.sample() == expected
        assert sampler.sample() == expected  # memo path

    def test_update_and_bank_kernel_invalidate(self):
        indices, deltas = signed_stream(seed=37, length=80)
        bank = make_bank()
        bank.update_batch(indices, deltas)
        before = bank.sample_all()
        assert any(sample is not None for sample in before)
        # cancelling through the fused kernel must drop every memo
        bank.update_batch(indices, -deltas)
        assert bank.sample_all() == [None] * COUNT
        # ...and the scalar path must too
        sampler = L0Sampler(DIM, DELTA, random.Random(8))
        sampler.update(7, 1)
        assert sampler.sample() == 7
        sampler.update(7, -1)
        assert sampler.sample() is None
