"""Bit-identity of the fused guess ladder against the legacy wrapper.

Star Detection's batch path hoists the per-guess work — one shared
:class:`~repro.sketch.exact.DegreeCounter`, one sorted grouping, one
threshold-LUT crossing scan (insertion-only), one netting pass
(insertion-deletion) — across the whole ``O(log_{1+ε} n)`` ladder.  The
contract is that none of this hoisting is observable: the resulting
state is bit-identical to the pre-fusion wrapper, which ran one fully
independent algorithm instance per degree guess and fed every update to
each of them one item at a time.

The legacy wrapper is embedded here as the frozen reference
(:class:`_LegacyLadder`): it reproduces the original seeding discipline
exactly — one ``random.Random(seed)`` root, ``getrandbits(64)`` per
guess in ascending ladder order — so every per-run RNG trajectory
coincides with the fused wrapper's and any state divergence is a real
equivalence break, not seed skew.
"""

import random

import numpy as np
import pytest

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.star_detection import StarDetection, degree_guesses
from repro.engine import FanoutRunner, ShardedRunner
from repro.engine.sharded import fork_available
from repro.streams.adapters import bipartite_double_cover_columnar
from repro.streams.edge import Edge, StreamItem
from repro.streams.persist import dump_stream

N = 512
ALPHA = 2
EPS = 1.0
SEED = 29


class _LegacyLadder:
    """The pre-fusion Star Detection: independent per-guess instances.

    Every rung is a standalone algorithm — Algorithm 2 rungs own their
    own degree counter (``own_degrees=True``) and every stream item is
    fed to every rung through the per-item path.  This is the exact
    execution the fused wrapper replaced; its seeding (root RNG,
    64 bits per guess in ladder order) matches ``StarDetection.__init__``.
    """

    def __init__(self, n, alpha, eps, seed, model="insertion-only", scale=1.0):
        self.n_vertices = n
        self.model = model
        self.guesses = degree_guesses(n, eps)
        root = random.Random(seed)
        self._runs = []
        for guess in self.guesses:
            run_seed = root.getrandbits(64)
            if model == "insertion-only":
                algorithm = InsertionOnlyFEwW(n, guess, alpha, seed=run_seed)
            else:
                algorithm = InsertionDeletionFEwW(
                    n, n, guess, alpha, seed=run_seed, scale=scale
                )
            self._runs.append((guess, algorithm))

    def process_cover(self, a, b, sign=None):
        signs = [1] * len(a) if sign is None else [int(s) for s in sign]
        for aa, bb, ss in zip(a.tolist(), b.tolist(), signs):
            item = StreamItem(Edge(aa, bb), ss)
            for _, algorithm in self._runs:
                algorithm.process_item(item)

    def result(self):
        best = None
        for guess, algorithm in self._runs:
            neighbourhood = algorithm.finalize()
            if neighbourhood is None:
                continue
            if best is None or neighbourhood.size > best[0].size:
                best = (neighbourhood, guess)
        return best


def _ladder_state(runs):
    """Every rung's full reservoir-sampling state, in ladder order."""
    out = []
    for guess, algorithm in runs:
        for run in algorithm.runs:
            out.append(
                (
                    guess,
                    run.d1,
                    run._candidates_seen,
                    dict(run._reservoir),
                    list(run._resident),
                )
            )
    return out


def _insertion_stream(seed=7, n=N, size=6000):
    """Simple undirected edges: no self-loops, no duplicate pairs."""
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, size=size)
    v = rng.integers(0, n, size=size)
    keep = u != v
    u, v = u[keep], v[keep]
    key = np.minimum(u, v) * n + np.maximum(u, v)
    _, first = np.unique(key, return_index=True)
    first.sort()
    return u[first], v[first]


@pytest.fixture(scope="module")
def cover():
    u, v = _insertion_stream()
    return bipartite_double_cover_columnar(u, v, N, None)


class TestInsertionOnlyLadder:
    @pytest.mark.parametrize("chunk", (1, 37, 100_000))
    def test_fused_batch_matches_legacy_per_item(self, cover, chunk):
        fused = StarDetection(N, ALPHA, eps=EPS, seed=SEED)
        legacy = _LegacyLadder(N, ALPHA, EPS, SEED)
        for lo in range(0, len(cover.a), chunk):
            fused.process_batch(
                cover.a[lo : lo + chunk],
                cover.b[lo : lo + chunk],
                cover.sign[lo : lo + chunk],
            )
        legacy.process_cover(cover.a, cover.b, cover.sign)
        assert _ladder_state(fused._runs) == _ladder_state(legacy._runs)
        # The shared ladder counter must equal every legacy rung's own
        # counter (they all observed the identical stream).
        for _, algorithm in legacy._runs:
            assert np.array_equal(
                fused._degrees._degrees, algorithm._degrees._degrees
            )
        ours, theirs = fused.result(), legacy.result()
        assert theirs is not None
        assert (ours.vertex, ours.winning_guess, sorted(ours.neighbourhood.witnesses)) == (
            theirs[0].vertex,
            theirs[1],
            sorted(theirs[0].witnesses),
        )

    def test_item_path_matches_batch_path(self, cover):
        by_item = StarDetection(N, ALPHA, eps=EPS, seed=SEED)
        for aa, bb in zip(cover.a.tolist(), cover.b.tolist()):
            by_item.process_item(StreamItem(Edge(aa, bb), 1))
        by_batch = StarDetection(N, ALPHA, eps=EPS, seed=SEED)
        by_batch.process_batch(cover.a, cover.b, cover.sign)
        assert _ladder_state(by_item._runs) == _ladder_state(by_batch._runs)
        assert np.array_equal(
            by_item._degrees._degrees, by_batch._degrees._degrees
        )

    def test_split_merge_degree_table_matches_single_pass(self, cover):
        shards = StarDetection(N, ALPHA, eps=EPS, seed=SEED).split(2)
        mask = (cover.a % 2) == 0
        shards[0].process_batch(cover.a[mask], cover.b[mask], cover.sign[mask])
        shards[1].process_batch(
            cover.a[~mask], cover.b[~mask], cover.sign[~mask]
        )
        merged = shards[0].merge(shards[1])
        single = StarDetection(N, ALPHA, eps=EPS, seed=SEED)
        single.process_batch(cover.a, cover.b, cover.sign)
        assert np.array_equal(
            merged._degrees._degrees, single._degrees._degrees
        )
        assert merged._updates_seen == single._updates_seen


class TestInsertionDeletionLadder:
    @pytest.mark.parametrize("chunk", (1, 97, 100_000))
    def test_netting_hoist_matches_legacy_per_item(self, chunk):
        u, v = _insertion_stream(seed=11, n=64, size=800)
        cover = bipartite_double_cover_columnar(u, v, 64, None)
        fused = StarDetection(
            64, 4, eps=2.0, model="insertion-deletion", seed=5, scale=0.02
        )
        legacy = _LegacyLadder(
            64, 4, 2.0, 5, model="insertion-deletion", scale=0.02
        )
        for lo in range(0, len(cover.a), chunk):
            fused.process_batch(
                cover.a[lo : lo + chunk],
                cover.b[lo : lo + chunk],
                cover.sign[lo : lo + chunk],
            )
        legacy.process_cover(cover.a, cover.b, cover.sign)
        for (g1, mine), (g2, theirs) in zip(fused._runs, legacy._runs):
            assert g1 == g2
            assert mine._updates_seen == theirs._updates_seen
            # The banks' query draws are deterministic functions of
            # their (seeded) state; one draw each must coincide.
            if mine._edge_bank is not None:
                assert (
                    mine._edge_bank.sample_all()
                    == theirs._edge_bank.sample_all()
                )
            for vertex, bank in mine._vertex_banks.items():
                assert (
                    bank.sample_all()
                    == theirs._vertex_banks[vertex].sample_all()
                )


needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@needs_fork
class TestShardedLadder:
    """The fused wrapper through the sharded engine: the hoisted ladder
    must survive vertex-routed splitting and the tree-reduction merge
    with its shared degree table exact."""

    @pytest.fixture(scope="class")
    def star_stream(self, tmp_path_factory):
        rng = np.random.default_rng(3)
        hub = 0
        spokes = np.unique(rng.integers(1, N, size=200))
        nu = rng.integers(1, N, size=3000)
        nv = rng.integers(1, N, size=3000)
        keep = nu != nv
        nu, nv = nu[keep], nv[keep]
        key = np.minimum(nu, nv) * N + np.maximum(nu, nv)
        _, first = np.unique(key, return_index=True)
        first.sort()
        u = np.concatenate([np.full(len(spokes), hub), nu[first]])
        v = np.concatenate([spokes, nv[first]])
        cover = bipartite_double_cover_columnar(u, v, N, None)
        path = tmp_path_factory.mktemp("ladder") / "cover.npz"
        dump_stream(cover, path, format="v2")
        return cover, str(path)

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_degree_table_and_winner_match_single_core(
        self, star_stream, workers
    ):
        stream, path = star_stream
        single = FanoutRunner(
            {"star": StarDetection(N, ALPHA, eps=EPS, seed=SEED)}
        )
        single.run(stream)
        sharded = ShardedRunner(
            {"star": StarDetection(N, ALPHA, eps=EPS, seed=SEED)},
            n_workers=workers,
        )
        sharded.run(path)
        assert np.array_equal(
            single["star"]._degrees._degrees,
            sharded["star"]._degrees._degrees,
        )
        assert single["star"]._updates_seen == sharded["star"]._updates_seen
        ours, theirs = single["star"].result(), sharded["star"].result()
        # Vertex 0 is a planted hub in the double cover; both paths
        # must find a star centred there.
        assert ours.vertex == theirs.vertex
