"""Probabilistic guarantees tested with principled statistics.

These tests restate the key randomised claims using the helpers in
:mod:`repro.theory.stats` — chi-square for uniformity, binomial tails
for success probabilities — instead of hand-picked tolerances, at a
significance level of 1e-4 (false-failure once per ~10⁴ CI runs).
"""

import random
from collections import Counter

from repro.core.deg_res_sampling import DegResSampling
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.sketch.l0 import L0Sampler
from repro.streams.edge import Edge
from repro.streams.generators import GeneratorConfig, planted_star_graph
from repro.streams.stream import stream_from_edges
from repro.theory.bounds import deg_res_success_lower_bound
from repro.theory.stats import binomial_tail_bound, chi_square_uniformity_pvalue

SIGNIFICANCE = 1e-4


class TestReservoirUniformityChiSquare:
    def test_final_reservoir_uniform_over_candidates(self):
        """Reservoir invariant, chi-square version: with s=1, the
        resident is uniform over the 10 candidates."""
        n_candidates = 10
        edges = []
        for a in range(n_candidates):
            edges.extend(Edge(a, a * 10 + j) for j in range(2))
        stream = stream_from_edges(edges, 20, 200)
        counts = Counter()
        for seed in range(2000):
            algorithm = DegResSampling(20, 2, 1, 1, random.Random(seed))
            algorithm.process(stream)
            (candidate,) = algorithm.candidates()
            counts[candidate.vertex] += 1
        histogram = [counts[a] for a in range(n_candidates)]
        assert chi_square_uniformity_pvalue(histogram) > SIGNIFICANCE


class TestL0UniformityChiSquare:
    def test_sample_uniform_over_support(self):
        support = list(range(0, 48, 6))  # 8 elements
        counts = Counter()
        master = random.Random(1)
        for _ in range(800):
            sampler = L0Sampler(64, 0.02, random.Random(master.getrandbits(64)))
            for index in support:
                sampler.update(index, 1)
            counts[sampler.sample()] += 1
        histogram = [counts[index] for index in support]
        assert sum(histogram) == 800  # no failures at this delta, in-range
        assert chi_square_uniformity_pvalue(histogram) > SIGNIFICANCE


class TestSuccessProbabilityBinomial:
    def test_theorem32_success_rate_not_refuted(self):
        """H0: success prob >= 1 - 1/n.  The observed failure count must
        not refute H0 at the 1e-4 level."""
        n = 64
        config = GeneratorConfig(n=n, m=256, seed=2)
        stream = planted_star_graph(config, star_degree=32, background_degree=4)
        trials, successes = 200, 0
        for seed in range(200):
            algorithm = InsertionOnlyFEwW(n, 32, 2, seed=seed).process(stream)
            successes += algorithm.successful
        assert binomial_tail_bound(successes, trials, 1 - 1 / n) > SIGNIFICANCE

    def test_lemma31_bound_not_refuted(self):
        """H0: success prob >= Lemma 3.1's closed form."""
        n1, n2, s, d1, d2 = 20, 4, 5, 2, 3
        edges = []
        for a in range(n1):
            degree = d1 + d2 - 1 if a < n2 else d1
            edges.extend(Edge(a, a * 10 + j) for j in range(degree))
        stream = stream_from_edges(edges, 30, 300)
        trials, successes = 400, 0
        for seed in range(trials):
            algorithm = DegResSampling(30, d1, d2, s, random.Random(seed))
            algorithm.process(stream)
            successes += algorithm.successful
        claimed = deg_res_success_lower_bound(n1, n2, s)
        assert binomial_tail_bound(successes, trials, claimed) > SIGNIFICANCE
