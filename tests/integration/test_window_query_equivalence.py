"""Frozen-legacy equivalence for the cached window query path.

``WindowedProcessor.query()`` got a fast path this PR: sliding states
carry a suffix-merge cache (:class:`SuffixCacheList`) so repeated
probes re-clone one memoized fold instead of re-merging every retained
bucket, ``clone_summary`` prefers a structure-provided ``clone()`` over
``copy.deepcopy``, and the decay policy memoizes closed-bucket records
and the tail value.

These tests pin the cached path against *frozen copies of the legacy
query semantics* embedded below — a plain ``copy.deepcopy`` left-fold
with no caches anywhere — not against the current policy code, so a
cache that leaks state between probes (or between a probe and the
final answer) cannot pass by being compared to itself.

Coverage per the acceptance criterion: sliding and decay policies, the
probe-under-load path at several ``probe_every`` intervals (manual
chunk loops and the real ``Pipeline.run(probe_every=...)`` hook, which
is fanout-only by design), and post-run merged-wrapper queries at 1, 2
and 4 :class:`ShardedRunner` workers including mmap file sources —
over both a deepcopy-cloned inner (FullStorage) and a ``clone()``-fast-
path inner (Algorithm 2).
"""

import copy
import functools
import math

import numpy as np
import pytest

from repro.baselines import FullStorage
from repro.core.windowed import Alg2WindowFactory
from repro.engine import (
    DecayPolicy,
    FanoutRunner,
    ShardedRunner,
    SlidingPolicy,
    WindowedProcessor,
)
from repro.engine.windows import Bucket, DecayAnswer, SlidingWindowAnswer
from repro.streams.columnar import ColumnarEdgeStream

WORKERS = (1, 2, 4)
CHUNK = 173
WINDOW = 700
RATIO = 0.25
PROBE_INTERVALS = (97, 613)


# ----------------------------------------------------------------------
# Frozen legacy query semantics (pre-cache deepcopy left-folds).
# ----------------------------------------------------------------------


def _legacy_partial(wrapper):
    if wrapper._updates <= 0:
        return None
    start = wrapper._bucket_index * wrapper.policy.bucket
    return Bucket(
        wrapper._bucket_index,
        start,
        start + wrapper._updates,
        copy.deepcopy(wrapper._current),
    )


def legacy_sliding_query(wrapper):
    """Frozen pre-cache sliding query: backward span scan, then a plain
    ``copy.deepcopy`` left-fold over the suffix — no suffix cache, no
    ``clone()`` fast path.  Never mutates the wrapper (all folds run on
    deep copies), so it can shadow a live probed wrapper."""
    policy = wrapper.policy
    state = list(wrapper._state)
    partial = _legacy_partial(wrapper)
    n_state = len(state)
    if n_state == 0 and partial is None:
        return None
    covered = partial.count if partial is not None else 0
    start = n_state
    if covered < policy.window:
        while start > 0:
            start -= 1
            covered += state[start].count
            if covered >= policy.window:
                break
    merged = None
    if start < n_state:
        merged = copy.deepcopy(state[start].instance)
        for bucket in state[start + 1 :]:
            merged = merged.merge(copy.deepcopy(bucket.instance))
    if merged is None:
        merged = copy.deepcopy(partial.instance)
    elif partial is not None:
        merged = merged.merge(copy.deepcopy(partial.instance))
    return SlidingWindowAnswer(
        window=policy.window,
        bucket=policy.bucket,
        start_update=state[start].start if start < n_state else partial.start,
        end_update=partial.end if partial is not None else state[-1].end,
        n_buckets=(n_state - start) + (1 if partial is not None else 0),
        processor=merged,
        value=merged.finalize(),
    )


def legacy_decay_query(wrapper):
    """Frozen pre-memo decay query: the in-progress bucket rides along
    as the newest recent bucket, every record re-finalized from a deep
    copy — no record memo, no tail-value memo."""
    state = wrapper._state
    buckets = list(state["recent"])
    partial = _legacy_partial(wrapper)
    if partial is not None:
        buckets.append(partial)
    recent = [
        wrapper._make_record(
            bucket.index, bucket.start, bucket.end,
            copy.deepcopy(bucket.instance).finalize(),
        )
        for bucket in buckets
    ]
    tail = state["tail"]
    return DecayAnswer(
        recent=recent,
        tail_processor=tail,
        tail_value=None if tail is None else copy.deepcopy(tail).finalize(),
        tail_start_update=state["tail_start"],
        tail_end_update=state["tail_end"],
    )


# ----------------------------------------------------------------------
# Fixtures and fingerprints.
# ----------------------------------------------------------------------


def full_storage_factory(n, m, seed):
    return FullStorage(n, m)


@pytest.fixture(scope="module")
def monitoring_stream():
    rng = np.random.default_rng(23)
    a = rng.integers(0, 24, size=4000)
    b = np.arange(4000, dtype=np.int64)
    return ColumnarEdgeStream(a, b, n=24, m=4000, validate=False)


def sliding_wrapper():
    return WindowedProcessor(
        functools.partial(full_storage_factory, 24, 4000),
        SlidingPolicy(WINDOW, bucket_ratio=RATIO),
        seed=9,
    )


def decay_wrapper():
    return WindowedProcessor(
        functools.partial(full_storage_factory, 24, 4000),
        DecayPolicy(bucket_size=300, keep=3),
        seed=4,
    )


def alg2_sliding_wrapper():
    return WindowedProcessor(
        Alg2WindowFactory(24, 200, 2),
        SlidingPolicy(WINDOW, bucket_ratio=RATIO),
        seed=6,
    )


def degrees_of(store):
    return {v: len(ws) for v, ws in store._neighbours.items() if ws}


def neighbourhood_fp(value):
    return None if value is None else (value.vertex, value.witnesses)


def sliding_fp(answer, inner="storage"):
    if answer is None:
        return None
    value = (
        degrees_of(answer.processor)
        if inner == "storage"
        else neighbourhood_fp(answer.value)
    )
    return (
        answer.window,
        answer.bucket,
        answer.start_update,
        answer.end_update,
        answer.n_buckets,
        value,
    )


def decay_fp(answer):
    return (
        [
            (r.window_index, r.start_update, r.end_update, degrees_of(r.value))
            for r in answer.recent
        ],
        None if answer.tail_processor is None else degrees_of(answer.tail_processor),
        answer.tail_start_update,
        answer.tail_end_update,
    )


def probe_positions(wrapper, stream, probe_every, on_probe):
    """Drive the wrapper chunk by chunk, probing exactly where
    ``Pipeline._run_with_probes`` would (quantized to chunk ends)."""
    position, next_probe = 0, probe_every
    for a, b, sign in stream.chunks(CHUNK):
        wrapper.process_batch(a, b, sign)
        position += len(a)
        if position >= next_probe:
            on_probe(position)
            while next_probe <= position:
                next_probe += probe_every


# ----------------------------------------------------------------------
# Probe-under-load: cached query vs frozen fold at every probe point.
# ----------------------------------------------------------------------


class TestProbeUnderLoad:
    @pytest.mark.parametrize("probe_every", PROBE_INTERVALS)
    def test_sliding_probes_match_frozen_fold(
        self, monitoring_stream, probe_every
    ):
        wrapper = sliding_wrapper()
        probed = []

        def check(position):
            first = wrapper.query()
            again = wrapper.query()  # served from the suffix cache
            expected = legacy_sliding_query(wrapper)
            assert sliding_fp(first) == sliding_fp(expected)
            assert sliding_fp(again) == sliding_fp(expected)
            assert first.end_update == position
            probed.append(position)

        probe_positions(wrapper, monitoring_stream, probe_every, check)
        assert len(probed) >= 5
        # probing never perturbs the final answer
        clean = sliding_wrapper().process(monitoring_stream)
        assert sliding_fp(wrapper.finalize()) == sliding_fp(clean.finalize())

    @pytest.mark.parametrize("probe_every", PROBE_INTERVALS)
    def test_decay_probes_match_frozen_fold(
        self, monitoring_stream, probe_every
    ):
        wrapper = decay_wrapper()

        def check(position):
            assert decay_fp(wrapper.query()) == decay_fp(
                legacy_decay_query(wrapper)
            )
            assert decay_fp(wrapper.query()) == decay_fp(
                legacy_decay_query(wrapper)
            )

        probe_positions(wrapper, monitoring_stream, probe_every, check)
        clean = decay_wrapper().process(monitoring_stream)
        assert decay_fp(wrapper.finalize()) == decay_fp(clean.finalize())

    def test_clone_fast_path_matches_frozen_deepcopy_fold(self):
        """Algorithm 2 provides clone(); the cached query must agree
        with the all-deepcopy legacy fold at every probe."""
        rng = np.random.default_rng(31)
        a = rng.integers(0, 24, size=2400)
        a[1600:] = np.where(rng.random(800) < 0.4, 7, a[1600:])
        b = np.arange(2400, dtype=np.int64)
        stream = ColumnarEdgeStream(a, b, n=24, m=2400, validate=False)
        wrapper = alg2_sliding_wrapper()

        def check(position):
            assert sliding_fp(wrapper.query(), inner="alg2") == sliding_fp(
                legacy_sliding_query(wrapper), inner="alg2"
            )

        probe_positions(wrapper, stream, 311, check)

    def test_pipeline_probe_hook_matches_frozen_fold(self, monitoring_stream):
        """The real ``Pipeline.run(probe_every=...)`` path (fanout-only
        by design): every recorded probe answer must equal the frozen
        fold of a shadow wrapper fed the same quantized chunks."""
        from repro.pipeline import Pipeline

        probe_every, chunk_size = 512, 256
        result = (
            Pipeline.builder()
            .memory(monitoring_stream)
            .chunk_size(chunk_size)
            .processor("insertion-only", label="alg2", n=24, d=8, alpha=2)
            .window("sliding", 500, seed=1, bucket_ratio=0.25)
            .build()
            .run(probe_every=probe_every)
        )
        assert result.probes
        shadow = WindowedProcessor(
            Alg2WindowFactory(24, 8, 2),
            SlidingPolicy(500, bucket_ratio=0.25),
            seed=1,
        )
        expected = {}
        position = 0
        for a, b, sign in monitoring_stream.chunks(chunk_size):
            shadow.process_batch(a, b, sign)
            position += len(a)
            if position % probe_every == 0:
                expected[position] = sliding_fp(
                    legacy_sliding_query(shadow), inner="alg2"
                )
        for probe in result.probes:
            assert probe.position in expected
            assert (
                sliding_fp(probe.answers["alg2"], inner="alg2")
                == expected[probe.position]
            )


# ----------------------------------------------------------------------
# Sharded workers: merged-wrapper queries vs the frozen fold.
# ----------------------------------------------------------------------


class TestShardedQueryEquivalence:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_sliding_merged_query_matches_frozen_fold(
        self, monitoring_stream, workers
    ):
        runner = ShardedRunner(
            {"win": sliding_wrapper()}, n_workers=workers, chunk_size=CHUNK
        )
        answer = runner.run(monitoring_stream)["win"]
        merged = runner["win"]  # the post-run merged wrapper
        cached = merged.query()
        assert sliding_fp(cached) == sliding_fp(legacy_sliding_query(merged))
        # the run's own answer came through the same cached fold
        assert sliding_fp(answer) == sliding_fp(cached)

    @pytest.mark.parametrize("workers", WORKERS)
    def test_decay_merged_query_matches_frozen_fold(
        self, monitoring_stream, workers
    ):
        runner = ShardedRunner(
            {"win": decay_wrapper()}, n_workers=workers, chunk_size=CHUNK
        )
        answer = runner.run(monitoring_stream)["win"]
        merged = runner["win"]
        assert decay_fp(merged.query()) == decay_fp(legacy_decay_query(merged))
        assert decay_fp(answer) == decay_fp(merged.query())

    @pytest.mark.parametrize("workers", WORKERS)
    def test_mmap_file_source_matches_frozen_fold(
        self, monitoring_stream, tmp_path_factory, workers
    ):
        from repro.streams.persist import dump_stream

        path = tmp_path_factory.mktemp("probes") / "monitoring.npz"
        dump_stream(monitoring_stream, path, format="v2")
        runner = ShardedRunner(
            {"win": sliding_wrapper()},
            n_workers=workers,
            chunk_size=CHUNK,
            mmap=True,
        )
        answer = runner.run(str(path))["win"]
        merged = runner["win"]
        assert sliding_fp(merged.query()) == sliding_fp(
            legacy_sliding_query(merged)
        )
        assert WINDOW <= answer.span <= math.ceil((1 + RATIO) * WINDOW)

    def test_worker_counts_agree_with_each_other(self, monitoring_stream):
        fingerprints = []
        for workers in WORKERS:
            runner = ShardedRunner(
                {"win": sliding_wrapper()},
                n_workers=workers,
                chunk_size=CHUNK,
            )
            runner.run(monitoring_stream)
            fingerprints.append(sliding_fp(runner["win"].query()))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]


# ----------------------------------------------------------------------
# Cache hygiene: copies and checkpoints never carry derived state.
# ----------------------------------------------------------------------


class TestQueryCacheHygiene:
    def test_pickle_and_deepcopy_drop_caches_but_not_answers(
        self, monitoring_stream
    ):
        import pickle

        wrapper = sliding_wrapper()
        for a, b, sign in monitoring_stream.chunks(CHUNK):
            wrapper.process_batch(a, b, sign)
        baseline = sliding_fp(wrapper.query())  # populates the cache
        assert wrapper._state.suffix
        for round_trip in (
            copy.deepcopy,
            lambda w: pickle.loads(pickle.dumps(w)),
        ):
            dup = round_trip(wrapper)
            assert not dup._state.suffix  # pure derived data, dropped
            assert sliding_fp(dup.query()) == baseline

        decay = decay_wrapper()
        for a, b, sign in monitoring_stream.chunks(CHUNK):
            decay.process_batch(a, b, sign)
        expected = decay_fp(decay.query())
        assert decay._state["_records"]
        dup = pickle.loads(pickle.dumps(decay))
        assert "_records" not in dup._state
        assert "_tail_record" not in dup._state
        assert decay_fp(dup.query()) == expected
