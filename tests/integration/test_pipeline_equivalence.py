"""The PR's acceptance criterion: a JSON job spec reproduces the
pre-redesign CLI ``run`` path bit for bit.

``LegacyRun`` below is a frozen copy of the engine glue the CLI's
``command_run`` used to hand-assemble before the Pipeline API existed
(build the algorithm, wrap it in a ``WindowedProcessor`` when asked,
drive a ``FanoutRunner`` — or split/route/merge through a
``ShardedRunner`` for ``--workers N``).  For every window policy
(tumbling / sliding / decay) and every backend (single-core and
sharded at 1 / 2 / 4 workers), ``Pipeline.from_dict(spec).run()`` —
the spec being plain JSON-compatible data, exactly what a user would
put in ``job.json`` — must produce the identical answer, including for
the turnstile algorithm and for mmap file sources.  ``to_dict`` →
``from_dict`` round-trips are asserted on every spec used.
"""

import json

import pytest

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.windowed import Alg2WindowFactory, Alg3WindowFactory
from repro.engine import (
    DecayPolicy,
    FanoutRunner,
    ShardedRunner,
    SlidingPolicy,
    TumblingPolicy,
    WindowedProcessor,
)
from repro.pipeline import Pipeline
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.generators import (
    GeneratorConfig,
    deletion_churn_stream,
    planted_star_graph,
    zipf_frequency_stream,
)
from repro.streams.persist import dump_stream

WORKERS = (1, 2, 4)
CHUNK = 173
SEED = 7

# Workload dimensions (registry params == the old CLI derivations).
N, M, D, ALPHA = 96, 768, 24, 2
WINDOW = 256


def star_stream():
    return ColumnarEdgeStream.from_edge_stream(
        planted_star_graph(
            GeneratorConfig(n=N, m=M, seed=SEED),
            star_degree=D,
            background_degree=min(5, D - 1),
        )
    )


def zipf_stream():
    return ColumnarEdgeStream.from_edge_stream(
        zipf_frequency_stream(
            GeneratorConfig(n=N, m=M, seed=SEED), n_records=min(M, 8 * D)
        )
    )


def churn_stream():
    return ColumnarEdgeStream.from_edge_stream(
        deletion_churn_stream(
            GeneratorConfig(n=N, m=M, seed=SEED),
            star_degree=D,
            churn_edges=4 * D,
        )
    )


# ----------------------------------------------------------------------
# The pre-redesign command_run glue, frozen.
# ----------------------------------------------------------------------


class LegacyRun:
    """What ``repro.cli.command_run`` assembled before the Pipeline API."""

    @staticmethod
    def make_policy(policy, window, bucket_ratio=0.25, decay_keep=4):
        if policy == "tumbling":
            return TumblingPolicy(window)
        if policy == "sliding":
            return SlidingPolicy(window, bucket_ratio=bucket_ratio)
        return DecayPolicy(window, keep=decay_keep)

    @staticmethod
    def make_algorithm(algorithm, window_policy=None, window=WINDOW,
                       scale=0.25, seed=SEED):
        if algorithm == "insertion-only":
            processor = InsertionOnlyFEwW(N, D, ALPHA, seed=seed)
            factory = Alg2WindowFactory(N, D, ALPHA)
        else:
            processor = InsertionDeletionFEwW(
                N, M, D, ALPHA, seed=seed, scale=scale
            )
            factory = Alg3WindowFactory(N, M, D, ALPHA, scale)
        if window_policy is not None:
            processor = WindowedProcessor(
                factory, LegacyRun.make_policy(window_policy, window),
                seed=seed,
            )
        return processor

    @staticmethod
    def run(source, algorithm, *, window_policy=None, workers=1, mmap=False,
            scale=0.25, seed=SEED):
        processor = LegacyRun.make_algorithm(
            algorithm, window_policy, scale=scale, seed=seed
        )
        if workers > 1:
            sharded = ShardedRunner(
                {"algorithm": processor},
                n_workers=workers,
                chunk_size=CHUNK,
                mmap=mmap,
                readahead=False,
            )
            answer = sharded.run(source)["algorithm"]
            return answer, sharded["algorithm"]
        runner = FanoutRunner({"algorithm": processor}, chunk_size=CHUNK)
        if mmap:
            from repro.streams.persist import ChunkedStreamReader

            source = ChunkedStreamReader(source, mmap=True)
        runner.process(source)
        return processor.finalize(), processor


# ----------------------------------------------------------------------
# The spec-driven replacement.
# ----------------------------------------------------------------------


def job_spec(workload, algorithm, *, window_policy=None, workers=1,
             path=None, mmap=False, scale=0.25, seed=SEED):
    """The JSON job spec equivalent to the legacy flag combination."""
    if path is not None:
        source = {"kind": "file", "path": str(path), "chunk_size": CHUNK}
        if mmap:
            source["mmap"] = True
    else:
        source = {
            "kind": "generator",
            "generator": workload,
            "params": {"n": N, "m": M, "d": D, "alpha": ALPHA, "seed": SEED},
            "chunk_size": CHUNK,
        }
    if algorithm == "insertion-only":
        params = {"n": N, "d": D, "alpha": ALPHA}
    else:
        params = {"n": N, "m": M, "d": D, "alpha": ALPHA, "scale": scale}
    if window_policy is None:
        # Windowed specs seed buckets from window.seed; a processor
        # seed there is rejected by validation.
        params["seed"] = seed
    processor = {"name": algorithm, "label": "algorithm", "params": params}
    spec = {"source": source, "processors": [processor]}
    if window_policy is not None:
        spec["window"] = {"policy": window_policy, "window": WINDOW,
                          "seed": seed}
    if workers > 1:
        spec["execution"] = {"backend": "sharded", "workers": workers}
    return spec


def pipeline_answer(spec):
    """Run a JSON spec after asserting it round-trips exactly."""
    pipeline = Pipeline.from_dict(json.loads(json.dumps(spec)))
    assert Pipeline.from_dict(pipeline.to_dict()) == pipeline
    result = pipeline.run()
    return result["algorithm"], result.processors["algorithm"]


# ----------------------------------------------------------------------
# Answer comparison (sliding/decay answers carry live processors, so
# equality is structural).
# ----------------------------------------------------------------------


def assert_same_answer(legacy, modern):
    if legacy is None or isinstance(legacy, (list, tuple)):
        assert modern == legacy
        return
    if hasattr(legacy, "n_buckets"):  # SlidingWindowAnswer
        assert (modern.window, modern.bucket, modern.start_update,
                modern.end_update, modern.n_buckets, modern.value) == (
            legacy.window, legacy.bucket, legacy.start_update,
            legacy.end_update, legacy.n_buckets, legacy.value,
        )
        return
    if hasattr(legacy, "recent"):  # DecayAnswer
        assert modern.recent == legacy.recent
        assert modern.has_tail == legacy.has_tail
        assert (modern.tail_start_update, modern.tail_end_update,
                modern.tail_value) == (
            legacy.tail_start_update, legacy.tail_end_update,
            legacy.tail_value,
        )
        return
    assert modern == legacy  # Neighbourhood etc.


# ----------------------------------------------------------------------
# The acceptance matrix.
# ----------------------------------------------------------------------


class TestWindowedEquivalence:
    @pytest.mark.parametrize("policy", ["tumbling", "sliding", "decay"])
    @pytest.mark.parametrize("workers", WORKERS)
    def test_policy_times_workers(self, policy, workers):
        stream = star_stream()
        legacy_answer, legacy_proc = LegacyRun.run(
            stream, "insertion-only", window_policy=policy, workers=workers
        )
        spec = job_spec("star", "insertion-only", window_policy=policy,
                        workers=workers)
        modern_answer, modern_proc = pipeline_answer(spec)
        assert_same_answer(legacy_answer, modern_answer)
        assert modern_proc.space_words() == legacy_proc.space_words()

    @pytest.mark.parametrize("policy", ["tumbling", "sliding"])
    def test_turnstile_windows(self, policy):
        legacy_answer, _ = LegacyRun.run(
            churn_stream(), "insertion-deletion", window_policy=policy
        )
        modern_answer, _ = pipeline_answer(
            job_spec("churn", "insertion-deletion", window_policy=policy)
        )
        assert_same_answer(legacy_answer, modern_answer)


class TestUnwindowedEquivalence:
    @pytest.mark.parametrize("workers", WORKERS)
    def test_star_workload(self, workers):
        stream = star_stream()
        legacy_answer, legacy_proc = LegacyRun.run(
            stream, "insertion-only", workers=workers
        )
        modern_answer, modern_proc = pipeline_answer(
            job_spec("star", "insertion-only", workers=workers)
        )
        assert_same_answer(legacy_answer, modern_answer)
        assert modern_proc.result() == legacy_proc.result()
        assert modern_proc.space_words() == legacy_proc.space_words()

    def test_turnstile_workload(self):
        legacy_answer, _ = LegacyRun.run(churn_stream(), "insertion-deletion")
        modern_answer, _ = pipeline_answer(
            job_spec("churn", "insertion-deletion")
        )
        assert_same_answer(legacy_answer, modern_answer)

    def test_zipf_workload(self):
        legacy_answer, _ = LegacyRun.run(zipf_stream(), "insertion-only")
        modern_answer, _ = pipeline_answer(job_spec("zipf", "insertion-only"))
        assert_same_answer(legacy_answer, modern_answer)


class TestFileSourceEquivalence:
    @pytest.mark.parametrize("workers", (1, 4))
    @pytest.mark.parametrize("mmap", (False, True))
    def test_mmap_file_runs(self, tmp_path, workers, mmap):
        path = tmp_path / "stream.npz"
        dump_stream(star_stream(), path, format="v2")
        legacy_source = str(path) if (workers > 1 or mmap) else star_stream()
        legacy_answer, _ = LegacyRun.run(
            legacy_source, "insertion-only", workers=workers, mmap=mmap
        )
        modern_answer, _ = pipeline_answer(
            job_spec("star", "insertion-only", workers=workers,
                     path=path, mmap=mmap)
        )
        assert_same_answer(legacy_answer, modern_answer)

    def test_windowed_mmap_sharded(self, tmp_path):
        path = tmp_path / "stream.npz"
        dump_stream(star_stream(), path, format="v2")
        legacy_answer, _ = LegacyRun.run(
            str(path), "insertion-only", window_policy="sliding",
            workers=2, mmap=True,
        )
        modern_answer, _ = pipeline_answer(
            job_spec("star", "insertion-only", window_policy="sliding",
                     workers=2, path=path, mmap=True)
        )
        assert_same_answer(legacy_answer, modern_answer)
