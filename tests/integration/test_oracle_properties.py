"""Property-based oracle tests: on arbitrary generated streams, the
algorithms' outputs are always sound with respect to exact replay."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FullStorage
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed
from repro.streams.edge import DELETE, INSERT, Edge, StreamItem
from repro.streams.stream import EdgeStream

N, M = 12, 16


@st.composite
def insert_streams(draw):
    """Arbitrary simple insertion streams over a 12x16 grid."""
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, N - 1), st.integers(0, M - 1)),
            max_size=80,
            unique=True,
        )
    )
    return EdgeStream([StreamItem(Edge(a, b)) for a, b in pairs], N, M)


@st.composite
def turnstile_streams(draw):
    """Arbitrary valid insert/delete sequences over the same grid."""
    n_ops = draw(st.integers(0, 80))
    live, items = set(), []
    for _ in range(n_ops):
        if live and draw(st.booleans()):
            edge = draw(st.sampled_from(sorted(live, key=lambda e: (e.a, e.b))))
            items.append(StreamItem(edge, DELETE))
            live.remove(edge)
        else:
            edge = Edge(draw(st.integers(0, N - 1)), draw(st.integers(0, M - 1)))
            if edge in live:
                continue
            live.add(edge)
            items.append(StreamItem(edge, INSERT))
    return EdgeStream(items, N, M)


class TestInsertionOnlySoundness:
    @settings(max_examples=120, deadline=None)
    @given(insert_streams(), st.integers(1, 8), st.integers(1, 3),
           st.integers(0, 3))
    def test_output_always_sound(self, stream, d, alpha, seed):
        """Whatever the stream and parameters: if the algorithm reports,
        the witnesses are genuine and numerous enough."""
        algorithm = InsertionOnlyFEwW(N, d, alpha, seed=seed)
        algorithm.process(stream)
        try:
            result = algorithm.result()
        except AlgorithmFailed:
            return
        assert result.size >= math.ceil(d / alpha)
        assert result.witnesses <= stream.neighbours_of(result.vertex)

    @settings(max_examples=120, deadline=None)
    @given(insert_streams(), st.integers(1, 8), st.integers(0, 3))
    def test_promise_implies_success_with_full_reservoir(self, stream, d, seed):
        """alpha=1 with a reservoir covering all of A is deterministic:
        whenever the promise holds, the algorithm must succeed."""
        algorithm = InsertionOnlyFEwW(N, d, 1, seed=seed, reservoir_override=N)
        algorithm.process(stream)
        if stream.max_degree() >= d:
            assert algorithm.successful
            oracle = FullStorage(N, M).process(stream).result(d)
            assert algorithm.result().size >= d
            assert oracle.size >= d

    @settings(max_examples=80, deadline=None)
    @given(insert_streams(), st.integers(1, 8), st.integers(1, 3))
    def test_reservoirs_respect_capacity(self, stream, d, alpha):
        algorithm = InsertionOnlyFEwW(N, d, alpha, seed=1)
        algorithm.process(stream)
        d2 = math.ceil(d / alpha)
        for run in algorithm.runs:
            assert len(run._reservoir) <= run.s
            for witnesses in run._reservoir.values():
                assert len(witnesses) <= d2

    @settings(max_examples=80, deadline=None)
    @given(insert_streams(), st.integers(1, 8), st.integers(1, 3))
    def test_degree_counter_matches_replay(self, stream, d, alpha):
        algorithm = InsertionOnlyFEwW(N, d, alpha, seed=2)
        algorithm.process(stream)
        degrees = stream.final_degrees()
        for a in range(N):
            assert algorithm.current_degree(a) == degrees.get(a, 0)


class TestInsertionDeletionSoundness:
    @settings(max_examples=60, deadline=None)
    @given(turnstile_streams(), st.integers(1, 6), st.integers(0, 2))
    def test_witnesses_survive_deletions(self, stream, d, seed):
        """Fast-mode Algorithm 3 on arbitrary turnstile streams: any
        reported witness must exist in the final graph."""
        algorithm = InsertionDeletionFEwW(N, M, d, 2, seed=seed, scale=0.1)
        algorithm.process(stream)
        try:
            result = algorithm.result()
        except AlgorithmFailed:
            return
        assert result.size >= math.ceil(d / 2)
        assert result.witnesses <= stream.neighbours_of(result.vertex)

    @settings(max_examples=40, deadline=None)
    @given(turnstile_streams(), st.integers(0, 2))
    def test_empty_final_graph_never_reports(self, stream, seed):
        """Delete everything: the algorithm must fail rather than
        hallucinate a neighbourhood."""
        items = list(stream)
        final = stream.final_edges()
        items += [StreamItem(edge, DELETE) for edge in sorted(
            final, key=lambda e: (e.a, e.b)
        )]
        emptied = EdgeStream(items, N, M)
        algorithm = InsertionDeletionFEwW(N, M, 1, 1, seed=seed, scale=0.1)
        algorithm.process(emptied)
        assert not algorithm.successful
