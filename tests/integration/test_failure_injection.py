"""Failure injection: corrupted inputs and hostile parameters.

These tests document the library's failure contract: stream validation
is the guard against malformed turnstile input; algorithms either raise
a clear error or degrade to a sound *fail* — never to a fabricated
answer.
"""

import pytest

from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.stream import EdgeStream, InvalidStreamError
from repro.streams.generators import GeneratorConfig, planted_star_graph


class TestMalformedStreams:
    def test_validation_rejects_delete_before_insert(self):
        with pytest.raises(InvalidStreamError):
            EdgeStream([StreamItem(Edge(0, 0), DELETE)], 4, 4)

    def test_validation_rejects_double_insert(self):
        with pytest.raises(InvalidStreamError):
            EdgeStream([StreamItem(Edge(0, 0)), StreamItem(Edge(0, 0))], 4, 4)

    def test_insertion_only_algorithm_rejects_any_delete(self):
        algorithm = InsertionOnlyFEwW(4, 2, 1, seed=0)
        with pytest.raises(ValueError, match="insertion-only"):
            algorithm.process_item(StreamItem(Edge(0, 0), DELETE))

    def test_out_of_range_vertex_rejected_by_algorithms(self):
        io_algorithm = InsertionOnlyFEwW(4, 2, 1, seed=0)
        with pytest.raises(ValueError):
            io_algorithm.process_item(StreamItem(Edge(7, 0)))
        id_algorithm = InsertionDeletionFEwW(4, 4, 2, 1, seed=0, scale=0.1)
        with pytest.raises(ValueError):
            id_algorithm.process_item(StreamItem(Edge(0, 9)))


class TestHostileParameters:
    def test_d_larger_than_any_degree_fails_cleanly(self):
        config = GeneratorConfig(n=32, m=64, seed=1)
        stream = planted_star_graph(config, star_degree=10, background_degree=2)
        algorithm = InsertionOnlyFEwW(32, 1000, 2, seed=2).process(stream)
        assert not algorithm.successful
        with pytest.raises(AlgorithmFailed):
            algorithm.result()

    def test_threshold_above_m_is_unreachable_but_safe(self):
        algorithm = InsertionOnlyFEwW(8, 100, 1, seed=0)
        for b in range(8):
            algorithm.process_item(StreamItem(Edge(0, b)))
        assert not algorithm.successful

    def test_alpha_larger_than_d_still_sound(self):
        """d/alpha < 1: a single witness satisfies the threshold, and
        the output must still be genuine."""
        config = GeneratorConfig(n=16, m=32, seed=3)
        stream = planted_star_graph(config, star_degree=4, background_degree=1)
        algorithm = InsertionOnlyFEwW(16, 4, 8, seed=4).process(stream)
        result = algorithm.result()
        assert result.size >= 1
        assert result.witnesses <= stream.neighbours_of(result.vertex)

    def test_degenerate_single_vertex_universe(self):
        algorithm = InsertionOnlyFEwW(1, 3, 1, seed=0)
        for b in range(3):
            algorithm.process_item(StreamItem(Edge(0, b)))
        assert algorithm.result().vertex == 0

    def test_insertion_deletion_promise_violation_fails_not_fabricates(self):
        """Feed Algorithm 3 a graph with max degree far below d: it must
        fail, not report an undersized or fabricated neighbourhood."""
        config = GeneratorConfig(n=16, m=32, seed=5)
        stream = planted_star_graph(config, star_degree=3, background_degree=1)
        algorithm = InsertionDeletionFEwW(16, 32, 20, 2, seed=6, scale=0.2)
        algorithm.process(stream)
        assert not algorithm.successful
        with pytest.raises(AlgorithmFailed):
            algorithm.result()


class TestMidStreamQuerying:
    def test_result_reflects_prefix_only(self):
        """Querying mid-stream is legal and answers for the prefix."""
        algorithm = InsertionOnlyFEwW(8, 4, 1, seed=0)
        for b in range(4):
            algorithm.process_item(StreamItem(Edge(0, b)))
        prefix_result = algorithm.result()
        assert prefix_result.witnesses <= set(range(4))
        for b in range(4, 8):
            algorithm.process_item(StreamItem(Edge(1, b)))
        assert algorithm.result().vertex == prefix_result.vertex

    def test_insertion_deletion_cache_invalidated_by_updates(self):
        """Algorithm 3 memoises its sampler query; new updates must
        invalidate the memo."""
        algorithm = InsertionDeletionFEwW(8, 16, 2, 1, seed=7, scale=0.3)
        for b in range(2):
            algorithm.process_item(StreamItem(Edge(0, b)))
        first = algorithm.result()
        assert first.vertex == 0
        for b in range(8):
            algorithm.process_item(StreamItem(Edge(3, 8 + b)))
        algorithm.process_item(StreamItem(Edge(0, 0), DELETE))
        algorithm.process_item(StreamItem(Edge(0, 1), DELETE))
        second = algorithm.result()
        assert second.vertex == 3
