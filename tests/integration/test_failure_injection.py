"""Failure injection: corrupted inputs, hostile parameters, and chaos.

These tests document the library's failure contract at two levels.
Input level: stream validation is the guard against malformed turnstile
input; algorithms either raise a clear error or degrade to a sound
*fail* — never to a fabricated answer.  Execution level: deterministic
:class:`~repro.engine.faults.FaultPlan` injection drives the engine's
recovery machinery — shard retry with backoff, per-shard timeouts,
serial fallback, and checkpoint/resume — and every recovery path must
reproduce the unfaulted answers *bit-identically*, because the
mergeable-summary design makes re-running a shard side-effect-free.
"""

import numpy as np
import pytest

from repro.baselines import CountMinSketch
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed
from repro.engine import FanoutRunner, FaultPlan, ShardedRunner
from repro.engine.checkpoint import CheckpointError
from repro.engine.sharded import ShardedWorkerError, fork_available
from repro.pipeline import Pipeline
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.edge import DELETE, Edge, StreamItem
from repro.streams.persist import StreamFormatError, dump_stream
from repro.streams.stream import EdgeStream, InvalidStreamError
from repro.streams.generators import GeneratorConfig, planted_star_graph


class TestMalformedStreams:
    def test_validation_rejects_delete_before_insert(self):
        with pytest.raises(InvalidStreamError):
            EdgeStream([StreamItem(Edge(0, 0), DELETE)], 4, 4)

    def test_validation_rejects_double_insert(self):
        with pytest.raises(InvalidStreamError):
            EdgeStream([StreamItem(Edge(0, 0)), StreamItem(Edge(0, 0))], 4, 4)

    def test_insertion_only_algorithm_rejects_any_delete(self):
        algorithm = InsertionOnlyFEwW(4, 2, 1, seed=0)
        with pytest.raises(ValueError, match="insertion-only"):
            algorithm.process_item(StreamItem(Edge(0, 0), DELETE))

    def test_out_of_range_vertex_rejected_by_algorithms(self):
        io_algorithm = InsertionOnlyFEwW(4, 2, 1, seed=0)
        with pytest.raises(ValueError):
            io_algorithm.process_item(StreamItem(Edge(7, 0)))
        id_algorithm = InsertionDeletionFEwW(4, 4, 2, 1, seed=0, scale=0.1)
        with pytest.raises(ValueError):
            id_algorithm.process_item(StreamItem(Edge(0, 9)))


class TestHostileParameters:
    def test_d_larger_than_any_degree_fails_cleanly(self):
        config = GeneratorConfig(n=32, m=64, seed=1)
        stream = planted_star_graph(config, star_degree=10, background_degree=2)
        algorithm = InsertionOnlyFEwW(32, 1000, 2, seed=2).process(stream)
        assert not algorithm.successful
        with pytest.raises(AlgorithmFailed):
            algorithm.result()

    def test_threshold_above_m_is_unreachable_but_safe(self):
        algorithm = InsertionOnlyFEwW(8, 100, 1, seed=0)
        for b in range(8):
            algorithm.process_item(StreamItem(Edge(0, b)))
        assert not algorithm.successful

    def test_alpha_larger_than_d_still_sound(self):
        """d/alpha < 1: a single witness satisfies the threshold, and
        the output must still be genuine."""
        config = GeneratorConfig(n=16, m=32, seed=3)
        stream = planted_star_graph(config, star_degree=4, background_degree=1)
        algorithm = InsertionOnlyFEwW(16, 4, 8, seed=4).process(stream)
        result = algorithm.result()
        assert result.size >= 1
        assert result.witnesses <= stream.neighbours_of(result.vertex)

    def test_degenerate_single_vertex_universe(self):
        algorithm = InsertionOnlyFEwW(1, 3, 1, seed=0)
        for b in range(3):
            algorithm.process_item(StreamItem(Edge(0, b)))
        assert algorithm.result().vertex == 0

    def test_insertion_deletion_promise_violation_fails_not_fabricates(self):
        """Feed Algorithm 3 a graph with max degree far below d: it must
        fail, not report an undersized or fabricated neighbourhood."""
        config = GeneratorConfig(n=16, m=32, seed=5)
        stream = planted_star_graph(config, star_degree=3, background_degree=1)
        algorithm = InsertionDeletionFEwW(16, 32, 20, 2, seed=6, scale=0.2)
        algorithm.process(stream)
        assert not algorithm.successful
        with pytest.raises(AlgorithmFailed):
            algorithm.result()


class TestMidStreamQuerying:
    def test_result_reflects_prefix_only(self):
        """Querying mid-stream is legal and answers for the prefix."""
        algorithm = InsertionOnlyFEwW(8, 4, 1, seed=0)
        for b in range(4):
            algorithm.process_item(StreamItem(Edge(0, b)))
        prefix_result = algorithm.result()
        assert prefix_result.witnesses <= set(range(4))
        for b in range(4, 8):
            algorithm.process_item(StreamItem(Edge(1, b)))
        assert algorithm.result().vertex == prefix_result.vertex

    def test_insertion_deletion_cache_invalidated_by_updates(self):
        """Algorithm 3 memoises its sampler query; new updates must
        invalidate the memo."""
        algorithm = InsertionDeletionFEwW(8, 16, 2, 1, seed=7, scale=0.3)
        for b in range(2):
            algorithm.process_item(StreamItem(Edge(0, b)))
        first = algorithm.result()
        assert first.vertex == 0
        for b in range(8):
            algorithm.process_item(StreamItem(Edge(3, 8 + b)))
        algorithm.process_item(StreamItem(Edge(0, 0), DELETE))
        algorithm.process_item(StreamItem(Edge(0, 1), DELETE))
        second = algorithm.result()
        assert second.vertex == 3


# -- engine chaos ------------------------------------------------------
#
# Everything below drives the fault-tolerance machinery with
# deterministic FaultPlans over a file-backed stream.  The invariant
# throughout: any run that *recovers* (retry, fallback, resume) must
# produce answers bit-identical to an unfaulted single-core pass.

N_UPDATES = 600
N_VERTICES = 32
CHUNK = 32


def chaos_stream():
    rng = np.random.default_rng(11)
    return ColumnarEdgeStream(
        rng.integers(0, N_VERTICES, size=N_UPDATES),
        np.arange(N_UPDATES, dtype=np.int64),
        n=N_VERTICES,
        m=N_UPDATES,
    )


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "chaos.npz"
    dump_stream(chaos_stream(), path, format="v2")
    return str(path)


def reference_table():
    stream = chaos_stream()
    sketch = CountMinSketch(0.05, 0.05, seed=5)
    sketch.process_batch(stream.a, stream.b, stream.sign)
    return sketch._table


def chaos_runner(**kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("chunk_size", CHUNK)
    runner = ShardedRunner(
        {"cm": CountMinSketch(0.05, 0.05, seed=5)}, **kwargs
    )
    # Instance overrides: no backoff sleeps, tight poll slices.
    runner.RETRY_BACKOFF_S = 0.0
    runner.RESULT_POLL_TIMEOUT_S = 0.05
    return runner


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestShardRetry:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_killed_worker_retried_to_bit_identical_answers(
        self, stream_file, workers
    ):
        """SIGKILL mid-stream at 1/2/4 workers: the shard is re-run
        from its pristine split and the merged table matches an
        unfaulted single-core pass exactly."""
        runner = chaos_runner(
            n_workers=workers,
            retries=2,
            on_failure="retry",
            fault_plan=FaultPlan.kill(worker=0, chunk=1),
        )
        results = runner.run(stream_file)
        assert np.array_equal(results["cm"]._table, reference_table())
        assert runner.retries_used == 1

    def test_transient_read_error_retried(self, stream_file):
        runner = chaos_runner(
            retries=2,
            on_failure="retry",
            fault_plan=FaultPlan.read_error(worker=1, chunk=0),
        )
        results = runner.run(stream_file)
        assert np.array_equal(results["cm"]._table, reference_table())
        assert runner.retries_used == 1

    def test_deterministic_error_is_not_retried(self, stream_file):
        """A ValueError is a bug, not weather: re-running the shard
        would fail identically, so it surfaces immediately — with the
        worker's formatted traceback."""
        runner = chaos_runner(
            retries=3,
            on_failure="retry",
            fault_plan=FaultPlan.read_error(
                worker=0, chunk=0, exc="ValueError",
                message="deterministic bug",
            ),
        )
        with pytest.raises(ShardedWorkerError, match="deterministic bug"):
            runner.run(stream_file)
        assert runner.retries_used == 0

    def test_worker_traceback_travels_to_the_parent(self, stream_file):
        runner = chaos_runner(
            fault_plan=FaultPlan.read_error(
                worker=0, chunk=1, exc="RuntimeError", message="deep frame"
            ),
        )
        with pytest.raises(ShardedWorkerError) as excinfo:
            runner.run(stream_file)
        assert "Traceback" in str(excinfo.value)
        assert excinfo.value.cause_type == "RuntimeError"

    def test_raise_policy_fails_fast_on_worker_death(self, stream_file):
        runner = chaos_runner(
            retries=2,  # irrelevant under on_failure="raise"
            fault_plan=FaultPlan.kill(worker=0, chunk=1),
        )
        with pytest.raises(ShardedWorkerError, match="terminated abnormally"):
            runner.run(stream_file)
        assert runner.retries_used == 0

    def _always_kill_worker_zero(self):
        return (
            FaultPlan.kill(worker=0, chunk=1, attempt=0)
            + FaultPlan.kill(worker=0, chunk=1, attempt=1)
            + FaultPlan.kill(worker=0, chunk=1, attempt=2)
        )

    def test_retries_exhausted_raises(self, stream_file):
        runner = chaos_runner(
            retries=2,
            on_failure="retry",
            fault_plan=self._always_kill_worker_zero(),
        )
        with pytest.raises(ShardedWorkerError, match="terminated abnormally"):
            runner.run(stream_file)
        assert runner.retries_used == 2

    def test_serial_fallback_recovers_bit_identically(self, stream_file):
        """When every retry dies, serial_fallback re-runs just that
        shard in-process and the answer is still exact."""
        runner = chaos_runner(
            retries=2,
            on_failure="serial_fallback",
            fault_plan=self._always_kill_worker_zero(),
        )
        results = runner.run(stream_file)
        assert np.array_equal(results["cm"]._table, reference_table())
        assert runner.retries_used == 2
        assert runner.fallbacks_used == 1

    def test_dropped_result_detected_as_worker_death(self, stream_file):
        """A worker that exits cleanly without reporting (message lost)
        is indistinguishable from a crash — and recovered the same way."""
        runner = chaos_runner(
            retries=1,
            on_failure="retry",
            fault_plan=FaultPlan.drop_result(worker=1, attempt=0),
        )
        results = runner.run(stream_file)
        assert np.array_equal(results["cm"]._table, reference_table())
        assert runner.retries_used == 1

    def test_corrupt_result_rejected_outright(self, stream_file):
        """A malformed result message means the channel itself cannot
        be trusted; that is never retried."""
        runner = chaos_runner(
            retries=3,
            on_failure="retry",
            fault_plan=FaultPlan.corrupt_result(worker=0),
        )
        with pytest.raises(ShardedWorkerError) as excinfo:
            runner.run(stream_file)
        assert excinfo.value.cause_type == "CorruptResult"
        assert runner.retries_used == 0

    def test_timeout_enforced_and_retried(self, stream_file):
        """A wedged worker (first attempt sleeps past timeout_s) is
        killed and retried; the clean second attempt is exact."""
        runner = chaos_runner(
            retries=1,
            timeout_s=0.4,
            on_failure="retry",
            fault_plan=FaultPlan.delay(
                worker=0, chunk=0, delay_s=10.0, attempt=0
            ),
        )
        results = runner.run(stream_file)
        assert np.array_equal(results["cm"]._table, reference_table())
        assert runner.retries_used == 1


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestShardedStreamDamage:
    def test_truncated_npz_fails_with_stream_error(self, tmp_path):
        """A torn tail surfaces as a *stream* error — flagged so the
        CLI prints a friendly diagnosis, and never retried (re-reading
        a damaged file cannot succeed)."""
        path = tmp_path / "torn.npz"
        dump_stream(chaos_stream(), path, format="v2")
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) * 3 // 5])
        runner = chaos_runner(retries=3, on_failure="retry")
        with pytest.raises(
            (StreamFormatError, ShardedWorkerError), match="not a valid NPZ"
        ) as excinfo:
            runner.run(str(path))
        if isinstance(excinfo.value, ShardedWorkerError):
            assert excinfo.value.is_stream_error
        assert runner.retries_used == 0

    def test_garbage_file_fails_with_stream_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00\x07not an archive at all" * 64)
        with pytest.raises(
            (StreamFormatError, ShardedWorkerError), match="missing header"
        ):
            chaos_runner(mmap=True).run(str(path))


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestCheckpointResume:
    def test_fanout_crash_and_resume_bit_identical(self, stream_file,
                                                   tmp_path):
        ckpt = tmp_path / "ckpt"
        crashing = FanoutRunner(
            {"cm": CountMinSketch(0.05, 0.05, seed=5)},
            chunk_size=CHUNK,
            checkpoint_dir=ckpt,
            checkpoint_every=2,
            fault_plan=FaultPlan.read_error(worker=0, chunk=6),
        )
        with pytest.raises(OSError, match="injected read error"):
            crashing.run(stream_file)
        resumed = FanoutRunner.resume(ckpt)
        results = resumed.run()
        assert resumed.resumed
        assert np.array_equal(results["cm"]._table, reference_table())

    @pytest.mark.parametrize("mmap", [False, True])
    def test_sharded_kill_and_resume_bit_identical(self, stream_file,
                                                   tmp_path, mmap):
        ckpt = tmp_path / "ckpt"
        crashing = chaos_runner(
            mmap=mmap,
            retries=0,
            checkpoint_dir=ckpt,
            checkpoint_every=2,
            fault_plan=FaultPlan.kill(worker=1, chunk=4),
        )
        with pytest.raises(ShardedWorkerError, match="terminated abnormally"):
            crashing.run(stream_file)
        resumed = ShardedRunner.resume(ckpt)
        results = resumed.run()
        assert np.array_equal(results["cm"]._table, reference_table())

    @pytest.mark.parametrize("policy", ["sliding", "decay"])
    def test_windowed_pipeline_resume_bit_identical(self, stream_file,
                                                    tmp_path, policy):
        """Sliding/decay windows carry RNG-seeded bucket state; resume
        must restore it exactly, not just the counters."""

        def build(checkpointed):
            builder = (
                Pipeline.builder()
                .file(stream_file)
                .chunk_size(CHUNK)
                .processor("insertion-only", label="alg2",
                           n=N_VERTICES, d=8, alpha=2)
                .window(policy, 300, seed=1)
            )
            if checkpointed:
                builder = builder.checkpoint(tmp_path / "ckpt", every=2)
            return builder.build()

        def fingerprint(answer):
            if policy == "sliding":
                return (answer.window, answer.bucket, answer.start_update,
                        answer.end_update, answer.n_buckets, answer.value)
            return (tuple(answer.recent), answer.tail_value,
                    answer.tail_start_update, answer.tail_end_update)

        clean = build(checkpointed=False).run()["alg2"]
        with pytest.raises(OSError, match="injected read error"):
            build(checkpointed=True).run(
                fault_plan=FaultPlan.read_error(worker=0, chunk=8)
            )
        resumed = build(checkpointed=True).run(resume=True)
        assert fingerprint(resumed["alg2"]) == fingerprint(clean)
        assert resumed.report.resumed

    def test_torn_manifest_rejected_on_resume(self, stream_file, tmp_path):
        ckpt = tmp_path / "ckpt"
        crashing = FanoutRunner(
            {"cm": CountMinSketch(0.05, 0.05, seed=5)},
            chunk_size=CHUNK,
            checkpoint_dir=ckpt,
            checkpoint_every=2,
            fault_plan=FaultPlan.read_error(worker=0, chunk=6),
        )
        with pytest.raises(OSError):
            crashing.run(stream_file)
        manifest = ckpt / "fanout.manifest.json"
        manifest.write_text(manifest.read_text()[:25])
        with pytest.raises(CheckpointError, match="torn or corrupt"):
            FanoutRunner.resume(ckpt)

    def test_stale_shard_snapshots_from_older_run_ignored(self, tmp_path):
        """Reusing a checkpoint dir across jobs must not graft a
        previous job's completed shard state onto the resumed one; the
        run nonce in each shard manifest keeps them apart."""
        ckpt = tmp_path / "ckpt"
        other = tmp_path / "other.npz"
        rng = np.random.default_rng(99)
        dump_stream(
            ColumnarEdgeStream(
                rng.integers(0, N_VERTICES, size=100),
                np.arange(100, dtype=np.int64),
                n=N_VERTICES,
                m=100,
            ),
            other,
            format="v2",
        )
        # Job 1 over a different stream runs to completion in the dir.
        chaos_runner(checkpoint_dir=ckpt, checkpoint_every=2).run(str(other))
        # Job 2 over the real stream crashes, then resumes.
        real = tmp_path / "chaos.npz"
        dump_stream(chaos_stream(), real, format="v2")
        crashing = chaos_runner(
            retries=0,
            checkpoint_dir=ckpt,
            checkpoint_every=2,
            fault_plan=FaultPlan.kill(worker=0, chunk=1),
        )
        with pytest.raises(ShardedWorkerError):
            crashing.run(str(real))
        results = ShardedRunner.resume(ckpt).run()
        assert np.array_equal(results["cm"]._table, reference_table())
