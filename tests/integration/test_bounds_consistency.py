"""Cross-validation: the theory formulas agree with the algorithms'
own space accounting (the benches rely on both; they must not drift)."""

from repro.core.insertion_deletion import (
    InsertionDeletionFEwW,
    edge_sampler_count,
    samplers_per_vertex,
    vertex_sample_size,
)
from repro.core.insertion_only import InsertionOnlyFEwW, reservoir_size
from repro.sketch.l0 import l0_sampler_space_words
from repro.theory.bounds import (
    insertion_deletion_space_words,
    insertion_only_space_words,
)


class TestInsertionDeletionFormulaMatchesAccounting:
    def test_formula_equals_algorithm_accounting_up_to_ids(self):
        """insertion_deletion_space_words is defined as sampler counts
        times per-sampler cost; the live algorithm reports the same plus
        only the sampled-vertex id list."""
        for n, m, d, alpha in [(64, 64, 8, 2), (128, 256, 16, 4), (32, 32, 4, 1)]:
            algorithm = InsertionDeletionFEwW(n, m, d, alpha, seed=0)
            formula = insertion_deletion_space_words(n, m, d, alpha)
            ids = vertex_sample_size(n, alpha)
            assert algorithm.space_words() == formula + ids

    def test_component_identities(self):
        n, m, d, alpha = 64, 128, 8, 2
        algorithm = InsertionDeletionFEwW(n, m, d, alpha, seed=1)
        components = algorithm.space_breakdown().components
        delta = algorithm.delta
        expected_vertex = (
            vertex_sample_size(n, alpha)
            * samplers_per_vertex(n, d, alpha)
            * l0_sampler_space_words(m, delta)
        )
        expected_edge = edge_sampler_count(n, m, d, alpha) * l0_sampler_space_words(
            n * m, delta
        )
        assert components["vertex-sampling l0 banks"] == expected_vertex
        assert components["edge-sampling l0 bank"] == expected_edge


class TestInsertionOnlyFormulaIsAnUpperEnvelope:
    def test_formula_upper_bounds_live_space(self):
        """The Theorem 3.2 formula is the worst case of what Algorithm 2
        retains; live space can never exceed it."""
        from repro.streams.generators import GeneratorConfig, planted_star_graph

        for n, d, alpha in [(256, 32, 1), (256, 32, 2), (512, 64, 3)]:
            config = GeneratorConfig(n=n, m=4 * d, seed=n + alpha)
            stream = planted_star_graph(
                config, star_degree=d, background_degree=min(4, d - 1)
            )
            algorithm = InsertionOnlyFEwW(n, d, alpha, seed=2).process(stream)
            assert algorithm.space_words() <= insertion_only_space_words(n, d, alpha)

    def test_formula_components(self):
        """The formula decomposes as degree table + alpha * per-run cap,
        with the per-run cap driven by s and ceil(d/alpha)."""
        import math

        n, d, alpha = 1024, 64, 2
        s = reservoir_size(n, alpha)
        d2 = math.ceil(d / alpha)
        expected = n + alpha * (s * d2 * 2 + s + 1)
        assert insertion_only_space_words(n, d, alpha) == expected
