"""Pragma semantics: suppression forms, mandatory reasons, hygiene."""

from repro.analysis import PragmaIndex, analyze
from repro.pipeline.registry import Registry


def _line_of(source, needle, *, at_end=False):
    for lineno, text in enumerate(source.text.splitlines(), start=1):
        if (text.rstrip().endswith(needle)) if at_end else (needle in text):
            return lineno
    raise AssertionError(f"no {needle!r} in {source.display_path}")


class TestSuppressionForms:
    def _report(self, fixtures_dir):
        return analyze(
            [fixtures_dir / "pragma_cases.py"],
            root=fixtures_dir,
            registry=Registry("processor"),
            audit=False,
        )

    def test_trailing_block_and_full_id_forms_all_suppress(
        self, load_source, fixtures_dir
    ):
        source = load_source("pragma_cases")
        report = self._report(fixtures_dir)
        suppressed_lines = {
            _line_of(source, "def trailing_form"),
            _line_of(source, "def block_form"),
            _line_of(source, "def full_rule_id_form"),
        }
        flagged = {
            d.line
            for d in report.diagnostics
            if d.rule == "determinism/global-random"
        }
        # nothing inside the three suppressed functions fires ...
        for start in suppressed_lines:
            assert not any(start <= line <= start + 3 for line in flagged)
        # ... while the unsuppressed call still does
        unsuppressed = _line_of(source, "# MARK: unsuppressed")
        assert unsuppressed in flagged

    def test_missing_reason_is_an_error_at_the_pragma_line(
        self, load_source, fixtures_dir
    ):
        source = load_source("pragma_cases")
        report = self._report(fixtures_dir)
        expected_line = _line_of(source, "allow-global-random", at_end=True)
        missing = [
            d
            for d in report.diagnostics
            if d.rule == "pragma/missing-reason"
        ]
        assert [d.line for d in missing] == [expected_line]
        assert not missing[0].advisory  # reasons are mandatory, not advice

    def test_unused_pragma_is_an_advisory_at_the_pragma_line(
        self, load_source, fixtures_dir
    ):
        source = load_source("pragma_cases")
        report = self._report(fixtures_dir)
        expected_line = _line_of(source, "allow-scalar-loop nothing below")
        unused = [
            d for d in report.diagnostics if d.rule == "pragma/unused"
        ]
        assert [d.line for d in unused] == [expected_line]
        assert unused[0].advisory

    def test_strict_exit_code_counts_advisories(self, fixtures_dir):
        report = self._report(fixtures_dir)
        assert report.exit_code(strict=False) == 1  # real errors present
        assert report.exit_code(strict=True) == 1


class TestPragmaIndex:
    def test_suffix_and_full_rule_id_both_match(self):
        index = PragmaIndex.from_source(
            "x = 1  # repro: allow-scalar-loop why not\n"
        )
        assert index.suppresses("hotpath/scalar-loop", 1)
        index = PragmaIndex.from_source(
            "x = 1  # repro: allow-hotpath/scalar-loop why not\n"
        )
        assert index.suppresses("hotpath/scalar-loop", 1)

    def test_wrong_family_does_not_match(self):
        index = PragmaIndex.from_source(
            "x = 1  # repro: allow-wall-clock why not\n"
        )
        assert not index.suppresses("hotpath/scalar-loop", 1)

    def test_comment_block_reaches_over_blank_comment_lines(self):
        source = (
            "# repro: allow-scalar-loop the reason\n"
            "# continues on this line\n"
            "for x in y:\n"
            "    pass\n"
        )
        index = PragmaIndex.from_source(source)
        assert index.suppresses("hotpath/scalar-loop", 3)
