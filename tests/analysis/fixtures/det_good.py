"""Known-good determinism fixture: seeded/explicit randomness only."""

import random
import time

import numpy as np
from numpy import random as npr


def shuffle_items(items, seed):
    rng = random.Random(seed)
    rng.shuffle(items)  # bound method of a seeded instance: fine
    return items


def noise(count, seed):
    return np.random.default_rng(seed).standard_normal(count)


def aliased(seed):
    return npr.SeedSequence(seed).spawn(2)


def replicate():
    # attribute of the Random *class*, not a module-global draw
    return random.Random.__new__(random.Random)


def interval(start):
    return time.monotonic() - start  # monotonic timing is allowed
