"""Known-good fork-safety fixture.

``Driver`` never crosses the fork boundary (no engine surface), so it
may hold handles and locks; ``Summary`` stores only module-level
callables and plain data.
"""

import threading


def _module_score(x):
    return x + 1


class Driver:
    """Parent-side orchestrator: resources on self are fine here."""

    def __init__(self, path):
        self.log = open(path)
        self.lock = threading.Lock()

    def run(self):
        return None


class Summary:
    def __init__(self, k):
        self.k = k
        self.score = _module_score  # importable by qualified name

    def process_batch(self, a, b, sign=None):
        pass

    def finalize(self):
        return self

    def split(self, n_shards):
        return [Summary(self.k) for _ in range(n_shards)]

    def merge(self, other):
        return self
