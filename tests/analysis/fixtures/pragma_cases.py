"""Pragma-semantics fixture: suppression forms and hygiene failures."""

import random


def trailing_form(items):
    random.shuffle(items)  # repro: allow-global-random trailing with reason


def block_form(items):
    # repro: allow-global-random the reason starts here and the block
    # continues over a second comment line before the code
    random.shuffle(items)


def full_rule_id_form(items):
    # repro: allow-determinism/global-random full id works too
    random.shuffle(items)


def missing_reason(items):
    random.shuffle(items)  # repro: allow-global-random


def unsuppressed(items):
    random.shuffle(items)  # MARK: unsuppressed


# repro: allow-scalar-loop nothing below ever fires this rule
UNUSED_PRAGMA_ANCHOR = None
