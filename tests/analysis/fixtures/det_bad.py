"""Known-bad determinism fixture: every rule in the family fires once.

Each violating line carries a ``MARK:`` comment the tests use to
assert the analyzer anchors the diagnostic at exactly that line.
"""

import os
import random
import time
import uuid

import numpy as np
from numpy import random as npr


def shuffle_items(items):
    random.shuffle(items)  # MARK: global-random


def noise(count):
    return np.random.rand(count)  # MARK: legacy-np-random


def aliased_noise(count):
    return npr.standard_normal(count)  # MARK: legacy-np-random-alias


def stamp():
    return time.time()  # MARK: wall-clock


def token():
    return os.urandom(8)  # MARK: os-entropy


def identifier():
    return uuid.uuid4()  # MARK: uuid


def fresh_rng():
    return random.Random()  # MARK: unseeded-rng
