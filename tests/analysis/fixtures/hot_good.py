"""Known-good hot-path fixture: collapsed/derived iteration only."""

import numpy as np


class NettedWalker:
    """Loops over np.unique keys (sub-linear in chunk) and self state."""

    def __init__(self):
        self.runs = [object(), object()]

    def process_batch(self, a, b, sign=None):
        items, counts = np.unique(a, return_counts=True)
        for item, count in zip(items.tolist(), counts.tolist()):
            self.apply(item, count)
        for run in self.runs:
            self.touch(run)

    def apply(self, item, count):
        pass

    def touch(self, run):
        pass

    def finalize(self):
        return None


class AnnotatedWalker:
    """Order-dependent by construction: pragma carries the reason."""

    def process_batch(self, a, b, sign=None):
        # repro: allow-scalar-loop admission order decides which copy wins
        for item, witness in zip(a.tolist(), b.tolist()):
            self.admit(item, witness)

    def admit(self, item, witness):
        pass

    def finalize(self):
        return None
