"""Registry-contract fixture classes.

Imported (via ``sys.modules`` registration, so pickle can resolve
them) by the protocol-lint and contract-auditor tests, which register
them in a throwaway registry with deliberately wrong metadata.
"""

import threading
from typing import List, Optional


class GoodSummary:
    """Fully conformant mergeable processor."""

    shard_routing = "any"

    def __init__(self, k: int = 4) -> None:
        self.k = k
        self.total = 0

    def process_batch(self, a, b, sign=None) -> None:
        self.total += len(a)

    def finalize(self) -> "GoodSummary":
        return self

    def split(self, n_shards: int) -> List["GoodSummary"]:
        return [type(self)(self.k) for _ in range(n_shards)]

    def merge(self, other: "GoodSummary") -> "GoodSummary":
        self.total += other.total
        return self


class NoBatch:
    """Missing the engine surface entirely."""

    def finalize(self) -> None:
        return None


class BadArity(GoodSummary):
    """split/merge exist but cannot be called the way the engine calls
    them."""

    def split(self) -> List["BadArity"]:  # type: ignore[override]
        return [self]

    def merge(self, other, strategy) -> "BadArity":  # type: ignore[override]
        return self


class SecretlyMergeable(GoodSummary):
    """Conformant class; tests register it with mergeable=False."""


class NotActuallyMergeable:
    """No split/merge; tests register it with mergeable=True."""

    def process_batch(self, a, b, sign=None) -> None:
        pass

    def finalize(self) -> None:
        return None


class RoutingClash(GoodSummary):
    """Class says "any"; tests register it with routing="vertex"."""


class UnpicklableSummary(GoodSummary):
    """Pickle round-trip fails: a thread lock rides on the instance."""

    def __init__(self, k: int = 4) -> None:
        super().__init__(k)
        self.lock: Optional[threading.Lock] = None

    def process_batch(self, a, b, sign=None) -> None:
        # the lock appears once the summary has processed data — the
        # shape the runtime auditor must catch and the static rules
        # cannot (the assignment is reached, not declared)
        self.lock = threading.Lock()
        super().process_batch(a, b, sign)


class BrokenSplit(GoodSummary):
    """split(1) violates the identity contract (wrong count)."""

    def split(self, n_shards: int) -> List["GoodSummary"]:
        return [GoodSummary(self.k) for _ in range(n_shards + 1)]
