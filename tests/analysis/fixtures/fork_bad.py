"""Known-bad fork-safety fixture.

``Summary`` crosses the fork boundary (it has ``process_batch`` and a
``split``/``merge`` pair), so storing lambdas, local defs and OS
resources on ``self`` must all flag; the module-level ``SharedMemory``
creation flags regardless of class.
"""

import threading
from multiprocessing import shared_memory


class Summary:
    def __init__(self, k):
        self.k = k
        self.score = lambda x: x + 1  # MARK: lambda-attribute

    def configure(self):
        def helper(x):
            return x * 2

        self.transform = helper  # MARK: local-def-attribute

    def attach_log(self, path):
        self.log = open(path)  # MARK: resource-attribute-open

    def attach_lock(self):
        self.lock = threading.Lock()  # MARK: resource-attribute-lock

    def process_batch(self, a, b, sign=None):
        pass

    def finalize(self):
        return self

    def split(self, n_shards):
        return [Summary(self.k) for _ in range(n_shards)]

    def merge(self, other):
        return self


def rogue_segment(size):
    return shared_memory.SharedMemory(create=True, size=size)  # MARK: shm
