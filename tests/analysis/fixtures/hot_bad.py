"""Known-bad hot-path fixture: per-item loops over batch parameters."""


class ZipWalker:
    def process_batch(self, a, b, sign=None):
        total = 0
        for item, witness in zip(a.tolist(), b.tolist()):  # MARK: zip-loop
            total += item + witness
        self.total = total

    def finalize(self):
        return self.total


class IndexWalker:
    def update_batch(self, deltas, indices):
        for i in range(len(deltas)):  # MARK: range-len-loop
            self.apply(indices[i], deltas[i])

    def apply(self, index, delta):
        pass


class EnumerateWalker:
    def observe_batch(self, a, b, degree_after):
        for offset, degree in enumerate(degree_after):  # MARK: enum-loop
            self.note(offset, degree)

    def note(self, offset, degree):
        pass
