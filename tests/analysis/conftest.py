"""Shared helpers for the analyzer tests (exposed as fixtures, since
the test tree is package-less)."""

import importlib.util
import sys
from pathlib import Path
from types import ModuleType
from typing import Callable

import pytest

from repro.analysis import ModuleSource

FIXTURES = Path(__file__).parent / "fixtures"


def _load_source(name: str) -> ModuleSource:
    """Fixture file as the analyzer sees it (display path = file name)."""
    path = FIXTURES / f"{name}.py"
    return ModuleSource.load(path, f"{name}.py")


def _marked_line(source: ModuleSource, mark: str) -> int:
    """1-indexed line carrying ``# MARK: <mark>`` — the tests' way of
    asserting exact diagnostic lines without hardcoding integers."""
    needle = f"# MARK: {mark}"
    for lineno, text in enumerate(source.text.splitlines(), start=1):
        if text.rstrip().endswith(needle):
            return lineno
    raise AssertionError(f"no '{needle}' in {source.display_path}")


def _import_fixture(name: str) -> ModuleType:
    """Import a fixture module under a stable name so pickle can
    resolve its classes by module path."""
    module_name = f"repro_analysis_fixture_{name}"
    if module_name in sys.modules:
        return sys.modules[module_name]
    spec = importlib.util.spec_from_file_location(
        module_name, FIXTURES / f"{name}.py"
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def load_source() -> Callable[[str], ModuleSource]:
    return _load_source


@pytest.fixture()
def marked_line() -> Callable[[ModuleSource, str], int]:
    return _marked_line


@pytest.fixture()
def import_fixture() -> Callable[[str], ModuleType]:
    return _import_fixture


@pytest.fixture()
def fixtures_dir() -> Path:
    return FIXTURES
