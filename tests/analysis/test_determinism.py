"""Determinism rule family: exact rule ids and line numbers."""

from repro.analysis import check_determinism


class TestDeterminismBad:
    def test_exact_rule_and_line_set(self, load_source, marked_line):
        source = load_source("det_bad")
        findings = check_determinism(source)
        expected = {
            ("determinism/global-random", marked_line(source, "global-random")),
            (
                "determinism/legacy-np-random",
                marked_line(source, "legacy-np-random"),
            ),
            (
                "determinism/legacy-np-random",
                marked_line(source, "legacy-np-random-alias"),
            ),
            ("determinism/wall-clock", marked_line(source, "wall-clock")),
            ("determinism/os-entropy", marked_line(source, "os-entropy")),
            ("determinism/uuid", marked_line(source, "uuid")),
            ("determinism/unseeded-rng", marked_line(source, "unseeded-rng")),
        }
        assert {(f.rule, f.line) for f in findings} == expected

    def test_every_finding_names_the_fixture_and_has_a_hint(self, load_source):
        findings = check_determinism(load_source("det_bad"))
        assert findings
        for finding in findings:
            assert finding.path == "det_bad.py"
            assert finding.hint
            assert not finding.advisory


class TestDeterminismGood:
    def test_clean(self, load_source):
        assert check_determinism(load_source("det_good")) == []
