"""Fork/pickle-safety rule family: exact rule ids and line numbers."""

from pathlib import Path

from repro.analysis import ModuleSource, check_forksafe


class TestForksafeBad:
    def test_exact_rule_and_line_set(self, load_source, marked_line):
        source = load_source("fork_bad")
        findings = check_forksafe(source)
        expected = {
            (
                "forksafe/lambda-attribute",
                marked_line(source, "lambda-attribute"),
            ),
            (
                "forksafe/local-def-attribute",
                marked_line(source, "local-def-attribute"),
            ),
            (
                "forksafe/resource-attribute",
                marked_line(source, "resource-attribute-open"),
            ),
            (
                "forksafe/resource-attribute",
                marked_line(source, "resource-attribute-lock"),
            ),
            ("forksafe/shm-outside-engine", marked_line(source, "shm")),
        }
        assert {(f.rule, f.line) for f in findings} == expected

    def test_problems_name_class_method_and_attribute(self, load_source):
        source = load_source("fork_bad")
        by_rule = {f.rule: f for f in check_forksafe(source)}
        lambda_finding = by_rule["forksafe/lambda-attribute"]
        assert "Summary.__init__" in lambda_finding.problem
        assert "self.score" in lambda_finding.problem


class TestForksafeGood:
    def test_driver_side_resources_allowed(self, load_source):
        assert check_forksafe(load_source("fork_good")) == []


class TestShmHome:
    def test_engine_shm_module_itself_is_exempt(self):
        source = ModuleSource.load(
            Path("src/repro/engine/shm.py"), "repro/engine/shm.py"
        )
        rules = {f.rule for f in check_forksafe(source)}
        assert "forksafe/shm-outside-engine" not in rules
