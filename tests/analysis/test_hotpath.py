"""Hot-path rule family: exact rule ids and line numbers."""

from repro.analysis import analyze, check_hotpath


class TestHotpathBad:
    def test_exact_rule_and_line_set(self, load_source, marked_line):
        source = load_source("hot_bad")
        findings = check_hotpath(source)
        expected = {
            ("hotpath/scalar-loop", marked_line(source, "zip-loop")),
            ("hotpath/scalar-loop", marked_line(source, "range-len-loop")),
            ("hotpath/scalar-loop", marked_line(source, "enum-loop")),
        }
        assert {(f.rule, f.line) for f in findings} == expected

    def test_problem_names_class_and_method(self, load_source):
        problems = [f.problem for f in check_hotpath(load_source("hot_bad"))]
        assert any("ZipWalker.process_batch" in p for p in problems)
        assert any("IndexWalker.update_batch" in p for p in problems)
        assert any("EnumerateWalker.observe_batch" in p for p in problems)


class TestHotpathGood:
    def test_derived_iteration_not_flagged(self, load_source):
        """np.unique keys and self-state loops are the fused-kernel
        idiom; the rule only watches the raw batch parameters."""
        findings = check_hotpath(load_source("hot_good"))
        # AnnotatedWalker's loop *is* detected; suppression happens in
        # the runner, so here exactly that one finding surfaces.
        assert [(f.rule, f.problem.split()[-1]) for f in findings] == [
            ("hotpath/scalar-loop", "AnnotatedWalker.process_batch")
        ]

    def test_annotated_loop_suppressed_end_to_end(self, fixtures_dir):
        report = analyze(
            [fixtures_dir / "hot_good.py"],
            root=fixtures_dir,
            audit=False,
        )
        assert [d for d in report.diagnostics if not d.advisory] == []
