"""Protocol-conformance lints against deliberately broken registries."""

import pytest

from repro.analysis import check_protocol
from repro.pipeline.registry import Entry, Param, Registry


def _rules_for(findings, name):
    return sorted(
        f.rule for f in findings if f"processor {name!r}" in f.problem
    )


@pytest.fixture()
def broken_registry(import_fixture):
    module = import_fixture("proto_fixture")
    registry = Registry("processor")

    def add(name, cls, *, mergeable, routing=None):
        registry.register(
            Entry(
                name=name,
                factory=cls,
                params=(Param("k", int, 4),),
                kind="test",
                routing=routing,
                mergeable=mergeable,
            )
        )

    add("good", module.GoodSummary, mergeable=True, routing="any")
    add("no-batch", module.NoBatch, mergeable=False)
    add("bad-arity", module.BadArity, mergeable=True, routing="any")
    add("secretly", module.SecretlyMergeable, mergeable=False)
    add("not-actually", module.NotActuallyMergeable, mergeable=True)
    add("routing-clash", module.RoutingClash, mergeable=True, routing="vertex")
    return registry


class TestBrokenRegistry:
    def test_conformant_entry_is_clean(self, broken_registry):
        findings = check_protocol(broken_registry)
        assert _rules_for(findings, "good") == []

    def test_missing_engine_surface(self, broken_registry):
        findings = check_protocol(broken_registry)
        assert _rules_for(findings, "no-batch") == ["protocol/missing-method"]
        problems = [f.problem for f in findings if "no-batch" in f.problem]
        assert any("process_batch" in p for p in problems)

    def test_split_merge_arity(self, broken_registry):
        findings = check_protocol(broken_registry)
        assert _rules_for(findings, "bad-arity") == [
            "protocol/signature-arity",
            "protocol/signature-arity",
        ]
        problems = [f.problem for f in findings if "bad-arity" in f.problem]
        assert any("split" in p for p in problems)
        assert any("merge" in p for p in problems)

    def test_mergeable_false_on_mergeable_class(self, broken_registry):
        findings = check_protocol(broken_registry)
        assert _rules_for(findings, "secretly") == [
            "protocol/metadata-mismatch"
        ]

    def test_mergeable_true_without_the_surface(self, broken_registry):
        findings = check_protocol(broken_registry)
        # split, merge and shard_routing are each reported
        assert _rules_for(findings, "not-actually") == [
            "protocol/metadata-mismatch"
        ] * 3

    def test_routing_metadata_contradicts_class(self, broken_registry):
        findings = check_protocol(broken_registry)
        assert _rules_for(findings, "routing-clash") == [
            "protocol/metadata-mismatch"
        ]

    def test_findings_anchor_at_the_implementing_file(
        self, broken_registry, fixtures_dir
    ):
        findings = check_protocol(broken_registry, root=fixtures_dir)
        assert findings
        for finding in findings:
            assert finding.path == "proto_fixture.py"
            assert finding.line > 0
            assert finding.hint


class TestShippedRegistry:
    def test_processors_registry_is_conformant(self):
        assert check_protocol() == []
