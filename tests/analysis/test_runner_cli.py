"""Runner + CLI surface: --json schema, exit codes, --diff, acceptance."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze, render_json
from repro.cli import main
from repro.pipeline.registry import Registry

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


class TestJsonSchema:
    def test_shape_and_sorting(self, fixtures_dir):
        report = analyze(
            [fixtures_dir / "det_bad.py", fixtures_dir / "hot_bad.py"],
            root=fixtures_dir,
            registry=Registry("processor"),
            audit=False,
        )
        payload = render_json(
            report.diagnostics, files_scanned=report.files_scanned
        )
        assert payload["version"] == 1
        assert payload["summary"]["files_scanned"] == 2
        assert payload["summary"]["errors"] == len(report.errors)
        assert payload["summary"]["advisories"] == len(report.advisories)
        rows = payload["diagnostics"]
        assert rows, "fixtures must produce findings"
        for row in rows:
            assert set(row) == {
                "rule", "path", "line", "problem", "hint", "advisory",
            }
            assert isinstance(row["line"], int)
            assert isinstance(row["advisory"], bool)
        assert rows == sorted(
            rows, key=lambda r: (r["path"], r["line"], r["rule"], r["problem"])
        )
        json.dumps(payload)  # round-trippable without custom encoders


class TestSyntaxError:
    def test_unparsable_file_reports_and_continues(self, tmp_path):
        bad = tmp_path / "busted.py"
        bad.write_text("def broken(:\n")
        report = analyze(
            [bad],
            root=tmp_path,
            registry=Registry("processor"),
            audit=False,
        )
        assert [(d.rule, d.path) for d in report.diagnostics] == [
            ("parse/syntax-error", "busted.py")
        ]
        assert report.files_scanned == 0


class TestCli:
    def test_clean_tree_strict_exits_zero(self, capsys):
        """Acceptance gate: the shipped tree has no findings."""
        assert main(["analyze", "--strict", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out

    def test_findings_exit_one_and_json_parses(self, capsys, fixtures_dir):
        code = main(
            ["analyze", "--json", "--no-audit",
             str(fixtures_dir / "det_bad.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {row["rule"] for row in payload["diagnostics"]}
        assert "determinism/global-random" in rules

    def test_missing_path_exits_two(self, capsys):
        assert main(["analyze", "definitely/not/a/path.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_bad_diff_revision_exits_two(self, capsys):
        code = main(["analyze", "--diff", "not-a-revision", str(SRC)])
        assert code == 2
        assert "--diff" in capsys.readouterr().err


class TestDiffMode:
    @pytest.fixture()
    def temp_repo(self, tmp_path):
        def git(*argv):
            subprocess.run(
                ["git", "-C", str(tmp_path), *argv],
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("config", "user.email", "t@example.invalid")
        git("config", "user.name", "t")
        (tmp_path / "old.py").write_text(
            "import random\nrandom.shuffle([])\n"
        )
        git("add", "old.py")
        git("commit", "-q", "-m", "seed")
        (tmp_path / "new.py").write_text(
            "import random\nrandom.random()\n"
        )
        return tmp_path

    def test_only_changed_files_are_reported(self, temp_repo):
        report = analyze(
            [temp_repo],
            root=temp_repo,
            diff_rev="HEAD",
            registry=Registry("processor"),
            audit=False,
        )
        # old.py is dirty too but unchanged since HEAD; only the new
        # (untracked) file is in scope
        assert {d.path for d in report.diagnostics} == {"new.py"}
        assert report.files_scanned == 1

    def test_committed_changes_count_against_older_revs(self, temp_repo):
        subprocess.run(
            ["git", "-C", str(temp_repo), "add", "new.py"],
            check=True,
            capture_output=True,
        )
        subprocess.run(
            ["git", "-C", str(temp_repo), "commit", "-q", "-m", "more"],
            check=True,
            capture_output=True,
        )
        report = analyze(
            [temp_repo],
            root=temp_repo,
            diff_rev="HEAD~1",
            registry=Registry("processor"),
            audit=False,
        )
        assert {d.path for d in report.diagnostics} == {"new.py"}


class TestInterpreterEntryPoint:
    def test_python_dash_m_repro_analyze(self):
        """The CI invocation, end to end in a subprocess."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "analyze", "--strict"],
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
