"""Runtime contract auditor against deliberately broken registries."""

import pytest

from repro.analysis import audit_registry
from repro.pipeline.registry import Entry, Param, Registry


def _rules_for(findings, name):
    return sorted(
        f.rule for f in findings if f"processor {name!r}" in f.problem
    )


@pytest.fixture()
def audited(import_fixture):
    module = import_fixture("proto_fixture")
    registry = Registry("processor")

    def add(name, cls, *, mergeable, routing=None, params=(Param("k", int, 4),)):
        registry.register(
            Entry(
                name=name,
                factory=cls,
                params=params,
                kind="test",
                routing=routing,
                mergeable=mergeable,
            )
        )

    add("good", module.GoodSummary, mergeable=True, routing="any")
    add("unpicklable", module.UnpicklableSummary, mergeable=True, routing="any")
    add("broken-split", module.BrokenSplit, mergeable=True, routing="any")
    add("secretly", module.SecretlyMergeable, mergeable=False)
    add("not-actually", module.NotActuallyMergeable, mergeable=True, params=())
    add(
        "unbuildable",
        module.GoodSummary,
        mergeable=True,
        routing="any",
        params=(Param("zeta", int),),  # required, no audit value anywhere
    )
    return audit_registry(registry)


class TestBrokenRegistry:
    def test_conformant_entry_is_clean(self, audited):
        assert _rules_for(audited, "good") == []

    def test_pickle_roundtrip_catches_runtime_lock(self, audited):
        # the lock only appears once process_batch has run — exactly the
        # state the static forksafe rules cannot see
        assert "audit/pickle-roundtrip" in _rules_for(audited, "unpicklable")

    def test_split_identity(self, audited):
        assert "audit/split-identity" in _rules_for(audited, "broken-split")

    def test_capability_exceeds_metadata(self, audited):
        assert _rules_for(audited, "secretly") == ["audit/metadata-capability"]

    def test_metadata_exceeds_capability(self, audited):
        assert _rules_for(audited, "not-actually") == [
            "audit/metadata-capability"
        ]

    def test_unbuildable_entry_reported_not_crashed(self, audited):
        assert _rules_for(audited, "unbuildable") == ["audit/unbuildable"]


class TestShippedRegistry:
    def test_processors_registry_passes_the_audit(self):
        assert audit_registry() == []
