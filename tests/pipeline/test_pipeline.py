"""Pipeline execution: backends, sources, probes, typed results."""

import json

import numpy as np
import pytest

from repro.pipeline import (
    Pipeline,
    SourceSpec,
    SpecError,
    open_source,
    run_spec,
)
from repro.streams.columnar import ColumnarEdgeStream
from repro.streams.generators import GeneratorConfig, zipf_frequency_stream
from repro.streams.persist import dump_stream


def zipf_columnar(records=2000, n=64, seed=61):
    stream = zipf_frequency_stream(
        GeneratorConfig(n=n, m=records, seed=seed), n_records=records
    )
    return ColumnarEdgeStream.from_edge_stream(stream)


def basic_builder(stream, **processor_params):
    params = {"n": stream.n, "d": 8, "alpha": 2, "seed": 1, **processor_params}
    return (
        Pipeline.builder()
        .memory(stream)
        .chunk_size(256)
        .processor("insertion-only", label="alg2", **params)
    )


def windowed_builder(stream, policy, window, **window_params):
    """Like basic_builder, but seedless processor params (a processor
    seed under a window spec is a validation conflict — buckets are
    seeded from window.seed)."""
    return (
        Pipeline.builder()
        .memory(stream)
        .chunk_size(256)
        .processor("insertion-only", label="alg2", n=stream.n, d=8, alpha=2)
        .window(policy, window, seed=1, **window_params)
    )


class TestBackends:
    def test_fanout_and_serial_agree(self):
        stream = zipf_columnar()
        fanout = basic_builder(stream).build().run()
        serial = basic_builder(stream).serial().build().run()
        assert fanout["alg2"] == serial["alg2"]
        assert fanout.report.backend == "fanout"
        assert serial.report.backend == "serial"

    def test_sharded_keeps_the_guarantee(self):
        stream = zipf_columnar()
        fanout = basic_builder(stream).build().run()
        sharded = basic_builder(stream).sharded(2).build().run()
        # Per the PR 3 taxonomy Algorithm 2 with evicting reservoirs is
        # guarantee-identical (not bit-identical) under sharding: both
        # answers must certify a heavy vertex, possibly different ones.
        assert fanout["alg2"].size >= 4 and sharded["alg2"].size >= 4
        assert sharded.report.workers == 2
        assert sharded.report.routing == "vertex"

    def test_multiple_processors_one_pass(self):
        stream = zipf_columnar()
        result = (
            basic_builder(stream)
            .processor("misra-gries", k=8)
            .processor("count-min", epsilon=0.01, delta=0.01, seed=2)
            .build()
            .run()
        )
        assert set(result.labels()) == {"alg2", "misra-gries", "count-min"}
        assert result.space_words()["misra-gries"] > 0

    def test_same_processor_twice_with_labels(self):
        stream = zipf_columnar()
        result = (
            basic_builder(stream)
            .processor("insertion-only", label="alg2-strict",
                       n=stream.n, d=8, alpha=1, seed=1)
            .build()
            .run()
        )
        assert "alg2" in result and "alg2-strict" in result


class TestSources:
    def test_file_source_round_trip(self, tmp_path):
        stream = zipf_columnar()
        path = tmp_path / "stream.npz"
        dump_stream(stream, path, format="v2")
        from_file = (
            Pipeline.builder()
            .file(path)
            .processor("insertion-only", label="alg2", n=stream.n, d=8,
                       alpha=2, seed=1)
            .build()
            .run()
        )
        in_memory = basic_builder(stream).build().run()
        assert from_file["alg2"] == in_memory["alg2"]
        assert from_file.report.source["path"] == str(path)

    def test_mmap_file_source(self, tmp_path):
        stream = zipf_columnar()
        path = tmp_path / "stream.npz"
        dump_stream(stream, path, format="v2")
        result = (
            Pipeline.builder()
            .file(path, mmap=True, readahead=True, readahead_depth=2)
            .processor("insertion-only", label="alg2", n=stream.n, d=8,
                       alpha=2, seed=1)
            .build()
            .run()
        )
        assert result["alg2"] == basic_builder(stream).build().run()["alg2"]
        assert result.stream is None  # mmap never materialises

    def test_mmap_v1_file_is_a_spec_error(self, tmp_path):
        path = tmp_path / "stream.txt"
        path.write_text("# feww-stream v1 n=4 m=4\n+ 0 1\n")
        spec = SourceSpec.from_file(path, mmap=True)
        with pytest.raises(SpecError, match="requires a v2"):
            open_source(spec)

    def test_generator_source_equals_memory_source(self):
        result = (
            Pipeline.builder()
            .generator("zipf", n=64, m=2000, d=250, seed=61)
            .processor("insertion-only", label="alg2", n=64, d=8, alpha=2,
                       seed=1)
            .build()
            .run()
        )
        # The zipf workload derives n_records = min(m, 8 * d) = 2000.
        direct = basic_builder(zipf_columnar()).build().run()
        assert result["alg2"] == direct["alg2"]

    def test_edge_stream_memory_source_is_columnarised(self):
        stream = zipf_frequency_stream(
            GeneratorConfig(n=64, m=500, seed=61), n_records=500
        )
        opened = open_source(SourceSpec.memory(stream))
        assert isinstance(opened.stream, ColumnarEdgeStream)
        assert len(opened) == len(stream)

    def test_builder_requires_a_source(self):
        with pytest.raises(SpecError, match="needs a source"):
            Pipeline.builder().processor("misra-gries", k=4).build()


class TestProbes:
    def probe_pipeline(self, stream):
        return windowed_builder(
            stream, "sliding", 500, bucket_ratio=0.25
        ).build()

    def test_probe_positions_and_spans(self):
        stream = zipf_columnar()
        result = self.probe_pipeline(stream).run(probe_every=512)
        assert [probe.position for probe in result.probes] == [512, 1024, 1536]
        for probe in result.probes:
            answer = probe.answers["alg2"]
            assert answer.end_update == probe.position
            span_limit = 500 + answer.bucket
            assert answer.span <= min(span_limit, probe.position)

    def test_probing_does_not_change_the_final_answer(self):
        stream = zipf_columnar()
        probed = self.probe_pipeline(stream).run(probe_every=512)
        unprobed = self.probe_pipeline(stream).run()
        assert probed["alg2"].start_update == unprobed["alg2"].start_update
        assert probed["alg2"].value == unprobed["alg2"].value

    def test_probe_requires_window(self):
        stream = zipf_columnar()
        with pytest.raises(SpecError, match="requires a window"):
            basic_builder(stream).build().run(probe_every=100)

    def test_probe_requires_fanout_backend(self):
        stream = zipf_columnar()
        pipeline = (
            windowed_builder(stream, "tumbling", 500).sharded(2).build()
        )
        with pytest.raises(SpecError, match="fanout backend"):
            pipeline.run(probe_every=100)

    def test_probe_every_must_be_positive(self):
        stream = zipf_columnar()
        with pytest.raises(SpecError, match=">= 1"):
            self.probe_pipeline(stream).run(probe_every=0)


class TestResults:
    def test_result_to_dict_is_json_serializable(self):
        stream = zipf_columnar()
        result = (
            windowed_builder(stream, "decay", 256, keep=2)
            .processor("misra-gries", k=8)
            .build()
            .run()
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["report"]["backend"] == "fanout"
        assert payload["report"]["n_updates"] == len(stream)
        assert payload["answers"]["alg2"]["type"] == "decay"
        assert payload["report"]["routing"] == ["window", 256]

    def test_neighbourhood_answers_describe_fully(self):
        stream = zipf_columnar()
        payload = basic_builder(stream).build().run().to_dict()
        answer = payload["answers"]["alg2"]
        assert answer["type"] == "neighbourhood"
        assert answer["size"] == len(answer["witnesses"])

    def test_report_rates_are_consistent(self):
        stream = zipf_columnar()
        report = basic_builder(stream).build().run().report
        assert report.n_updates == len(stream)
        assert report.elapsed_s > 0
        assert report.updates_per_s == pytest.approx(
            report.n_updates / report.elapsed_s
        )

    def test_run_spec_one_shot(self):
        result = run_spec({
            "source": {"kind": "generator", "generator": "star",
                       "params": {"n": 32, "m": 128, "d": 8, "seed": 2}},
            "processors": [{"name": "insertion-only",
                            "params": {"n": 32, "d": 8, "seed": 2}}],
        })
        assert result["insertion-only"] is not None


class TestWindowedRuns:
    @pytest.mark.parametrize("policy,expected_type", [
        ("tumbling", list),
        ("sliding", object),
        ("decay", object),
    ])
    def test_each_policy_runs_through_pipeline(self, policy, expected_type):
        stream = zipf_columnar()
        result = windowed_builder(stream, policy, 500).build().run()
        assert result["alg2"] is not None
        assert result.report.window["policy"] == policy

    def test_windowed_sharded_matches_single_core(self):
        stream = zipf_columnar()

        def run(workers):
            builder = windowed_builder(stream, "tumbling", 500)
            if workers > 1:
                builder = builder.sharded(workers)
            return builder.build().run()["alg2"]

        single = run(1)
        assert run(2) == single
        assert run(4) == single
