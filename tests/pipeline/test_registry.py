"""Registry behaviour: lookup, typed parameter binding, extension."""

import pickle

import pytest

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.pipeline import (
    GENERATORS,
    PROCESSORS,
    Param,
    ParamError,
    RegistryWindowFactory,
    UnknownNameError,
    register_processor,
)


class TestLookup:
    def test_builtin_processors_present(self):
        for name in ("insertion-only", "insertion-deletion", "misra-gries",
                     "count-min", "count-sketch", "space-saving", "topk",
                     "star-detection", "full-storage"):
            assert name in PROCESSORS

    def test_builtin_generators_present(self):
        for name in ("star", "cascade", "adversarial", "zipf", "churn",
                     "random-bipartite"):
            assert name in GENERATORS

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(UnknownNameError) as excinfo:
            PROCESSORS.get("insertion-onli")
        assert "insertion-only" in str(excinfo.value)
        assert "insertion-only" in excinfo.value.suggestions

    def test_unknown_name_without_match_lists_registry(self):
        with pytest.raises(UnknownNameError) as excinfo:
            GENERATORS.get("qqqqq")
        assert "zipf" in str(excinfo.value)  # the full inventory

    def test_describe_lists_every_entry(self):
        text = PROCESSORS.describe()
        for name in PROCESSORS.names():
            assert name in text


class TestParamBinding:
    def test_defaults_applied(self):
        entry = PROCESSORS.get("insertion-only")
        bound = entry.bind({"n": 8, "d": 4})
        assert bound == {"n": 8, "d": 4, "alpha": 2, "seed": 0}

    def test_missing_required_is_reported(self):
        with pytest.raises(ParamError, match=r"missing required.*\['n', 'd'\]"):
            PROCESSORS.get("insertion-only").bind({})

    def test_unknown_param_lists_accepted(self):
        with pytest.raises(ParamError, match=r"unknown parameter.*alphas"):
            PROCESSORS.get("insertion-only").bind({"n": 8, "d": 4, "alphas": 2})

    def test_wrong_type_is_reported(self):
        with pytest.raises(ParamError, match="must be int, got str"):
            PROCESSORS.get("insertion-only").bind({"n": "8", "d": 4})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ParamError, match="must be int, got bool"):
            PROCESSORS.get("insertion-only").bind({"n": True, "d": 4})

    def test_int_accepted_for_float(self):
        bound = PROCESSORS.get("count-min").bind({"epsilon": 1, "delta": 0.1})
        assert bound["epsilon"] == 1.0 and isinstance(bound["epsilon"], float)

    def test_build_constructs_the_real_class(self):
        algorithm = PROCESSORS.build("insertion-only", {"n": 8, "d": 4})
        assert isinstance(algorithm, InsertionOnlyFEwW)
        assert algorithm.n == 8

    def test_workload_defaults_match_cli_flag_defaults(self):
        # The registry promises "an all-defaults spec equals a bare
        # `repro run`"; the values live in two places, so pin them.
        from repro.cli import build_parser

        args = build_parser().parse_args(["run"])
        for name in ("star", "cascade", "adversarial", "zipf", "churn"):
            defaults = {
                param.name: param.default
                for param in GENERATORS.get(name).params
            }
            assert defaults == {"n": args.n, "m": args.m, "d": args.d,
                                "alpha": args.alpha, "seed": args.seed}

    def test_generator_matches_direct_call(self):
        from repro.streams.generators import GeneratorConfig, planted_star_graph

        via_registry = GENERATORS.build(
            "star", {"n": 32, "m": 128, "d": 8, "seed": 3}
        )
        direct = planted_star_graph(
            GeneratorConfig(n=32, m=128, seed=3),
            star_degree=8, background_degree=min(5, 7),
        )
        assert list(via_registry) == list(direct)


class TestExtension:
    def test_register_and_build_custom_entry(self):
        class Doubler:
            def __init__(self, factor):
                self.factor = factor

        entry = register_processor(
            "test-doubler", Doubler, (Param("factor", int, 2),),
            kind="test", routing="any", doc="test entry",
        )
        try:
            assert PROCESSORS.get("test-doubler") is entry
            assert PROCESSORS.build("test-doubler", {}).factor == 2
            with pytest.raises(ValueError, match="already registered"):
                register_processor("test-doubler", Doubler)
        finally:
            PROCESSORS.unregister("test-doubler")
        assert "test-doubler" not in PROCESSORS


class TestWindowFactory:
    def test_injects_derived_seed(self):
        factory = RegistryWindowFactory.of(
            "insertion-only", {"n": 16, "d": 4, "alpha": 2}
        )
        instance = factory(12345)
        assert isinstance(instance, InsertionOnlyFEwW)
        # _seed_entropy is a deterministic function of the seed, so an
        # equal value proves the injected seed reached the constructor.
        direct = InsertionOnlyFEwW(16, 4, 2, seed=12345)
        assert instance._seed_entropy == direct._seed_entropy

    def test_matches_legacy_alg2_factory_bit_for_bit(self):
        from repro.core.windowed import Alg2WindowFactory

        legacy = Alg2WindowFactory(16, 4, 2)(999)
        modern = RegistryWindowFactory.of(
            "insertion-only", {"n": 16, "d": 4, "alpha": 2}
        )(999)
        assert legacy._seed_entropy == modern._seed_entropy
        assert (legacy.n, legacy.d, legacy.alpha) == (
            modern.n, modern.d, modern.alpha
        )

    def test_picklable(self):
        factory = RegistryWindowFactory.of("insertion-only", {"n": 8, "d": 2})
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert isinstance(clone(7), InsertionOnlyFEwW)

    def test_deterministic_entry_ignores_seed(self):
        factory = RegistryWindowFactory.of("misra-gries", {"k": 4})
        summary = factory(31337)
        assert summary.k == 4


class TestSketchEntries:
    """The PR-2 sketches ride the Pipeline like first-class processors."""

    def test_sketch_adapters_registered(self):
        for name in ("l0-bank", "bloom-dedup"):
            assert name in PROCESSORS
            assert PROCESSORS.get(name).kind == "sketch"
            assert name in PROCESSORS.describe()

    def test_build_constructs_the_adapters(self):
        from repro.sketch.bloom import BloomDedup
        from repro.sketch.l0 import L0EdgeBank

        bank = PROCESSORS.build(
            "l0-bank", {"n": 16, "m": 64, "count": 4, "seed": 9}
        )
        assert isinstance(bank, L0EdgeBank)
        dedup = PROCESSORS.build(
            "bloom-dedup", {"n": 16, "m": 64, "capacity": 256}
        )
        assert isinstance(dedup, BloomDedup)

    def test_bloom_dedup_sharded_matches_single_core(self):
        import numpy as np

        from repro.engine import run_sharded
        from repro.streams.columnar import ColumnarEdgeStream

        # 200 distinct pairs inserted, 50 deleted and re-inserted —
        # legal turnstile updates, but the *pair* repeats, which is
        # exactly what the dedup counts.
        rng = np.random.default_rng(21)
        a = rng.integers(0, 16, size=200)
        b = np.arange(200, dtype=np.int64)
        repeat = slice(0, 50)
        stream = ColumnarEdgeStream(
            np.concatenate([a, a[repeat], a[repeat]]),
            np.concatenate([b, b[repeat], b[repeat]]),
            np.concatenate([
                np.ones(200, dtype=np.int64),
                -np.ones(50, dtype=np.int64),
                np.ones(50, dtype=np.int64),
            ]),
            n=16,
            m=300,
        )
        params = {"n": 16, "m": 300, "capacity": 1024, "seed": 4}
        single = PROCESSORS.build("bloom-dedup", params)
        single.process_batch(stream.a, stream.b, stream.sign)
        sharded = run_sharded(
            {"dedup": PROCESSORS.build("bloom-dedup", params)},
            stream,
            n_workers=2,
            chunk_size=64,
        )["dedup"]
        # Vertex routing keeps pair key spaces disjoint per shard, so
        # first-arrival decisions — and both counters — are exact.
        assert single.suppressed > 0  # the workload really repeats
        assert sharded.admitted == single.admitted
        assert sharded.suppressed == single.suppressed

    def test_l0_bank_sharded_matches_single_core(self):
        import numpy as np

        from repro.engine import run_sharded
        from repro.streams.columnar import ColumnarEdgeStream

        rng = np.random.default_rng(22)
        stream = ColumnarEdgeStream(
            rng.integers(0, 8, size=300),
            np.arange(300, dtype=np.int64),
            n=8,
            m=300,
        )
        params = {"n": 8, "m": 300, "count": 6, "seed": 7, "mode": "exact"}
        single = PROCESSORS.build("l0-bank", params)
        single.process_batch(stream.a, stream.b, stream.sign)
        sharded = run_sharded(
            {"bank": PROCESSORS.build("l0-bank", params)},
            stream,
            n_workers=2,
            chunk_size=32,
        )["bank"]
        # Linear sketches merge exactly: same seeds, same samples.
        assert sharded.sample_edges() == single.sample_edges()
