"""Registry behaviour: lookup, typed parameter binding, extension."""

import pickle

import pytest

from repro.core.insertion_only import InsertionOnlyFEwW
from repro.pipeline import (
    GENERATORS,
    PROCESSORS,
    Param,
    ParamError,
    RegistryWindowFactory,
    UnknownNameError,
    register_processor,
)


class TestLookup:
    def test_builtin_processors_present(self):
        for name in ("insertion-only", "insertion-deletion", "misra-gries",
                     "count-min", "count-sketch", "space-saving", "topk",
                     "star-detection", "full-storage"):
            assert name in PROCESSORS

    def test_builtin_generators_present(self):
        for name in ("star", "cascade", "adversarial", "zipf", "churn",
                     "random-bipartite"):
            assert name in GENERATORS

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(UnknownNameError) as excinfo:
            PROCESSORS.get("insertion-onli")
        assert "insertion-only" in str(excinfo.value)
        assert "insertion-only" in excinfo.value.suggestions

    def test_unknown_name_without_match_lists_registry(self):
        with pytest.raises(UnknownNameError) as excinfo:
            GENERATORS.get("qqqqq")
        assert "zipf" in str(excinfo.value)  # the full inventory

    def test_describe_lists_every_entry(self):
        text = PROCESSORS.describe()
        for name in PROCESSORS.names():
            assert name in text


class TestParamBinding:
    def test_defaults_applied(self):
        entry = PROCESSORS.get("insertion-only")
        bound = entry.bind({"n": 8, "d": 4})
        assert bound == {"n": 8, "d": 4, "alpha": 2, "seed": 0}

    def test_missing_required_is_reported(self):
        with pytest.raises(ParamError, match=r"missing required.*\['n', 'd'\]"):
            PROCESSORS.get("insertion-only").bind({})

    def test_unknown_param_lists_accepted(self):
        with pytest.raises(ParamError, match=r"unknown parameter.*alphas"):
            PROCESSORS.get("insertion-only").bind({"n": 8, "d": 4, "alphas": 2})

    def test_wrong_type_is_reported(self):
        with pytest.raises(ParamError, match="must be int, got str"):
            PROCESSORS.get("insertion-only").bind({"n": "8", "d": 4})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ParamError, match="must be int, got bool"):
            PROCESSORS.get("insertion-only").bind({"n": True, "d": 4})

    def test_int_accepted_for_float(self):
        bound = PROCESSORS.get("count-min").bind({"epsilon": 1, "delta": 0.1})
        assert bound["epsilon"] == 1.0 and isinstance(bound["epsilon"], float)

    def test_build_constructs_the_real_class(self):
        algorithm = PROCESSORS.build("insertion-only", {"n": 8, "d": 4})
        assert isinstance(algorithm, InsertionOnlyFEwW)
        assert algorithm.n == 8

    def test_workload_defaults_match_cli_flag_defaults(self):
        # The registry promises "an all-defaults spec equals a bare
        # `repro run`"; the values live in two places, so pin them.
        from repro.cli import build_parser

        args = build_parser().parse_args(["run"])
        for name in ("star", "cascade", "adversarial", "zipf", "churn"):
            defaults = {
                param.name: param.default
                for param in GENERATORS.get(name).params
            }
            assert defaults == {"n": args.n, "m": args.m, "d": args.d,
                                "alpha": args.alpha, "seed": args.seed}

    def test_generator_matches_direct_call(self):
        from repro.streams.generators import GeneratorConfig, planted_star_graph

        via_registry = GENERATORS.build(
            "star", {"n": 32, "m": 128, "d": 8, "seed": 3}
        )
        direct = planted_star_graph(
            GeneratorConfig(n=32, m=128, seed=3),
            star_degree=8, background_degree=min(5, 7),
        )
        assert list(via_registry) == list(direct)


class TestExtension:
    def test_register_and_build_custom_entry(self):
        class Doubler:
            def __init__(self, factor):
                self.factor = factor

        entry = register_processor(
            "test-doubler", Doubler, (Param("factor", int, 2),),
            kind="test", routing="any", doc="test entry",
        )
        try:
            assert PROCESSORS.get("test-doubler") is entry
            assert PROCESSORS.build("test-doubler", {}).factor == 2
            with pytest.raises(ValueError, match="already registered"):
                register_processor("test-doubler", Doubler)
        finally:
            PROCESSORS.unregister("test-doubler")
        assert "test-doubler" not in PROCESSORS


class TestWindowFactory:
    def test_injects_derived_seed(self):
        factory = RegistryWindowFactory.of(
            "insertion-only", {"n": 16, "d": 4, "alpha": 2}
        )
        instance = factory(12345)
        assert isinstance(instance, InsertionOnlyFEwW)
        # _seed_entropy is a deterministic function of the seed, so an
        # equal value proves the injected seed reached the constructor.
        direct = InsertionOnlyFEwW(16, 4, 2, seed=12345)
        assert instance._seed_entropy == direct._seed_entropy

    def test_matches_legacy_alg2_factory_bit_for_bit(self):
        from repro.core.windowed import Alg2WindowFactory

        legacy = Alg2WindowFactory(16, 4, 2)(999)
        modern = RegistryWindowFactory.of(
            "insertion-only", {"n": 16, "d": 4, "alpha": 2}
        )(999)
        assert legacy._seed_entropy == modern._seed_entropy
        assert (legacy.n, legacy.d, legacy.alpha) == (
            modern.n, modern.d, modern.alpha
        )

    def test_picklable(self):
        factory = RegistryWindowFactory.of("insertion-only", {"n": 8, "d": 2})
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert isinstance(clone(7), InsertionOnlyFEwW)

    def test_deterministic_entry_ignores_seed(self):
        factory = RegistryWindowFactory.of("misra-gries", {"k": 4})
        summary = factory(31337)
        assert summary.k == 4
