"""Spec serialization round-trips and eager validation diagnostics."""

import dataclasses
import json

import pytest

from repro.pipeline import (
    CheckpointSpec,
    ExecSpec,
    Pipeline,
    PipelineSpec,
    PipelineValidationError,
    ProcessorSpec,
    SourceSpec,
    SpecError,
    WindowSpec,
    validate_spec,
)
from repro.streams.columnar import ColumnarEdgeStream

import numpy as np


def tiny_stream():
    return ColumnarEdgeStream(
        np.array([0, 1, 2]), np.array([0, 1, 2]), n=4, m=4
    )


def spec_variants():
    """A representative spread of valid specs (id, spec) pairs."""
    generator = SourceSpec.from_generator(
        "zipf", {"n": 64, "m": 512, "d": 16, "seed": 3}, chunk_size=128
    )
    alg2 = ProcessorSpec("insertion-only", {"n": 64, "d": 16}, label="alg2")
    return [
        ("minimal", PipelineSpec(generator, (alg2,))),
        (
            "windowed",
            PipelineSpec(
                generator,
                (alg2,),
                window=WindowSpec("sliding", 256, bucket_ratio=0.5, seed=9),
            ),
        ),
        (
            "sharded-file",
            PipelineSpec(
                SourceSpec.from_file(
                    "stream.npz", mmap=True, readahead=True,
                    readahead_depth=3,
                ),
                (alg2, ProcessorSpec("misra-gries", {"k": 8})),
                execution=ExecSpec("sharded", 4),
            ),
        ),
        (
            "decay-serial",
            PipelineSpec(
                generator,
                (alg2,),
                window=WindowSpec("decay", 64, keep=2),
                execution=ExecSpec("serial"),
            ),
        ),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec", [spec for _, spec in spec_variants()],
        ids=[name for name, _ in spec_variants()],
    )
    def test_from_dict_to_dict_is_identity(self, spec):
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "spec", [spec for _, spec in spec_variants()],
        ids=[name for name, _ in spec_variants()],
    )
    def test_survives_actual_json(self, spec):
        text = json.dumps(spec.to_dict())
        assert PipelineSpec.from_dict(json.loads(text)) == spec

    def test_defaults_are_omitted_from_dicts(self):
        spec = PipelineSpec(
            SourceSpec.from_generator("star"),
            (ProcessorSpec("insertion-only", {"n": 8, "d": 2}),),
        )
        data = spec.to_dict()
        assert data["source"] == {"kind": "generator", "generator": "star"}
        assert "window" not in data and "execution" not in data
        assert "label" not in data["processors"][0]

    def test_pipeline_objects_compare_by_spec(self):
        _, spec = spec_variants()[0]
        assert Pipeline(spec) == Pipeline.from_dict(spec.to_dict())


class TestSerializationErrors:
    def test_memory_source_refuses_to_serialize(self):
        spec = SourceSpec.memory(tiny_stream())
        with pytest.raises(SpecError, match="cannot be serialized"):
            spec.to_dict()

    def test_unknown_source_field_is_reported(self):
        with pytest.raises(SpecError, match=r"unknown field\(s\) \['mmaps'\]"):
            SourceSpec.from_dict({"kind": "file", "path": "x", "mmaps": True})

    def test_stream_is_not_an_accepted_dict_field(self):
        with pytest.raises(SpecError, match="unknown field"):
            SourceSpec.from_dict({"kind": "memory", "stream": object()})

    def test_missing_required_pipeline_fields(self):
        with pytest.raises(SpecError, match=r"missing required field\(s\)"):
            PipelineSpec.from_dict({"source": {"kind": "generator",
                                               "generator": "star"}})

    def test_processors_must_be_a_list(self):
        with pytest.raises(SpecError, match="must be a list"):
            PipelineSpec.from_dict(
                {"source": {"kind": "generator", "generator": "star"},
                 "processors": {"name": "insertion-only"}}
            )

    def test_bad_json_text(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            Pipeline.from_json("{nope")

    def test_missing_required_subfield_is_a_spec_error(self):
        # Never a raw TypeError — --spec feeds arbitrary JSON here.
        with pytest.raises(SpecError, match=r"missing required field\(s\) \['kind'\]"):
            SourceSpec.from_dict({})
        with pytest.raises(SpecError, match=r"\['policy', 'window'\]"):
            WindowSpec.from_dict({})
        with pytest.raises(SpecError, match=r"\['name'\]"):
            PipelineSpec.from_dict({
                "source": {"kind": "generator", "generator": "star"},
                "processors": [{}],
            })

    def test_mistyped_scalars_become_diagnostics(self):
        spec = PipelineSpec.from_dict({
            "source": {"kind": "generator", "generator": "star",
                       "chunk_size": "big", "mmap": 1},
            "processors": [{"name": "insertion-only",
                            "params": {"n": 8, "d": 2}}],
            "window": {"policy": "tumbling", "window": "wide"},
            "execution": {"backend": "fanout", "workers": True},
        })
        fields = {d.field for d in validate_spec(spec)}
        assert {"source.chunk_size", "source.mmap", "window.window",
                "execution.workers"} <= fields
        with pytest.raises(PipelineValidationError):
            Pipeline(spec)


def diagnostics_of(spec):
    return {d.field: d for d in validate_spec(spec)}


class TestValidationDiagnostics:
    def good(self):
        return PipelineSpec(
            SourceSpec.from_generator("star", {"n": 32, "m": 128, "d": 8}),
            (ProcessorSpec("insertion-only", {"n": 32, "d": 8}),),
        )

    def test_good_spec_has_no_diagnostics(self):
        assert validate_spec(self.good()) == []

    def test_every_conflict_reported_at_once(self):
        spec = PipelineSpec(
            SourceSpec(kind="generator", generator="zipff", mmap=True,
                       chunk_size=0),
            (ProcessorSpec("insertion-only", {"n": 8}),),
            execution=ExecSpec("serial", 4),
        )
        fields = set(diagnostics_of(spec))
        assert {"source.generator", "source.mmap", "source.chunk_size",
                "processors[0].name", "execution.workers"} <= fields

    def test_constructing_pipeline_raises_them_all(self):
        spec = PipelineSpec(
            SourceSpec(kind="generator", generator="zipff", mmap=True),
            (),
        )
        with pytest.raises(PipelineValidationError) as excinfo:
            Pipeline(spec)
        assert len(excinfo.value.diagnostics) >= 3
        assert "conflicts" in str(excinfo.value)

    def test_unknown_kind_and_backend_and_policy(self):
        spec = PipelineSpec(
            SourceSpec(kind="s3"),
            (ProcessorSpec("insertion-only", {"n": 8, "d": 2}),),
            window=WindowSpec("hopping", 0, bucket_ratio=2.0, keep=0),
            execution=ExecSpec("spark"),
        )
        fields = diagnostics_of(spec)
        assert "source.kind" in fields
        assert "window.policy" in fields
        assert "window.window" in fields
        assert "window.bucket_ratio" in fields
        assert "window.keep" in fields
        assert "execution.backend" in fields

    def test_memory_source_without_stream(self):
        spec = PipelineSpec(
            SourceSpec(kind="memory"),
            (ProcessorSpec("insertion-only", {"n": 8, "d": 2}),),
        )
        assert "source.stream" in diagnostics_of(spec)

    def test_file_source_without_path(self):
        spec = PipelineSpec(
            SourceSpec(kind="file"),
            (ProcessorSpec("insertion-only", {"n": 8, "d": 2}),),
        )
        assert "source.path" in diagnostics_of(spec)

    def test_readahead_without_mmap(self):
        spec = PipelineSpec(
            SourceSpec.from_file("x.npz", readahead=True),
            (ProcessorSpec("insertion-only", {"n": 8, "d": 2}),),
        )
        assert "source.readahead" in diagnostics_of(spec)

    def test_readahead_depth_must_be_positive(self):
        spec = PipelineSpec(
            SourceSpec.from_file("x.npz", mmap=True, readahead_depth=0),
            (ProcessorSpec("insertion-only", {"n": 8, "d": 2}),),
        )
        assert "source.readahead_depth" in diagnostics_of(spec)

    def test_processor_seed_under_window_is_a_conflict(self):
        spec = PipelineSpec(
            SourceSpec.from_generator("star", {"n": 32, "m": 128, "d": 8}),
            (ProcessorSpec("insertion-only", {"n": 32, "d": 8, "seed": 42}),),
            window=WindowSpec("tumbling", 64, seed=1),
        )
        diagnostic = diagnostics_of(spec)["processors[0].params"]
        assert "window.seed" in diagnostic.problem + diagnostic.hint
        # Deterministic processors have no seed param to conflict.
        no_seed = PipelineSpec(
            SourceSpec.from_generator("star", {"n": 32, "m": 128, "d": 8}),
            (ProcessorSpec("misra-gries", {"k": 8}),),
            window=WindowSpec("tumbling", 64, seed=1),
        )
        assert validate_spec(no_seed) == []

    def test_duplicate_labels(self):
        spec = PipelineSpec(
            SourceSpec.from_generator("star", {"n": 32, "m": 128, "d": 8}),
            (
                ProcessorSpec("insertion-only", {"n": 32, "d": 8}),
                ProcessorSpec("insertion-only", {"n": 32, "d": 4}),
            ),
        )
        assert "processors[1].label" in diagnostics_of(spec)

    def test_bad_param_types_surface_as_diagnostics(self):
        spec = PipelineSpec(
            SourceSpec.from_generator("star", {"n": "32"}),
            (ProcessorSpec("insertion-only", {"n": 8, "d": 2, "k": 1}),),
        )
        fields = diagnostics_of(spec)
        assert "source.generator" in fields
        assert "processors[0].name" in fields

    def test_empty_processors(self):
        spec = PipelineSpec(
            SourceSpec.from_generator("star", {"n": 32, "m": 128, "d": 8}),
            (),
        )
        assert "processors" in diagnostics_of(spec)

    def test_workers_require_sharded_backend(self):
        spec = PipelineSpec(
            SourceSpec.from_generator("star", {"n": 32, "m": 128, "d": 8}),
            (ProcessorSpec("insertion-only", {"n": 32, "d": 8}),),
            execution=ExecSpec("fanout", 2),
        )
        diagnostic = diagnostics_of(spec)["execution.workers"]
        assert "sharded" in diagnostic.hint

    def test_diagnostic_str_carries_field_and_hint(self):
        spec = PipelineSpec(
            SourceSpec(kind="generator", generator=None),
            (ProcessorSpec("insertion-only", {"n": 8, "d": 2}),),
        )
        text = str(PipelineValidationError(validate_spec(spec)))
        assert "source.generator" in text and "registered" in text


class TestFaultToleranceSpecs:
    """ExecSpec fault knobs and CheckpointSpec: round-trips + rules."""

    def full_spec(self):
        return PipelineSpec(
            SourceSpec.from_file("stream.npz"),
            (ProcessorSpec("insertion-only", {"n": 32, "d": 8}),),
            execution=ExecSpec(
                "sharded", 4, retries=5, timeout_s=30.0,
                on_failure="serial_fallback",
            ),
            checkpoint=CheckpointSpec("ckpt", every=8),
        )

    def test_round_trip_is_exact(self):
        spec = self.full_spec()
        assert PipelineSpec.from_dict(spec.to_dict()) == spec
        assert PipelineSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_defaults_are_omitted(self):
        spec = PipelineSpec(
            SourceSpec.from_file("stream.npz"),
            (ProcessorSpec("insertion-only", {"n": 32, "d": 8}),),
            execution=ExecSpec("sharded", 2),
            checkpoint=CheckpointSpec("ckpt"),
        )
        data = spec.to_dict()
        assert data["execution"] == {"backend": "sharded", "workers": 2}
        assert data["checkpoint"] == {"dir": "ckpt"}

    def test_good_fault_tolerant_spec_validates_clean(self):
        assert validate_spec(self.full_spec()) == []

    def test_negative_retries(self):
        spec = dataclasses.replace(
            self.full_spec(),
            execution=ExecSpec("sharded", 4, retries=-1),
        )
        assert "execution.retries" in diagnostics_of(spec)

    def test_timeout_must_be_positive(self):
        spec = dataclasses.replace(
            self.full_spec(),
            execution=ExecSpec("sharded", 4, timeout_s=0.0),
        )
        assert "execution.timeout_s" in diagnostics_of(spec)

    def test_unknown_failure_policy(self):
        spec = dataclasses.replace(
            self.full_spec(),
            execution=ExecSpec("sharded", 4, on_failure="panic"),
        )
        assert "execution.on_failure" in diagnostics_of(spec)

    def test_retry_policy_requires_sharded_backend(self):
        spec = dataclasses.replace(
            self.full_spec(),
            execution=ExecSpec("fanout", on_failure="retry"),
        )
        diagnostic = diagnostics_of(spec)["execution.on_failure"]
        assert "sharded" in diagnostic.problem + diagnostic.hint

    def test_checkpoint_requires_a_file_source(self):
        spec = dataclasses.replace(
            self.full_spec(),
            source=SourceSpec.from_generator(
                "star", {"n": 32, "m": 128, "d": 8}
            ),
        )
        diagnostic = diagnostics_of(spec)["checkpoint.dir"]
        assert "file source" in diagnostic.problem

    def test_checkpoint_rejects_serial_backend(self):
        spec = dataclasses.replace(
            self.full_spec(), execution=ExecSpec("serial"),
        )
        assert "checkpoint.dir" in diagnostics_of(spec)

    def test_checkpoint_every_must_be_positive(self):
        spec = dataclasses.replace(
            self.full_spec(), checkpoint=CheckpointSpec("ckpt", every=0),
        )
        assert "checkpoint.every" in diagnostics_of(spec)
