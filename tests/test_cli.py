"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_workload


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "star"
        assert args.algorithm == "insertion-only"
        assert args.alpha == 2

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])


class TestWorkloadFactory:
    @pytest.mark.parametrize(
        "workload", ["star", "cascade", "adversarial", "zipf", "churn"]
    )
    def test_every_workload_builds(self, workload):
        args = build_parser().parse_args(
            ["run", "--workload", workload, "--n", "64", "--m", "512",
             "--d", "16"]
        )
        stream = make_workload(args)
        assert len(stream) > 0

    def test_churn_contains_deletions(self):
        args = build_parser().parse_args(
            ["run", "--workload", "churn", "--n", "32", "--m", "64",
             "--d", "8"]
        )
        assert not make_workload(args).insertion_only


class TestCommands:
    def test_run_star_succeeds(self, capsys):
        code = main(
            ["run", "--workload", "star", "--n", "128", "--m", "512",
             "--d", "32", "--alpha", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified against ground truth: OK" in out
        assert "space:" in out

    def test_run_churn_with_insertion_only_rejected(self, capsys):
        code = main(
            ["run", "--workload", "churn", "--algorithm", "insertion-only",
             "--n", "32", "--m", "64", "--d", "8"]
        )
        assert code == 2
        assert "deletions" in capsys.readouterr().err

    def test_run_churn_with_turnstile_algorithm(self, capsys):
        code = main(
            ["run", "--workload", "churn", "--algorithm", "insertion-deletion",
             "--n", "32", "--m", "64", "--d", "8", "--scale", "0.3"]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_bounds_output(self, capsys):
        code = main(["bounds", "--n", "1024", "--d", "32", "--alpha", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Thm 3.2" in out
        assert "Thm 6.4" in out

    def test_bounds_alpha_one_skips_io_lower(self, capsys):
        code = main(["bounds", "--n", "1024", "--d", "32", "--alpha", "1"])
        assert code == 0
        assert "Thm 4.1+4.8" not in capsys.readouterr().out

    def test_figures_output(self, capsys):
        code = main(["figures"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Z_4 = 011110101000011" in out
        assert "Figure 3" in out
