"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, make_workload


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "star"
        assert args.algorithm == "insertion-only"
        assert args.alpha == 2

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])


class TestWorkloadFactory:
    @pytest.mark.parametrize(
        "workload", ["star", "cascade", "adversarial", "zipf", "churn"]
    )
    def test_every_workload_builds(self, workload):
        args = build_parser().parse_args(
            ["run", "--workload", workload, "--n", "64", "--m", "512",
             "--d", "16"]
        )
        stream = make_workload(args)
        assert len(stream) > 0

    def test_churn_contains_deletions(self):
        args = build_parser().parse_args(
            ["run", "--workload", "churn", "--n", "32", "--m", "64",
             "--d", "8"]
        )
        assert not make_workload(args).insertion_only


class TestCommands:
    def test_run_star_succeeds(self, capsys):
        code = main(
            ["run", "--workload", "star", "--n", "128", "--m", "512",
             "--d", "32", "--alpha", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified against ground truth: OK" in out
        assert "space:" in out

    def test_run_churn_with_insertion_only_rejected(self, capsys):
        code = main(
            ["run", "--workload", "churn", "--algorithm", "insertion-only",
             "--n", "32", "--m", "64", "--d", "8"]
        )
        assert code == 2
        assert "deletions" in capsys.readouterr().err

    def test_run_churn_with_turnstile_algorithm(self, capsys):
        code = main(
            ["run", "--workload", "churn", "--algorithm", "insertion-deletion",
             "--n", "32", "--m", "64", "--d", "8", "--scale", "0.3"]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_bounds_output(self, capsys):
        code = main(["bounds", "--n", "1024", "--d", "32", "--alpha", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Thm 3.2" in out
        assert "Thm 6.4" in out

    def test_bounds_alpha_one_skips_io_lower(self, capsys):
        code = main(["bounds", "--n", "1024", "--d", "32", "--alpha", "1"])
        assert code == 0
        assert "Thm 4.1+4.8" not in capsys.readouterr().out

    def test_figures_output(self, capsys):
        code = main(["figures"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Z_4 = 011110101000011" in out
        assert "Figure 3" in out


class TestStreamFileOptions:
    def _run_args(self, extra):
        return ["run", "--workload", "star", "--n", "64", "--m", "256",
                "--d", "16", "--alpha", "2"] + extra

    @pytest.mark.parametrize("suffix", ["txt", "npz"])
    def test_save_then_replay_roundtrip(self, capsys, tmp_path, suffix):
        path = tmp_path / f"workload.{suffix}"
        code = main(self._run_args(["--save-stream", str(path)]))
        assert code == 0
        saved_out = capsys.readouterr().out
        assert f"stream saved to {path}" in saved_out
        assert path.exists()
        code = main(["run", "--stream-file", str(path), "--d", "16",
                     "--alpha", "2"])
        assert code == 0
        replay_out = capsys.readouterr().out
        assert f"file {path}" in replay_out
        assert "verified against ground truth: OK" in replay_out

    def test_missing_stream_file_reports_error(self, capsys, tmp_path):
        code = main(["run", "--stream-file", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_stream_file_with_save_stream_rejected(self, capsys, tmp_path):
        existing = tmp_path / "in.npz"
        assert main(self._run_args(["--save-stream", str(existing)])) == 0
        capsys.readouterr()
        code = main(["run", "--stream-file", str(existing),
                     "--save-stream", str(tmp_path / "out.npz")])
        assert code == 2
        assert "persist convert" in capsys.readouterr().err
        assert not (tmp_path / "out.npz").exists()

    def test_failure_reason_is_reported(self, capsys, tmp_path):
        # d far above any degree in the stream: the algorithm fails and
        # the CLI must surface the diagnostic, not a bare "fail".
        path = tmp_path / "tiny.txt"
        path.write_text("# feww-stream v1 n=4 m=4\n+ 0 1\n+ 1 2\n")
        code = main(["run", "--stream-file", str(path), "--d", "100",
                     "--alpha", "2"])
        assert code == 1
        assert "algorithm reported fail: all 2 parallel runs failed" in (
            capsys.readouterr().out
        )

    def test_custom_chunk_size(self, capsys):
        code = main(self._run_args(["--chunk-size", "13"]))
        assert code == 0
        assert "OK" in capsys.readouterr().out


class TestParallelOptions:
    def _save(self, tmp_path, capsys, workload="star", extra=()):
        path = tmp_path / "workload.npz"
        args = ["run", "--workload", workload, "--n", "64", "--m", "256",
                "--d", "16", "--alpha", "2", "--save-stream", str(path)]
        if workload == "churn":
            args += ["--algorithm", "insertion-deletion", "--scale", "0.3"]
        assert main(args + list(extra)) == 0
        capsys.readouterr()
        return path

    def test_workers_on_generated_workload(self, capsys):
        code = main(["run", "--workload", "star", "--n", "64", "--m", "256",
                     "--d", "16", "--alpha", "2", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded over 2 workers" in out
        assert "verified against ground truth: OK" in out

    def test_workers_with_mmap_stream_file(self, capsys, tmp_path):
        path = self._save(tmp_path, capsys)
        code = main(["run", "--stream-file", str(path), "--d", "16",
                     "--alpha", "2", "--workers", "2", "--mmap"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(mmap)" in out
        assert "sharded over 2 workers" in out
        assert "verification skipped (mmap mode" in out

    def test_mmap_without_stream_file_rejected(self, capsys):
        code = main(["run", "--workload", "star", "--mmap"])
        assert code == 2
        assert "--mmap requires --stream-file" in capsys.readouterr().err

    def test_mmap_requires_v2_format(self, capsys, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("# feww-stream v1 n=4 m=4\n+ 0 1\n")
        code = main(["run", "--stream-file", str(path), "--mmap"])
        assert code == 2
        assert "requires a v2" in capsys.readouterr().err

    def test_mmap_deletion_stream_with_insertion_only_rejected(
        self, capsys, tmp_path
    ):
        path = self._save(tmp_path, capsys, workload="churn")
        code = main(["run", "--stream-file", str(path), "--d", "8",
                     "--alpha", "2", "--mmap"])
        assert code == 2
        assert "deletions" in capsys.readouterr().err

    def test_bad_worker_count_rejected(self, capsys):
        code = main(["run", "--workload", "star", "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def _corrupt_v2_file(self, tmp_path):
        """A v2 file whose A-column holds an out-of-range vertex id —
        only detectable when chunks are actually read in mmap mode."""
        import numpy as np

        from repro.streams.columnar import ColumnarEdgeStream
        from repro.streams.persist import dump_stream

        bad = ColumnarEdgeStream(
            np.array([0, 9999], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            n=4, m=4, validate=False,
        )
        path = tmp_path / "corrupt.npz"
        dump_stream(bad, path, format="v2")
        return path

    def test_mmap_corrupt_stream_is_a_friendly_error(self, capsys, tmp_path):
        path = self._corrupt_v2_file(tmp_path)
        code = main(["run", "--stream-file", str(path), "--d", "2", "--mmap"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_mmap_corrupt_stream_with_workers_is_a_friendly_error(
        self, capsys, tmp_path
    ):
        path = self._corrupt_v2_file(tmp_path)
        code = main(["run", "--stream-file", str(path), "--d", "2",
                     "--mmap", "--workers", "2"])
        assert code == 2
        assert "StreamFormatError" in capsys.readouterr().err


class TestPersistCommands:
    def _make_file(self, tmp_path, suffix="npz"):
        path = tmp_path / f"workload.{suffix}"
        assert main(["run", "--workload", "churn", "--algorithm",
                     "insertion-deletion", "--n", "32", "--m", "64",
                     "--d", "8", "--scale", "0.3",
                     "--save-stream", str(path)]) == 0
        return path

    def test_info_reports_format_and_stats(self, capsys, tmp_path):
        path = self._make_file(tmp_path)
        code = main(["persist", "info", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "feww-stream v2" in out
        assert "deletes=" in out

    def test_convert_v2_to_v1_and_back(self, capsys, tmp_path):
        source = self._make_file(tmp_path)
        text = tmp_path / "copy.txt"
        assert main(["persist", "convert", str(source), str(text)]) == 0
        assert "feww-stream v1" in capsys.readouterr().out
        back = tmp_path / "copy.npz"
        assert main(["persist", "convert", str(text), str(back)]) == 0
        assert "feww-stream v2" in capsys.readouterr().out
        from repro.streams.persist import load_stream

        assert list(load_stream(source)) == list(load_stream(back))

    def test_info_on_garbage_reports_error(self, capsys, tmp_path):
        junk = tmp_path / "junk.txt"
        junk.write_text("not a stream\n")
        code = main(["persist", "info", str(junk)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestWindowPolicyCommands:
    def test_tumbling_reports_per_window(self, capsys):
        code = main(
            ["run", "--workload", "star", "--n", "128", "--m", "512",
             "--d", "40", "--window-policy", "tumbling", "--window", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed window(s):" in out
        assert "window 0 [0, 300)" in out

    def test_sliding_reports_span_and_bound(self, capsys):
        code = main(
            ["run", "--workload", "zipf", "--n", "64", "--m", "4000",
             "--window-policy", "sliding", "--window", "500",
             "--bucket-ratio", "0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sliding window (smooth histogram" in out
        assert "requested window of 500" in out

    def test_decay_reports_recent_and_tail(self, capsys):
        code = main(
            ["run", "--workload", "zipf", "--n", "64", "--m", "4000",
             "--window-policy", "decay", "--window", "200",
             "--decay-keep", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decay: 2 recent bucket(s)" in out
        assert "tail [0," in out

    def test_windowed_with_workers(self, capsys):
        code = main(
            ["run", "--workload", "star", "--n", "128", "--m", "512",
             "--d", "40", "--window-policy", "tumbling", "--window", "256",
             "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "routing: ('window', 256)" in out
        assert "completed window(s):" in out

    def test_bad_window_parameter_is_a_friendly_error(self, capsys):
        code = main(
            ["run", "--workload", "star", "--window-policy", "tumbling",
             "--window", "0"]
        )
        assert code == 2
        assert "window must be >= 1" in capsys.readouterr().err

    def test_readahead_requires_mmap(self, capsys):
        code = main(["run", "--workload", "star", "--readahead"])
        assert code == 2
        assert "--readahead requires --mmap" in capsys.readouterr().err

    def test_mmap_readahead_runs(self, capsys, tmp_path):
        path = tmp_path / "stream.npz"
        assert main(
            ["run", "--workload", "star", "--n", "128", "--m", "512",
             "--d", "32", "--save-stream", str(path)]
        ) == 0
        code = main(
            ["run", "--stream-file", str(path), "--n", "128", "--d", "32",
             "--mmap", "--readahead"]
        )
        assert code == 0

    def test_persist_info_reports_timestamps(self, capsys, tmp_path):
        import numpy as np

        from repro.streams.columnar import ColumnarEdgeStream
        from repro.streams.persist import dump_stream

        path = tmp_path / "timestamped.npz"
        stream = ColumnarEdgeStream(
            np.array([0, 1, 2]), np.array([0, 1, 2]), n=4, m=4,
            t=np.array([5, 6, 7]),
        )
        dump_stream(stream, path, format="v2")
        assert main(["persist", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "v2.1" in out
        assert "timestamps: [5, 7]" in out

    def test_persist_convert_notes_dropped_timestamps(self, capsys, tmp_path):
        import numpy as np

        from repro.streams.columnar import ColumnarEdgeStream
        from repro.streams.persist import dump_stream

        source = tmp_path / "timestamped.npz"
        stream = ColumnarEdgeStream(
            np.array([0, 1, 2]), np.array([0, 1, 2]), n=4, m=4,
            t=np.array([5, 6, 7]),
        )
        dump_stream(stream, source, format="v2")
        destination = tmp_path / "stream.txt"
        assert main(
            ["persist", "convert", str(source), str(destination)]
        ) == 0
        assert "timestamps dropped" in capsys.readouterr().out


class TestSpecRuns:
    def _write_spec(self, tmp_path, spec=None):
        import json

        spec = spec or {
            "source": {"kind": "generator", "generator": "star",
                       "params": {"n": 64, "m": 256, "d": 16, "seed": 1}},
            "processors": [{"name": "insertion-only", "label": "alg2",
                            "params": {"n": 64, "d": 16, "seed": 1}}],
        }
        path = tmp_path / "job.json"
        path.write_text(json.dumps(spec))
        return path

    def test_spec_run_succeeds_and_reports_json(self, capsys, tmp_path):
        import json

        path = self._write_spec(tmp_path)
        code = main(["run", "--spec", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert f"spec: {path}" in out
        payload = json.loads(out.split("\n", 1)[1])
        assert payload["answers"]["alg2"]["type"] == "neighbourhood"
        assert payload["report"]["backend"] == "fanout"

    def test_spec_run_windowed_sharded(self, capsys, tmp_path):
        import json

        path = self._write_spec(tmp_path, {
            "source": {"kind": "generator", "generator": "star",
                       "params": {"n": 64, "m": 256, "d": 16, "seed": 1}},
            "processors": [{"name": "insertion-only", "label": "alg2",
                            "params": {"n": 64, "d": 16}}],
            "window": {"policy": "tumbling", "window": 128, "seed": 1},
            "execution": {"backend": "sharded", "workers": 2},
        })
        assert main(["run", "--spec", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out.split("\n", 1)[1])
        assert payload["report"]["workers"] == 2
        assert payload["report"]["routing"] == ["window", 128]

    def test_missing_spec_file_reports_error(self, capsys, tmp_path):
        code = main(["run", "--spec", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_spec_reports_diagnostics(self, capsys, tmp_path):
        path = self._write_spec(tmp_path, {
            "source": {"kind": "generator", "generator": "nope"},
            "processors": [],
        })
        code = main(["run", "--spec", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid spec" in err
        assert "source.generator" in err

    def test_spec_deletion_mismatch_is_a_friendly_error(self, capsys, tmp_path):
        path = self._write_spec(tmp_path, {
            "source": {"kind": "generator", "generator": "churn",
                       "params": {"n": 32, "m": 64, "d": 8, "seed": 1}},
            "processors": [{"name": "insertion-only",
                            "params": {"n": 32, "d": 8, "seed": 1}}],
        })
        code = main(["run", "--spec", str(path)])
        assert code == 2
        assert "insertion-only" in capsys.readouterr().err

    def test_spec_missing_required_field_is_a_friendly_error(
        self, capsys, tmp_path
    ):
        path = self._write_spec(tmp_path, {
            "source": {},
            "processors": [{"name": "insertion-only",
                            "params": {"n": 8, "d": 2}}],
        })
        code = main(["run", "--spec", str(path)])
        assert code == 2
        assert "missing required field" in capsys.readouterr().err

    def test_malformed_json_reports_error(self, capsys, tmp_path):
        path = tmp_path / "job.json"
        path.write_text("{not json")
        code = main(["run", "--spec", str(path)])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bad_readahead_depth_is_a_friendly_error(self, capsys, tmp_path):
        path = tmp_path / "stream.npz"
        assert main(
            ["run", "--workload", "star", "--n", "64", "--m", "256",
             "--d", "16", "--save-stream", str(path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["run", "--stream-file", str(path), "--d", "16", "--mmap",
             "--readahead", "--readahead-depth", "0"]
        )
        assert code == 2
        assert "--readahead-depth must be >= 1" in capsys.readouterr().err

    def test_readahead_depth_flag(self, capsys, tmp_path):
        path = tmp_path / "stream.npz"
        assert main(
            ["run", "--workload", "star", "--n", "64", "--m", "256",
             "--d", "16", "--save-stream", str(path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["run", "--stream-file", str(path), "--d", "16", "--mmap",
             "--readahead", "--readahead-depth", "3"]
        )
        assert code == 0
        assert "verification skipped" in capsys.readouterr().out


class TestFaultToleranceFlags:
    def _save_stream(self, tmp_path):
        path = tmp_path / "workload.npz"
        assert main(["run", "--workload", "star", "--n", "64", "--m", "256",
                     "--d", "16", "--alpha", "2",
                     "--save-stream", str(path)]) == 0
        return path

    def test_checkpoint_every_requires_dir(self, capsys):
        code = main(["run", "--checkpoint-every", "4"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_resume_requires_dir(self, capsys):
        code = main(["run", "--resume"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpointed_run_then_resume(self, capsys, tmp_path):
        stream = self._save_stream(tmp_path)
        ckpt = tmp_path / "ckpt"
        base = ["run", "--stream-file", str(stream), "--d", "16",
                "--alpha", "2", "--checkpoint-dir", str(ckpt),
                "--checkpoint-every", "2"]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert f"checkpointed to {ckpt}" in first
        assert (ckpt / "fanout.manifest.json").exists()
        # The finished run left a complete snapshot; --resume loads it
        # and reports the same answer without re-streaming.
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert f"resumed from {ckpt}" in second
        assert ("verified against ground truth: OK" in second) == (
            "verified against ground truth: OK" in first
        )

    def test_sharded_checkpoint_flags_run(self, capsys, tmp_path):
        stream = self._save_stream(tmp_path)
        ckpt = tmp_path / "ckpt"
        code = main(["run", "--stream-file", str(stream), "--d", "16",
                     "--alpha", "2", "--workers", "2",
                     "--retries", "3", "--on-failure", "retry",
                     "--checkpoint-dir", str(ckpt)])
        assert code == 0
        assert f"checkpointed to {ckpt}" in capsys.readouterr().out
        assert (ckpt / "run.manifest.json").exists()

    def test_spec_flags_override_spec_file(self, capsys, tmp_path):
        import json

        stream = self._save_stream(tmp_path)
        capsys.readouterr()  # flush the save-stream banner
        spec = {
            "source": {"kind": "file", "path": str(stream)},
            "processors": [{"name": "insertion-only", "label": "alg2",
                            "params": {"n": 64, "d": 16, "seed": 1}}],
        }
        path = tmp_path / "job.json"
        path.write_text(json.dumps(spec))
        ckpt = tmp_path / "ckpt"
        code = main(["run", "--spec", str(path),
                     "--checkpoint-dir", str(ckpt),
                     "--checkpoint-every", "2"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.split("\n", 1)[1])
        assert payload["report"]["checkpoint"]["dir"] == str(ckpt)
        assert (ckpt / "fanout.manifest.json").exists()
        # And --resume picks the snapshots back up through the spec.
        code = main(["run", "--spec", str(path),
                     "--checkpoint-dir", str(ckpt), "--resume"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out.split("\n", 1)[1])
        assert payload["report"]["resumed"] is True

    def test_spec_resume_without_checkpoint_anywhere(self, capsys, tmp_path):
        import json

        stream = self._save_stream(tmp_path)
        path = tmp_path / "job.json"
        path.write_text(json.dumps({
            "source": {"kind": "file", "path": str(stream)},
            "processors": [{"name": "insertion-only", "label": "alg2",
                            "params": {"n": 64, "d": 16, "seed": 1}}],
        }))
        code = main(["run", "--spec", str(path), "--resume"])
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err


class TestPipelineDescribe:
    def test_inventory_lists_processors_and_generators(self, capsys):
        assert main(["pipeline", "describe"]) == 0
        out = capsys.readouterr().out
        assert "processors:" in out and "generators:" in out
        for name in ("insertion-only", "l0-bank", "bloom-dedup", "zipf"):
            assert name in out
