"""Batch-first execution engine.

The engine decouples *what* a streaming structure computes from *how*
the stream reaches it.  Structures implement the two-method
:class:`StreamProcessor` protocol (``process_batch`` + ``finalize``);
:class:`FanoutRunner` streams any chunk source — an in-memory columnar
stream, a boxed :class:`~repro.streams.stream.EdgeStream`, or a
persisted stream file read chunk by chunk — into all registered
structures in a single pass.

This replaces the per-wrapper driver loops that previously lived in
star detection (one pass *per degree guess*), top-k, tumbling windows,
the CLI, and the benchmarks, and is the substrate for multi-core chunk
pipelining.
"""

from repro.engine.protocol import StreamProcessor, ensure_stream_processor
from repro.engine.runner import FanoutRunner, as_chunks, run_fanout

__all__ = [
    "FanoutRunner",
    "StreamProcessor",
    "as_chunks",
    "ensure_stream_processor",
    "run_fanout",
]
