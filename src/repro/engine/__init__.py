"""Batch-first execution engine.

The engine decouples *what* a streaming structure computes from *how*
the stream reaches it.  Structures implement the two-method
:class:`StreamProcessor` protocol (``process_batch`` + ``finalize``);
:class:`FanoutRunner` streams any chunk source — an in-memory columnar
stream, a boxed :class:`~repro.streams.stream.EdgeStream`, or a
persisted stream file read chunk by chunk — into all registered
structures in a single pass.

This replaces the per-wrapper driver loops that previously lived in
star detection (one pass *per degree guess*), top-k, tumbling windows,
the CLI, and the benchmarks.

On top of the protocol sits the mergeable-summary layer
(``merge``/``split``/``shard_routing`` on every structure) and
:class:`ShardedRunner`, which partitions the stream across a
``multiprocessing`` worker pool — each worker a
:class:`FanoutRunner` over its shard — and merges the shard summaries
back into the single-core answers (see :mod:`repro.engine.sharded`).
"""

from repro.engine.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)
from repro.engine.faults import Fault, FaultPlan
from repro.engine.protocol import (
    SHARD_ANY,
    SHARD_BY_VERTEX,
    SHARD_BY_WINDOW,
    MergeableStreamProcessor,
    StreamProcessor,
    combined_routing,
    ensure_mergeable,
    ensure_stream_processor,
    shard_routing_of,
)
from repro.engine.runner import FanoutRunner, as_chunks, run_fanout
from repro.engine.sharded import (
    ShardedRunner,
    ShardedWorkerError,
    effective_cores,
    fork_available,
    run_sharded,
    vertex_shard,
)
from repro.engine.windows import (
    DecayAnswer,
    DecayPolicy,
    SlidingPolicy,
    SlidingWindowAnswer,
    TumblingPolicy,
    WindowPolicy,
    WindowRecord,
    WindowedProcessor,
    derive_bucket_seed,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "DEFAULT_CHECKPOINT_EVERY",
    "DecayAnswer",
    "DecayPolicy",
    "FanoutRunner",
    "Fault",
    "FaultPlan",
    "MergeableStreamProcessor",
    "SHARD_ANY",
    "SHARD_BY_VERTEX",
    "SHARD_BY_WINDOW",
    "ShardedRunner",
    "ShardedWorkerError",
    "SlidingPolicy",
    "SlidingWindowAnswer",
    "StreamProcessor",
    "TumblingPolicy",
    "WindowPolicy",
    "WindowRecord",
    "WindowedProcessor",
    "as_chunks",
    "combined_routing",
    "derive_bucket_seed",
    "effective_cores",
    "ensure_mergeable",
    "ensure_stream_processor",
    "fork_available",
    "run_fanout",
    "run_sharded",
    "shard_routing_of",
    "vertex_shard",
]
