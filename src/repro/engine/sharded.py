"""Sharded parallel execution: a multi-core :class:`FanoutRunner`.

:class:`ShardedRunner` turns the single-pass batch engine into a
parallel one.  Every registered structure is :meth:`split
<repro.engine.protocol.MergeableStreamProcessor.split>` into
``n_workers`` independent shard instances; a pool of worker processes
each runs a :class:`~repro.engine.runner.FanoutRunner` over its shard
of the stream; the shard summaries combine pairwise along the binomial
reduction tree of :mod:`repro.engine.merge` — worker-side and in
parallel on the plain process path, in the parent otherwise — and the
parent finalizes: the classical mergeable-summaries execution plan
(Agarwal et al.) applied to every structure in the library, with a
log-depth combine instead of a serial fold.

How the stream is partitioned is dictated by the structures themselves
through their ``shard_routing`` metadata (see
:mod:`repro.engine.protocol`):

* ``"any"`` — chunks are dealt round-robin (linear sketches and counter
  summaries merge correctly for any split);
* ``"vertex"`` — updates are routed by a hash of the A-endpoint, so
  degree counts and residency-window witness collection stay exact
  inside each vertex's owning shard (Algorithms 1–2, witness
  baselines);
* ``("window", w)`` — updates are routed by global stream position in
  blocks of ``w`` (the tumbling-window wrapper, whose per-window
  instances are seeded by global window index).

A run registers processors with *compatible* routings only (``"any"``
composes with either of the others; vertex and window routing cannot
share one partition).

Two execution backends:

* ``"process"`` (default) — a ``fork``-based worker pool.  For
  *file sources* every worker opens the persisted stream itself
  (optionally memory-mapped) and filters its own sub-stream, so no
  update data ever crosses a pipe — the out-of-core path: a
  multi-gigabyte v2 file streams through ``n_workers`` cores without
  being materialised anywhere.  For in-memory sources the parent
  routes chunks to bounded per-worker queues (backpressure included).
  On platforms without ``fork`` the runner falls back to the serial
  backend (same answers, no parallelism).
* ``"serial"`` — the identical split/route/merge pipeline executed in
  process, one shard at a time.  Useful for tests, debugging, and
  single-core hosts; answers are identical to the process backend.

With ``n_workers=1`` the runner degenerates to a plain
:class:`~repro.engine.runner.FanoutRunner` pass (no split, no merge) —
the single-core reference path the equivalence suite compares against.

**Fault tolerance.**  File-source shard workers are side-effect-free
(each re-reads its own sub-stream from the persisted file), so a dead
worker is recoverable: with ``on_failure="retry"`` the parent respawns
just the failed shard with bounded retries and exponential backoff
(``retries``, :data:`ShardedRunner.RETRY_BACKOFF_S`), optionally under
a per-shard wall-clock ``timeout_s``; ``on_failure="serial_fallback"``
additionally re-runs a shard whose worker keeps dying in-process; the
default ``on_failure="raise"`` keeps the historical fail-fast
behaviour.  Python-level worker exceptions travel back with their full
formatted traceback in :class:`ShardedWorkerError` and are never
retried (a deterministic error would fail every attempt) — except
``OSError``, the transient-I/O case retry exists for.  Progress can be
made durable with ``checkpoint_dir=``/``checkpoint_every=``: each
worker snapshots its shard summaries + stream offset through
:class:`~repro.engine.checkpoint.CheckpointStore`, and
:meth:`ShardedRunner.resume` rebuilds the whole run (pristine shard
splits included, so resumed answers stay bit-identical) and continues
every unfinished shard from its latest snapshot.  All recovery paths
are exercised deterministically via
:class:`~repro.engine.faults.FaultPlan` injection.
"""

from __future__ import annotations

import os
import queue as queue_module
import secrets
import time
import traceback
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.engine.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointStore,
)
from repro.engine.faults import FaultPlan
from repro.engine.merge import tree_reduce, tree_rounds
from repro.engine.protocol import (
    SHARD_ANY,
    SHARD_BY_VERTEX,
    ShardRouting,
    combined_routing,
    ensure_mergeable,
    shard_routing_of,
)
from repro.engine.runner import FanoutRunner, as_chunks
from repro.engine.shm import (
    ChunkAttacher,
    ChunkPublisher,
    ShmChunk,
    shm_available,
)
from repro.streams.columnar import DEFAULT_CHUNK_SIZE, Columns

#: Fibonacci multiplier (golden-ratio reciprocal in 64 bits) for the
#: vertex-hash shard route.
_FIB = np.uint64(0x9E3779B97F4A7C15)
_SHIFT = np.uint64(33)

#: Bounded per-worker chunk queue length (backpressure for in-memory
#: sources much larger than what the workers can absorb).
_QUEUE_DEPTH = 8

BACKENDS = ("process", "serial")

#: Dead/timed-out worker policies: fail fast, respawn the shard with
#: bounded retries, or retry then re-run the shard in-process.
ON_FAILURE_POLICIES = ("raise", "retry", "serial_fallback")

#: Checkpoint tag of the job-level manifest (processors + pristine
#: shard splits + run configuration).
RUN_TAG = "run"


def shard_checkpoint_tag(worker: int) -> str:
    """Checkpoint tag worker ``worker`` snapshots its shard under."""
    return f"shard-{worker}"


class ShardedWorkerError(RuntimeError):
    """A shard worker failed; carries structured cause information.

    ``cause_type`` is the original exception class name;
    ``is_stream_error`` is True for input problems (stream format,
    I/O) that callers like the CLI handle with a friendly message
    rather than a traceback; ``worker`` is the shard index when known.
    """

    def __init__(
        self,
        message: str,
        cause_type: str,
        is_stream_error: bool = False,
        worker: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.cause_type = cause_type
        self.is_stream_error = is_stream_error
        self.worker = worker


def _fork_context():
    """The fork multiprocessing context, or None where unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def fork_available() -> bool:
    """True when the process backend can actually run in parallel here."""
    return _fork_context() is not None


def effective_cores() -> int:
    """CPUs this process may actually use (affinity-aware).

    ``os.cpu_count()`` reports the machine; a containerised or
    taskset-pinned run may own far fewer.  Every place that records a
    core count alongside performance numbers — run reports, benchmark
    artifacts, scaling gates — uses this helper, so recorded rates can
    always be read against the parallelism that was really available.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _describe_error(exc: BaseException) -> Tuple[str, bool, str, bool]:
    """Structured worker-failure report: (class name, is-stream-error,
    formatted traceback, retryable).

    Only ``OSError`` counts as retryable: transient I/O is what a
    respawn can fix, while a deterministic Python error (including
    :class:`~repro.streams.persist.StreamFormatError`, a ``ValueError``)
    would fail every attempt identically.
    """
    from repro.streams.persist import StreamFormatError

    return (
        type(exc).__name__,
        isinstance(exc, (StreamFormatError, OSError)),
        traceback.format_exc(),
        isinstance(exc, OSError) and not isinstance(exc, StreamFormatError),
    )


def vertex_shard(a: np.ndarray, n_shards: int) -> np.ndarray:
    """Shard id of every A-endpoint: a fixed multiplicative (Fibonacci)
    hash, deterministic across runs, processes and platforms."""
    mixed = (np.asarray(a).astype(np.uint64) * _FIB) >> _SHIFT
    return (mixed % np.uint64(n_shards)).astype(np.int64)


def _shard_ids(
    chunk: Columns,
    routing: ShardRouting,
    n_workers: int,
    chunk_index: int,
    position: int,
):
    """Shard assignment for one chunk: a per-update id array for masked
    routings, or the single owning worker (int) for whole-chunk
    round-robin.  The one copy of the routing arithmetic — file-pool
    and queue-pool workers must stay bit-identical.
    """
    if routing == SHARD_ANY:
        return chunk_index % n_workers
    a = chunk[0]
    if routing == SHARD_BY_VERTEX:
        return vertex_shard(a, n_workers)
    window = routing[1]  # ("window", w): global-position window index
    return (
        (position + np.arange(len(a), dtype=np.int64)) // window
    ) % n_workers


def _mask_select(chunk: Columns, mask: np.ndarray) -> Optional[Columns]:
    if not mask.any():
        return None
    if mask.all():
        return chunk
    a, b, sign = chunk
    return a[mask], b[mask], None if sign is None else sign[mask]


def route_chunk(
    chunk: Columns,
    routing: ShardRouting,
    worker: int,
    n_workers: int,
    chunk_index: int,
    position: int,
) -> Optional[Columns]:
    """The sub-chunk of ``chunk`` that worker ``worker`` must process.

    ``chunk_index`` and ``position`` are the chunk's ordinal and the
    global position of its first update (both ignored unless the
    routing needs them).  Returns ``None`` when nothing in the chunk is
    routed to this worker.
    """
    ids = _shard_ids(chunk, routing, n_workers, chunk_index, position)
    if isinstance(ids, int):
        return chunk if ids == worker else None
    return _mask_select(chunk, ids == worker)


def route_chunk_all(
    chunk: Columns,
    routing: ShardRouting,
    n_workers: int,
    chunk_index: int,
    position: int,
) -> List[Optional[Columns]]:
    """Every worker's sub-chunk in one pass.

    Computes the shard-id array once per chunk instead of once per
    worker — the parent process is the routing bottleneck for
    queue-fed runs, so the hash/division work must not scale with the
    worker count.
    """
    ids = _shard_ids(chunk, routing, n_workers, chunk_index, position)
    if isinstance(ids, int):
        return [chunk if worker == ids else None for worker in range(n_workers)]
    return [
        _mask_select(chunk, ids == worker) for worker in range(n_workers)
    ]


def _drive(
    shard: Dict[str, Any],
    source: Any,
    routing: ShardRouting,
    worker: int,
    n_workers: int,
    chunk_size: int,
    mmap: bool,
    readahead: bool = False,
    readahead_depth: int = 1,
    *,
    start_chunk: int = 0,
    start_position: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    attempt: int = 0,
    checkpoint: Optional[Tuple[str, int, str, Dict[str, Any]]] = None,
    in_process: bool = False,
) -> Dict[str, Any]:
    """Run one shard's FanoutRunner over its routed sub-stream.

    ``start_chunk``/``start_position`` resume the pass at a checkpoint
    boundary (file sources only); ``fault_plan`` is consulted before
    every chunk; ``checkpoint`` — a ``(directory, every, tag, meta)``
    tuple — snapshots the shard's summaries through a
    :class:`~repro.engine.checkpoint.CheckpointStore` as it goes.
    """
    runner = FanoutRunner(shard, chunk_size=chunk_size)
    if isinstance(source, (str, Path)):
        from repro.streams.persist import ChunkedStreamReader

        chunks = ChunkedStreamReader(
            source, mmap=mmap, readahead=readahead,
            readahead_depth=readahead_depth,
        ).chunks(chunk_size, start=start_position)
    else:
        if start_position:
            raise ValueError(
                "resume offsets require a stream-file path source"
            )
        chunks = as_chunks(source, chunk_size)
    store: Optional[CheckpointStore] = None
    if checkpoint is not None:
        directory, every, tag, meta = checkpoint
        store = CheckpointStore(directory)
    chunk_index = start_chunk
    position = start_position
    for chunk in chunks:
        if fault_plan is not None:
            fault_plan.fire(worker, chunk_index, attempt, in_process=in_process)
        routed = route_chunk(
            chunk, routing, worker, n_workers, chunk_index, position
        )
        position += len(chunk[0])
        chunk_index += 1
        if routed is not None:
            runner.process_chunk(*routed)
        if store is not None and chunk_index % every == 0:
            store.save(
                tag, dict(runner._processors),
                chunk_index=chunk_index, position=position, meta=meta,
            )
    if store is not None:
        store.save(
            tag, dict(runner._processors),
            chunk_index=chunk_index, position=position,
            complete=True, meta=meta,
        )
    return dict(runner._processors)


def _file_worker(conn, task) -> None:
    """Process body for file sources: self-read, filter, report.

    The outcome ``(worker, attempt, processors, error)`` travels over a
    dedicated one-shot pipe owned by this attempt alone; a superseded
    attempt's message dies with its pipe, and a worker that vanishes
    without reporting (SIGKILL, dropped result) surfaces to the parent
    as EOF rather than as silence on a shared queue.
    """
    (worker, attempt, n_workers, shard, path, routing, chunk_size, mmap,
     readahead, readahead_depth, start_chunk, start_position, fault_plan,
     checkpoint) = task
    try:
        processors = _drive(
            shard, path, routing, worker, n_workers, chunk_size, mmap,
            readahead, readahead_depth,
            start_chunk=start_chunk, start_position=start_position,
            fault_plan=fault_plan, attempt=attempt, checkpoint=checkpoint,
        )
        outcome = (worker, attempt, processors, None)
    except BaseException as exc:
        outcome = (worker, attempt, None, _describe_error(exc))
    if fault_plan is not None:
        if fault_plan.drops_result(worker, attempt):
            return
        if fault_plan.corrupts_result(worker, attempt):
            conn.send("injected-garbage-result")
            return
    conn.send(outcome)
    conn.close()


def _tree_file_worker(conn, task, recv_edges, send_edge, strays) -> None:
    """Process body for the plain-path file pool with worker-side merge.

    After driving its own shard the worker joins the binomial reduction
    tree (:func:`~repro.engine.merge.tree_rounds`): it first absorbs its
    partners' summaries round by round (``recv_edges``, ascending round
    order — a worker only ever receives in rounds *before* the one it
    sends in), then either ships the accumulated summaries to its
    receiver (``send_edge``) or, for worker 0, reports the fully merged
    map to the parent.  The receiver is always the tree's lower shard
    index and always the left operand of :meth:`merge
    <repro.engine.protocol.MergeableStreamProcessor.merge>`, so the
    merge order is exactly the one :func:`~repro.engine.merge.tree_reduce`
    executes in-process.

    ``strays`` are this process's inherited copies of every tree pipe
    end owned by *other* workers; they are closed first so that a peer
    dying mid-run surfaces as EOF on its edge instead of deadlocking
    the tree.
    """
    for stray in strays:
        stray.close()
    (worker, n_workers, shard, path, routing, chunk_size, mmap,
     readahead, readahead_depth) = task
    try:
        processors = _drive(
            shard, path, routing, worker, n_workers, chunk_size, mmap,
            readahead, readahead_depth,
        )
        for edge in recv_edges:
            theirs = edge.recv()
            edge.close()
            for name in processors:
                processors[name] = processors[name].merge(theirs[name])
        if send_edge is not None:
            send_edge.send(processors)
            send_edge.close()
            outcome = (worker, None, None)
        else:
            outcome = (worker, processors, None)
    except BaseException as exc:
        outcome = (worker, None, _describe_error(exc))
    conn.send(outcome)
    conn.close()


def _queue_worker(
    worker, shard, chunk_size, in_queue, out_queue, fault_plan=None,
    release_queue=None,
) -> None:
    """Process body for in-memory sources: consume routed chunks.

    Chunks arrive either as raw ``(a, b, sign)`` column tuples or — when
    the shared-memory transport is engaged — as :class:`ShmChunk`
    descriptors, which are resolved to zero-copy views and released back
    to the parent's segment pool after processing.
    """
    outcome = None
    attachments = ChunkAttacher()
    try:
        runner = FanoutRunner(shard, chunk_size=chunk_size)
        consumed = 0
        while True:
            chunk = in_queue.get()
            if chunk is None:
                break
            if fault_plan is not None:
                fault_plan.fire(worker, consumed, 0)
            consumed += 1
            if isinstance(chunk, ShmChunk):
                a, b, sign = attachments.view(chunk)
                runner.process_chunk(a, b, sign)
                del a, b, sign
                release_queue.put(chunk.segment)
            else:
                runner.process_chunk(*chunk)
        outcome = (worker, dict(runner._processors), None)
    except BaseException as exc:
        error = _describe_error(exc)
        # Keep draining until the sentinel so the parent's bounded-queue
        # puts never block on a worker that has stopped consuming; shm
        # descriptors are released unprocessed so the pool keeps cycling.
        while True:
            chunk = in_queue.get()
            if chunk is None:
                break
            if isinstance(chunk, ShmChunk) and release_queue is not None:
                release_queue.put(chunk.segment)
        outcome = (worker, None, error)
    attachments.close()
    if fault_plan is not None:
        if fault_plan.drops_result(worker, 0):
            return
        if fault_plan.corrupts_result(worker, 0):
            out_queue.put("injected-garbage-result")
            return
    out_queue.put(outcome)


class ShardedRunner:
    """Multi-core counterpart of :class:`~repro.engine.runner.FanoutRunner`.

    Args:
        processors: optional initial ``name -> processor`` mapping; every
            processor must implement the mergeable-summary layer
            (``merge``/``split``/``shard_routing``).
        n_workers: shard count = worker process count.
        chunk_size: updates per chunk handed to ``process_batch``.
        mmap: memory-map v2 stream files instead of loading them (file
            sources only; the out-of-core path).
        readahead: prefetch each worker's upcoming chunks on background
            threads while the current one is processed (effective for
            memory-mapped file sources; identical chunk contents).
            ``None`` (default) auto-enables readahead exactly when the
            workers will memory-map a file source — the cold-cache
            pass whose page-in latency readahead exists to hide; pass
            ``False`` to force it off.
        readahead_depth: chunks each worker's prefetcher keeps in
            flight (default 1, the classic double buffer).
        backend: ``"process"`` (fork pool; default) or ``"serial"``.
        retries: times a dead/timed-out file-source shard worker is
            respawned before the ``on_failure`` policy decides (the
            workers are side-effect-free, so a re-run is safe).
        timeout_s: per-shard wall-clock budget; a worker exceeding it
            is terminated and handled like a dead worker (``None``
            disables the deadline).
        on_failure: ``"raise"`` (default — fail fast, the historical
            behaviour), ``"retry"`` (exhaust ``retries`` then raise),
            or ``"serial_fallback"`` (exhaust ``retries`` then re-run
            the shard in-process).
        checkpoint_dir: when set, every file-source shard worker
            snapshots its summaries + stream offset into this
            directory; see :meth:`resume`.
        checkpoint_every: source chunks between shard snapshots
            (default
            :data:`~repro.engine.checkpoint.DEFAULT_CHECKPOINT_EVERY`;
            requires ``checkpoint_dir``).
        fault_plan: optional :class:`~repro.engine.faults.FaultPlan`
            threaded into every worker for deterministic chaos tests;
            omit for the no-op default.
        shm_transport: in-memory queue-pool chunk handoff.  ``None``
            (default) publishes chunk columns through
            ``multiprocessing.shared_memory`` segments whenever the
            platform supports them — the queues then carry only tiny
            descriptors (see :mod:`repro.engine.shm`); ``False``
            forces the classic pickled-columns transport; ``True``
            requires shared memory and fails loudly without it.

    Overridable timing knobs (class attributes, seconds; override on an
    instance to tune a specific run or speed up tests):

    * ``QUEUE_PUT_TIMEOUT_S`` — bounded-queue put poll interval;
    * ``QUEUE_PUT_DEADLINE_S`` — give up routing to a worker that is
      alive but has not consumed anything for this long;
    * ``RESULT_POLL_TIMEOUT_S`` — result wait slice between per-shard
      deadline scans;
    * ``RESULT_GRACE_TIMEOUT_S`` — extra wait for an in-flight result
      after its sender died (in-memory queue pool);
    * ``WORKER_JOIN_TIMEOUT_S`` — orderly worker join deadline;
    * ``TERMINATE_JOIN_TIMEOUT_S`` — join deadline after terminate;
    * ``RETRY_BACKOFF_S`` — base of the exponential retry backoff
      (attempt ``k`` sleeps ``RETRY_BACKOFF_S * 2**(k-1)``).

    Usage::

        runner = ShardedRunner({"alg2": InsertionOnlyFEwW(...)}, n_workers=4)
        results = runner.run("workload.npz")   # same answers as FanoutRunner
        merged = runner["alg2"]                # the merged processor
    """

    QUEUE_PUT_TIMEOUT_S = 1.0
    QUEUE_PUT_DEADLINE_S = 120.0
    RESULT_POLL_TIMEOUT_S = 0.25
    RESULT_GRACE_TIMEOUT_S = 2.0
    WORKER_JOIN_TIMEOUT_S = 30.0
    TERMINATE_JOIN_TIMEOUT_S = 5.0
    RETRY_BACKOFF_S = 0.05

    def __init__(
        self,
        processors: Optional[Mapping[str, Any]] = None,
        *,
        n_workers: int = 2,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        mmap: bool = False,
        readahead: Optional[bool] = None,
        readahead_depth: int = 1,
        backend: str = "process",
        retries: int = 2,
        timeout_s: Optional[float] = None,
        on_failure: str = "raise",
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        shm_transport: Optional[bool] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if readahead_depth < 1:
            raise ValueError(
                f"readahead_depth must be >= 1, got {readahead_depth}"
            )
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout_s is not None and not timeout_s > 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if on_failure not in ON_FAILURE_POLICIES:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE_POLICIES}, "
                f"got {on_failure!r}"
            )
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
        if checkpoint_dir is not None and checkpoint_every is None:
            checkpoint_every = DEFAULT_CHECKPOINT_EVERY
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.mmap = mmap
        self.readahead = None if readahead is None else bool(readahead)
        self.readahead_depth = int(readahead_depth)
        self.backend = backend
        self.retries = int(retries)
        self.timeout_s = timeout_s
        self.on_failure = on_failure
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        self.checkpoint_every = checkpoint_every
        self.fault_plan = fault_plan
        #: Shared-memory columnar transport for in-memory queue-pool
        #: runs: ``True`` forces it, ``False`` disables it, ``None``
        #: (default) auto-enables when POSIX shared memory works here.
        self.shm_transport = shm_transport
        #: Shard re-runs performed (for run reports / diagnostics).
        self.retries_used = 0
        #: Shards that ended up on the in-process fallback path.
        self.fallbacks_used = 0
        self._processors: Dict[str, Any] = {}
        self._merged: Dict[str, Any] = {}
        self._resuming = False
        self._resume_shards: Optional[List[Dict[str, Any]]] = None
        self._resume_source: Optional[str] = None
        self._run_id: Optional[str] = None
        if processors is not None:
            for name, processor in processors.items():
                self.add(name, processor)

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------

    def add(self, name: str, processor: Any) -> "ShardedRunner":
        """Register a mergeable processor under ``name``; returns self."""
        if name in self._processors:
            raise ValueError(f"processor {name!r} already registered")
        self._processors[name] = ensure_mergeable(processor, name)
        return self

    def __len__(self) -> int:
        return len(self._processors)

    def __getitem__(self, name: str) -> Any:
        """The merged processor after :meth:`run` (the registered one
        before)."""
        if name in self._merged:
            return self._merged[name]
        return self._processors[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._processors)

    def routing(self) -> ShardRouting:
        """The single stream partition satisfying every processor."""
        if not self._processors:
            raise RuntimeError("no processors registered; call add() first")
        return combined_routing(
            [
                shard_routing_of(processor, name)
                for name, processor in self._processors.items()
            ]
        )

    # ------------------------------------------------------------------
    # Checkpoint/resume.
    # ------------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        checkpoint_dir: Union[str, Path],
        *,
        source: Any = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "ShardedRunner":
        """Rebuild a checkpointed sharded run for continuation.

        The job manifest (tag ``"run"``) carries the run configuration,
        the registered processors, and the *pristine* shard splits —
        resuming never re-splits, so seed-derived shard state is
        exactly what the interrupted run used and the final answers
        stay bit-identical.  Call :meth:`run` on the result (with no
        source — the checkpointed path is remembered — or pass one to
        override); shards that already completed are not re-run, and
        unfinished shards continue from their latest snapshot.

        Raises:
            repro.engine.checkpoint.CheckpointError: when the job
                manifest is absent, torn, or version-incompatible.
        """
        store = CheckpointStore(checkpoint_dir)
        snapshot = store.load(RUN_TAG)
        meta = snapshot.meta
        runner = cls(
            None,
            n_workers=int(meta["n_workers"]),
            chunk_size=int(meta["chunk_size"]),
            mmap=bool(meta["mmap"]),
            readahead=meta["readahead"],
            readahead_depth=int(meta["readahead_depth"]),
            backend=str(meta["backend"]),
            retries=int(meta["retries"]),
            timeout_s=meta["timeout_s"],
            on_failure=str(meta["on_failure"]),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=int(meta["checkpoint_every"]),
            fault_plan=fault_plan,
        )
        runner._processors = dict(snapshot.state["processors"])
        runner._resume_shards = [
            dict(shard) for shard in snapshot.state["shards"]
        ]
        runner._resume_source = str(meta["source"])
        if source is not None:
            runner._resume_source = str(source)
        runner._run_id = meta["run_id"]
        runner._resuming = True
        return runner

    def _checkpoint_store(self) -> Optional[CheckpointStore]:
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(self.checkpoint_dir)

    def _shard_checkpoint(
        self, worker: int
    ) -> Optional[Tuple[str, int, str, Dict[str, Any]]]:
        """The ``checkpoint=`` tuple handed to a shard's drive loop."""
        if self.checkpoint_dir is None:
            return None
        return (
            str(self.checkpoint_dir),
            int(self.checkpoint_every),
            shard_checkpoint_tag(worker),
            {"run_id": self._run_id},
        )

    def _shard_start(
        self, store: Optional[CheckpointStore], worker: int,
        pristine: Dict[str, Any],
    ) -> Tuple[Dict[str, Any], int, int, bool]:
        """Where worker ``worker`` starts: (state, chunk, position, done).

        Fresh runs start every shard pristine at offset 0; resumed runs
        continue from the shard's latest snapshot — but only one
        stamped with this run's id, so leftovers from an older run in a
        reused directory are ignored rather than merged in.
        """
        if store is None or not self._resuming:
            return pristine, 0, 0, False
        snapshot = store.try_load(shard_checkpoint_tag(worker))
        if snapshot is None or snapshot.meta.get("run_id") != self._run_id:
            return pristine, 0, 0, False
        return (
            snapshot.state, snapshot.chunk_index, snapshot.position,
            snapshot.complete,
        )

    def _save_run_checkpoint(
        self,
        store: CheckpointStore,
        shards: List[Dict[str, Any]],
        source: Any,
        chunk_size: int,
    ) -> None:
        """Write the job manifest before any worker starts.

        A run killed at *any* later instant therefore resumes: worker
        snapshots only refine the starting points this manifest already
        guarantees.
        """
        # repro: allow-os-entropy run-identity nonce, not algorithmic
        # randomness: stale-snapshot isolation needs it unique across
        # runs, and it never influences any answer
        self._run_id = secrets.token_hex(8)
        meta = {
            "run_id": self._run_id,
            "source": str(source),
            "n_workers": self.n_workers,
            "chunk_size": chunk_size,
            "backend": self.backend,
            "mmap": bool(self.mmap),
            "readahead": self.readahead,
            "readahead_depth": self.readahead_depth,
            "retries": self.retries,
            "timeout_s": self.timeout_s,
            "on_failure": self.on_failure,
            "checkpoint_every": self.checkpoint_every,
            "labels": list(self._processors),
        }
        store.save(
            RUN_TAG,
            {"processors": dict(self._processors), "shards": shards},
            chunk_index=0, position=0, meta=meta,
        )

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(
        self, source: Any = None, chunk_size: Optional[int] = None
    ) -> Dict[str, Any]:
        """Shard, execute, merge, finalize: ``name -> answer``.

        Answers match a single-core
        :class:`~repro.engine.runner.FanoutRunner` pass over the same
        stream — bit-identically for the linear/exact structures,
        guarantee-identically for the sampled/counter summaries (see
        ``tests/integration/test_sharded_equivalence.py``).

        Shard summaries combine along the fixed shard-index reduction
        tree of :mod:`repro.engine.merge` — distributed across the
        workers themselves on the plain process path — so the combine
        order, and with it every answer, is a function of ``n_workers``
        alone, never of timing or backend.
        """
        if source is None:
            source = self._resume_source
        if source is None:
            raise TypeError(
                "run() requires a source (or a runner built by "
                "ShardedRunner.resume(), which remembers its file)"
            )
        if not self._processors:
            raise RuntimeError("no processors registered; call add() first")
        chunk_size = chunk_size or self.chunk_size
        if self.mmap and not isinstance(source, (str, Path)):
            raise ValueError(
                "mmap streaming requires a stream-file path source"
            )
        store = self._checkpoint_store()
        if store is not None and not isinstance(source, (str, Path)):
            raise ValueError(
                "checkpointing requires a stream-file path source"
            )
        routing = self.routing()
        plain = (
            store is None
            and (self.fault_plan is None or self.fault_plan.is_noop)
            and not self._resuming
        )
        if self.n_workers == 1 and plain:
            # Degenerate case: the exact single-core reference path.
            runner = FanoutRunner(self._processors, chunk_size=chunk_size)
            if self.mmap:
                from repro.streams.persist import ChunkedStreamReader

                source = ChunkedStreamReader(
                    source,
                    mmap=True,
                    readahead=self._effective_readahead(True),
                    readahead_depth=self.readahead_depth,
                )
            runner.process(source, chunk_size)
            self._merged = dict(self._processors)
            return runner.finalize()

        if self._resuming:
            shards = self._resume_shards
        elif self.n_workers == 1:
            # Single checkpointed/faulted worker: no split (stays
            # bit-identical to the FanoutRunner reference even for
            # seed-splitting summaries), same machinery otherwise.
            shards = [dict(self._processors)]
        else:
            shards = self._split_shards()
        if store is not None and not self._resuming:
            self._save_run_checkpoint(store, shards, source, chunk_size)
        if self.backend == "serial":
            completed = self._run_serial(shards, source, routing, chunk_size)
        else:
            completed = self._run_processes(shards, source, routing, chunk_size)
        return self._merge_and_finalize(completed)

    def _merge_and_finalize(
        self, completed: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Combine shard summaries along the reduction tree, finalize.

        Every combine path — serial backend, queue pool, file pool,
        and the distributed worker-side tree — uses the same
        shard-index merge order (see :mod:`repro.engine.merge`), so
        answers never depend on which backend ran the pass.
        """
        self._merged = {}
        results = {}
        for name in self._processors:
            merged = tree_reduce(
                [shard[name] for shard in completed],
                lambda mine, theirs: mine.merge(theirs),
            )
            self._merged[name] = merged
            results[name] = merged.finalize()
        return results

    def _split_shards(self) -> List[Dict[str, Any]]:
        """Per-worker ``name -> shard processor`` dicts."""
        shards: List[Dict[str, Any]] = [{} for _ in range(self.n_workers)]
        for name, processor in self._processors.items():
            for worker, piece in enumerate(processor.split(self.n_workers)):
                shards[worker][name] = piece
        return shards

    def _run_serial(
        self,
        shards: List[Dict[str, Any]],
        source: Any,
        routing: ShardRouting,
        chunk_size: int,
    ) -> List[Dict[str, Any]]:
        """The split/route/merge pipeline on one core (shard at a time).

        In-memory sources may be consumed only once (chunk iterables),
        so chunks are materialised and replayed per shard; file sources
        are re-read per shard, exactly like the process backend.
        """
        if isinstance(source, (str, Path)):
            store = self._checkpoint_store()
            mmap = self._worker_mmap(source)
            readahead = self._effective_readahead(mmap)
            completed = []
            for worker, shard in enumerate(shards):
                state, start_chunk, start_position, done = self._shard_start(
                    store, worker, shard
                )
                if done:
                    completed.append(state)
                    continue
                completed.append(
                    _drive(
                        state, source, routing, worker, self.n_workers,
                        chunk_size, mmap, readahead, self.readahead_depth,
                        start_chunk=start_chunk,
                        start_position=start_position,
                        fault_plan=self.fault_plan,
                        checkpoint=self._shard_checkpoint(worker),
                        in_process=True,
                    )
                )
            return completed
        chunks = list(as_chunks(source, chunk_size))
        return [
            _drive(
                shard, iter(chunks), routing, worker, self.n_workers,
                chunk_size, False,
                fault_plan=self.fault_plan, in_process=True,
            )
            for worker, shard in enumerate(shards)
        ]

    def _worker_mmap(self, source) -> bool:
        """Whether shard workers should memory-map ``source``.

        Even without an explicit ``mmap=True``, every worker mapping a
        stored v2 archive beats every worker eagerly loading its own
        full copy of the columns — the workers then share one page
        cache.  Compressed archives fall back to eager loading inside
        the reader; v1 text is parsed incrementally either way.
        """
        if self.mmap:
            return True
        from repro.streams.persist import detect_version

        try:
            return detect_version(source) == 2
        except OSError:
            return False

    def _effective_readahead(self, mmap: bool) -> bool:
        """Resolve the auto (``None``) readahead setting.

        Cold memory-mapped file passes are exactly where prefetch pays:
        every chunk's first touch is a page-in that would otherwise
        stall the worker's compute.  Eager and in-memory sources have
        no deferred I/O, so auto resolves to off there.
        """
        if self.readahead is not None:
            return self.readahead
        return bool(mmap)

    def _run_processes(
        self,
        shards: List[Dict[str, Any]],
        source: Any,
        routing: ShardRouting,
        chunk_size: int,
    ) -> List[Dict[str, Any]]:
        context = _fork_context()
        if context is None:
            # No fork on this platform: identical answers, one core.
            return self._run_serial(shards, source, routing, chunk_size)
        if isinstance(source, (str, Path)):
            return self._run_file_pool(context, shards, source, routing, chunk_size)
        return self._run_queue_pool(context, shards, source, routing, chunk_size)

    def _run_file_pool(
        self, context, shards, source, routing, chunk_size
    ) -> List[Dict[str, Any]]:
        """Workers read the stream file themselves — zero data IPC.

        One explicitly managed process per shard (rather than a
        ``Pool``), each reporting over a dedicated one-shot pipe
        created fresh per attempt.  The private pipe makes failure
        detection an event rather than a poll: a worker killed by the
        OS (or whose result was dropped by fault injection) closes its
        write end without sending, which the parent sees as EOF and —
        the workers being side-effect-free — answers by relaunching
        the shard under the retry policy with exponential backoff.  A
        message from a superseded attempt is impossible: it would have
        gone to a pipe the parent no longer holds.

        On the plain fail-fast path (no retries, no timeouts, no
        checkpoints, no fault injection, no resume) the pool instead
        merges worker-side along the reduction tree — see
        :meth:`_run_file_tree`.
        """
        if (
            self.n_workers > 1
            and self.on_failure == "raise"
            and self.timeout_s is None
            and self._checkpoint_store() is None
            and (self.fault_plan is None or self.fault_plan.is_noop)
            and not self._resuming
        ):
            return self._run_file_tree(
                context, shards, source, routing, chunk_size
            )
        mmap = self._worker_mmap(source)
        readahead = self._effective_readahead(mmap)
        store = self._checkpoint_store()
        completed: List[Optional[Dict[str, Any]]] = [None] * self.n_workers
        starts: Dict[int, Tuple[Dict[str, Any], int, int]] = {}
        pending = set()
        for worker, shard in enumerate(shards):
            state, start_chunk, start_position, done = self._shard_start(
                store, worker, shard
            )
            if done:
                completed[worker] = state
            else:
                starts[worker] = (state, start_chunk, start_position)
                pending.add(worker)
        if not pending:
            return completed  # type: ignore[return-value]

        procs: Dict[int, Any] = {}
        results: Dict[int, Any] = {}
        deadlines: Dict[int, Optional[float]] = {}
        attempts = {worker: 0 for worker in pending}
        fallback: List[int] = []

        def launch(worker: int) -> None:
            state, start_chunk, start_position = starts[worker]
            task = (
                worker, attempts[worker], self.n_workers, state,
                str(source), routing, chunk_size, mmap, readahead,
                self.readahead_depth, start_chunk, start_position,
                self.fault_plan, self._shard_checkpoint(worker),
            )
            recv_end, send_end = context.Pipe(duplex=False)
            process = context.Process(
                target=_file_worker, args=(send_end, task), daemon=True
            )
            process.start()
            # The child's inherited copy is now the only writer, so the
            # read end hits EOF the moment the worker is gone.
            send_end.close()
            procs[worker] = process
            results[worker] = recv_end
            deadlines[worker] = (
                None if self.timeout_s is None
                else time.monotonic() + self.timeout_s
            )

        def reap(worker: int, kill: bool = False) -> None:
            process = procs.pop(worker, None)
            recv_end = results.pop(worker, None)
            deadlines.pop(worker, None)
            if recv_end is not None:
                recv_end.close()
            if process is None:
                return
            if kill and process.is_alive():
                process.terminate()
            process.join(timeout=self.WORKER_JOIN_TIMEOUT_S)
            if process.is_alive():
                process.terminate()
                process.join(timeout=self.TERMINATE_JOIN_TIMEOUT_S)

        def fail(worker: int, retryable: bool, error: Exception) -> None:
            reap(worker, kill=True)
            if not retryable or self.on_failure == "raise":
                raise error
            if attempts[worker] < self.retries:
                attempts[worker] += 1
                self.retries_used += 1
                time.sleep(self.RETRY_BACKOFF_S * 2 ** (attempts[worker] - 1))
                launch(worker)
                return
            if self.on_failure == "serial_fallback":
                pending.discard(worker)
                fallback.append(worker)
                return
            raise error

        def absorb(worker: int) -> None:
            process = procs[worker]
            try:
                message = results[worker].recv()
            except (EOFError, OSError):
                fail(
                    worker, True,
                    ShardedWorkerError(
                        f"sharded worker {worker} terminated abnormally "
                        f"without reporting a result "
                        f"(exit code {process.exitcode})",
                        cause_type="WorkerDied",
                        worker=worker,
                    ),
                )
                return
            if (
                not isinstance(message, tuple)
                or len(message) != 4
                or message[0] != worker
                or message[1] != attempts[worker]
            ):
                raise ShardedWorkerError(
                    f"sharded worker returned a corrupt result message: "
                    f"{message!r}",
                    cause_type="CorruptResult",
                    worker=worker,
                )
            _worker, _attempt, processors, error = message
            if error is None:
                completed[worker] = processors
                pending.discard(worker)
                reap(worker)
                return
            cause_type, is_stream_error, formatted, retryable = error
            fail(
                worker, retryable,
                ShardedWorkerError(
                    f"sharded worker {worker} failed:\n{formatted}",
                    cause_type=cause_type,
                    is_stream_error=is_stream_error,
                    worker=worker,
                ),
            )

        try:
            for worker in sorted(pending):
                launch(worker)
            while pending and procs:
                readers = {
                    results[worker]: worker
                    for worker in sorted(pending)
                    if worker in procs
                }
                ready = mp_connection.wait(
                    list(readers), timeout=self.RESULT_POLL_TIMEOUT_S
                )
                if ready:
                    # One event per iteration: absorbing can relaunch
                    # processes and recycle pipes, so recompute the
                    # wait set rather than trusting the rest of
                    # ``ready``.
                    absorb(readers[ready[0]])
                    continue
                if self.timeout_s is None:
                    continue
                now = time.monotonic()
                for worker in sorted(pending):
                    deadline = deadlines.get(worker)
                    if (
                        worker in procs
                        and deadline is not None
                        and now >= deadline
                    ):
                        fail(
                            worker, True,
                            ShardedWorkerError(
                                f"sharded worker {worker} exceeded the "
                                f"per-shard timeout of {self.timeout_s}s",
                                cause_type="TimeoutError",
                                worker=worker,
                            ),
                        )
                        break
        finally:
            for worker in list(procs):
                reap(worker, kill=True)

        for worker in fallback:
            # Last resort after `retries` dead workers: run the shard
            # in-process.  Deterministic in-process kill faults are
            # rejected by the plan itself (see FaultPlan.fire).
            self.fallbacks_used += 1
            state, start_chunk, start_position = starts[worker]
            completed[worker] = _drive(
                state, source, routing, worker, self.n_workers,
                chunk_size, mmap, readahead, self.readahead_depth,
                start_chunk=start_chunk, start_position=start_position,
                fault_plan=self.fault_plan, attempt=attempts[worker] + 1,
                checkpoint=self._shard_checkpoint(worker), in_process=True,
            )
        return completed  # type: ignore[return-value]

    def _run_file_tree(
        self, context, shards, source, routing, chunk_size
    ) -> List[Dict[str, Any]]:
        """Plain-path file pool: workers merge pairwise before reporting.

        Replaces the serial parent-side fold over ``n_workers`` full
        summary maps with the distributed reduction tree of
        :func:`~repro.engine.merge.tree_rounds`: in round ``k`` worker
        ``i + 2**k`` ships its (already partially merged) summaries
        over a pre-forked pipe to worker ``i``, which folds them in
        shard order.  Merges at the same depth run on different cores
        concurrently, the chain the parent must wait for is ``log2``
        deep instead of linear, and the parent receives exactly one
        fully merged map (from worker 0) instead of ``n_workers``.
        The merge order is the one :func:`~repro.engine.merge.tree_reduce`
        executes in-process, so answers match the serial backend
        exactly (see :mod:`repro.engine.merge` for which structures
        that makes bit-identical).

        The path is fail-fast by construction — it is only taken under
        ``on_failure="raise"`` with no timeout, checkpointing, fault
        injection, or resume state.  A worker that raises reports its
        error over its result pipe; one that dies silently surfaces as
        EOF both to its tree partner (whose stray pipe copies were
        closed at startup precisely so the tree cannot deadlock on a
        dead peer) and to the parent, which kills the survivors and
        raises the primary cause.
        """
        mmap = self._worker_mmap(source)
        readahead = self._effective_readahead(mmap)
        n_workers = self.n_workers

        # Tree plumbing, created before any fork so every edge can be
        # handed to both of its endpoints (and closed by everyone
        # else).
        recv_edges: Dict[int, List[Any]] = {w: [] for w in range(n_workers)}
        send_edges: Dict[int, Any] = {}
        owned: Dict[int, List[Any]] = {w: [] for w in range(n_workers)}
        edge_conns: List[Any] = []
        for pairs in tree_rounds(n_workers):
            for receiver, sender in pairs:
                recv_end, send_end = context.Pipe(duplex=False)
                recv_edges[receiver].append(recv_end)
                send_edges[sender] = send_end
                owned[receiver].append(recv_end)
                owned[sender].append(send_end)
                edge_conns.extend((recv_end, send_end))

        procs: Dict[int, Any] = {}
        results: Dict[int, Any] = {}
        merged: Optional[Dict[str, Any]] = None
        try:
            for worker, shard in enumerate(shards):
                task = (
                    worker, n_workers, shard, str(source), routing,
                    chunk_size, mmap, readahead, self.readahead_depth,
                )
                mine = set(map(id, owned[worker]))
                strays = [c for c in edge_conns if id(c) not in mine]
                recv_end, send_end = context.Pipe(duplex=False)
                process = context.Process(
                    target=_tree_file_worker,
                    args=(
                        send_end, task, recv_edges[worker],
                        send_edges.get(worker), strays,
                    ),
                    daemon=True,
                )
                process.start()
                send_end.close()
                procs[worker] = process
                results[worker] = recv_end
            # The children now hold the only live copies of the tree
            # pipes; the parent keeping them open would mask peer
            # deaths (no EOF) and deadlock the tree.
            for conn in edge_conns:
                conn.close()

            errors: Dict[int, ShardedWorkerError] = {}
            pending = set(range(n_workers))
            readers = {results[worker]: worker for worker in pending}
            while pending and not errors:
                ready = mp_connection.wait(
                    [results[worker] for worker in sorted(pending)],
                    timeout=self.RESULT_POLL_TIMEOUT_S,
                )
                for recv_end in ready:
                    worker = readers[recv_end]
                    try:
                        message = recv_end.recv()
                    except (EOFError, OSError):
                        pending.discard(worker)
                        errors[worker] = ShardedWorkerError(
                            f"sharded worker {worker} terminated "
                            f"abnormally without reporting a result "
                            f"(exit code {procs[worker].exitcode})",
                            cause_type="WorkerDied",
                            worker=worker,
                        )
                        continue
                    if (
                        not isinstance(message, tuple)
                        or len(message) != 3
                        or message[0] != worker
                    ):
                        raise ShardedWorkerError(
                            f"sharded worker returned a corrupt result "
                            f"message: {message!r}",
                            cause_type="CorruptResult",
                            worker=worker,
                        )
                    _worker, processors, error = message
                    pending.discard(worker)
                    if error is not None:
                        cause_type, is_stream_error, formatted, _ = error
                        errors[worker] = ShardedWorkerError(
                            f"sharded worker {worker} failed:\n{formatted}",
                            cause_type=cause_type,
                            is_stream_error=is_stream_error,
                            worker=worker,
                        )
                    elif worker == 0:
                        merged = processors
            if errors:
                raise self._primary_tree_error(errors)
            if merged is None:
                raise ShardedWorkerError(
                    "sharded worker 0 finished without reporting the "
                    "merged summaries",
                    cause_type="CorruptResult",
                    worker=0,
                )
        finally:
            for worker, process in procs.items():
                recv_end = results.get(worker)
                if recv_end is not None:
                    recv_end.close()
                if process.is_alive():
                    process.terminate()
                process.join(timeout=self.WORKER_JOIN_TIMEOUT_S)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=self.TERMINATE_JOIN_TIMEOUT_S)
        return [merged]

    @staticmethod
    def _primary_tree_error(
        errors: Dict[int, "ShardedWorkerError"],
    ) -> "ShardedWorkerError":
        """The root cause out of a tree-abort cascade.

        A worker that raises reports the actual exception; its tree
        partners then see EOF on their edges and the parent may see
        workers die — all consequences, not causes.  Prefer the
        reported exception; fall back to the lowest worker index.
        """
        secondary = ("EOFError", "OSError", "WorkerDied")
        for worker in sorted(errors):
            if errors[worker].cause_type not in secondary:
                return errors[worker]
        return errors[min(errors)]

    def _run_queue_pool(
        self, context, shards, source, routing, chunk_size
    ) -> List[Dict[str, Any]]:
        """Parent routes chunks to bounded per-worker queues.

        In-memory sources are consumed exactly once, so a dead queue
        worker is not retryable — failures raise regardless of the
        ``on_failure`` policy (persist the stream to a file to get
        retry semantics).

        When the shared-memory transport is engaged (see
        ``shm_transport``), the queues carry only :class:`ShmChunk`
        descriptors; the column bytes travel through a recycled pool of
        shared segments that the ``finally`` below unlinks on every
        exit — including failure paths where a worker died without
        releasing its segments.
        """
        use_shm = self.shm_transport
        if use_shm is None:
            use_shm = shm_available()
        publisher = ChunkPublisher() if use_shm else None
        release_queue = context.Queue() if use_shm else None
        in_queues = [
            context.Queue(maxsize=_QUEUE_DEPTH) for _ in range(self.n_workers)
        ]
        out_queue = context.Queue()
        workers = [
            context.Process(
                target=_queue_worker,
                args=(worker, shards[worker], chunk_size, in_queues[worker],
                      out_queue, self.fault_plan, release_queue),
                daemon=True,
            )
            for worker in range(self.n_workers)
        ]
        for process in workers:
            process.start()
        clean = False
        try:
            position = 0
            for chunk_index, chunk in enumerate(as_chunks(source, chunk_size)):
                routed_all = route_chunk_all(
                    chunk, routing, self.n_workers, chunk_index, position
                )
                if publisher is not None:
                    publisher.drain(release_queue)
                    routed_all = publisher.publish(routed_all)
                for worker, routed in enumerate(routed_all):
                    if routed is not None:
                        self._put_alive(in_queues[worker], routed,
                                        workers[worker], worker)
                position += len(chunk[0])
            for worker, queue in enumerate(in_queues):
                self._put_alive(queue, None, workers[worker], worker)
            outcomes = self._gather_outcomes(out_queue, workers)
            clean = True
        finally:
            for process in workers:
                # On an error path the surviving workers may still be
                # blocked waiting for chunks that will never come —
                # don't stall a full join timeout per worker before
                # surfacing it.
                if not clean and process.is_alive():
                    process.terminate()
                process.join(timeout=self.WORKER_JOIN_TIMEOUT_S)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=self.TERMINATE_JOIN_TIMEOUT_S)
            if publisher is not None:
                publisher.close()
        return self._collect(outcomes)

    def _put_alive(self, queue, item, process, worker) -> None:
        """Bounded-queue put that notices a dead or wedged consumer.

        A worker killed abnormally (OOM, segfault) never drains its
        queue; an unconditional blocking put would hang the parent
        forever once the queue fills.  A worker that is alive but has
        stopped consuming (deadlocked processor) is given up on after
        ``QUEUE_PUT_DEADLINE_S``.
        """
        deadline = time.monotonic() + self.QUEUE_PUT_DEADLINE_S
        while True:
            try:
                queue.put(item, timeout=self.QUEUE_PUT_TIMEOUT_S)
                return
            except queue_module.Full:
                if not process.is_alive():
                    raise RuntimeError(
                        f"sharded worker {worker} terminated abnormally "
                        f"(exit code {process.exitcode}) while the stream "
                        f"was still being routed to it"
                    ) from None
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        f"sharded worker {worker} stopped consuming its "
                        f"chunk queue for {self.QUEUE_PUT_DEADLINE_S:g}s "
                        f"while still alive; giving up routing to it"
                    ) from None

    def _gather_outcomes(self, out_queue, workers):
        """Collect one result per worker, noticing abnormal deaths.

        A worker that hits a Python-level error reports it through the
        queue; a worker killed by the OS never does, so waiting must
        watch process liveness rather than block forever.
        """
        outcomes = []
        pending = set(range(self.n_workers))
        while pending:
            try:
                outcome = out_queue.get(timeout=self.RESULT_POLL_TIMEOUT_S)
            except queue_module.Empty:
                dead = [w for w in pending if not workers[w].is_alive()]
                if dead:
                    # Grace period: a result already sent may still be
                    # in the pipe after the sender exited.
                    try:
                        outcome = out_queue.get(
                            timeout=self.RESULT_GRACE_TIMEOUT_S
                        )
                    except queue_module.Empty:
                        codes = {w: workers[w].exitcode for w in dead}
                        raise RuntimeError(
                            f"sharded worker(s) {sorted(dead)} terminated "
                            f"abnormally without reporting a result "
                            f"(exit codes {codes})"
                        ) from None
                else:
                    continue
            if (
                not isinstance(outcome, tuple)
                or len(outcome) != 3
                or not isinstance(outcome[0], int)
                or not 0 <= outcome[0] < self.n_workers
            ):
                raise ShardedWorkerError(
                    f"sharded worker returned a corrupt result message: "
                    f"{outcome!r}",
                    cause_type="CorruptResult",
                )
            outcomes.append(outcome)
            pending.discard(outcome[0])
        return outcomes

    def _collect(self, outcomes) -> List[Dict[str, Any]]:
        """Order worker results 0..W-1, surfacing worker tracebacks."""
        completed: List[Optional[Dict[str, Any]]] = [None] * self.n_workers
        for worker, processors, error in outcomes:
            if error is not None:
                cause_type, is_stream_error, formatted, _retryable = error
                raise ShardedWorkerError(
                    f"sharded worker {worker} failed:\n{formatted}",
                    cause_type=cause_type,
                    is_stream_error=is_stream_error,
                    worker=worker,
                )
            completed[worker] = processors
        return completed  # type: ignore[return-value]


def run_sharded(
    processors: Mapping[str, Any],
    source: Any,
    *,
    n_workers: int = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    mmap: bool = False,
    readahead: Optional[bool] = None,
    readahead_depth: int = 1,
    backend: str = "process",
    retries: int = 2,
    timeout_s: Optional[float] = None,
    on_failure: str = "raise",
    checkpoint_dir: Optional[Union[str, Path]] = None,
    checkpoint_every: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    shm_transport: Optional[bool] = None,
) -> Dict[str, Any]:
    """One-shot convenience: build a ShardedRunner, run it, return answers.

    Prefer assembling runs through :class:`repro.pipeline.Pipeline`,
    which adds spec validation, registries, and typed results on top of
    the same execution path; this helper remains for direct engine use.
    """
    return ShardedRunner(
        processors,
        n_workers=n_workers,
        chunk_size=chunk_size,
        mmap=mmap,
        readahead=readahead,
        readahead_depth=readahead_depth,
        backend=backend,
        retries=retries,
        timeout_s=timeout_s,
        on_failure=on_failure,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        fault_plan=fault_plan,
        shm_transport=shm_transport,
    ).run(source)
