"""Sharded parallel execution: a multi-core :class:`FanoutRunner`.

:class:`ShardedRunner` turns the single-pass batch engine into a
parallel one.  Every registered structure is :meth:`split
<repro.engine.protocol.MergeableStreamProcessor.split>` into
``n_workers`` independent shard instances; a pool of worker processes
each runs a :class:`~repro.engine.runner.FanoutRunner` over its shard
of the stream; the shard summaries stream back to the parent, which
:meth:`merge <repro.engine.protocol.MergeableStreamProcessor.merge>`\\ s
them and finalizes — the classical mergeable-summaries execution plan
(Agarwal et al.) applied to every structure in the library.

How the stream is partitioned is dictated by the structures themselves
through their ``shard_routing`` metadata (see
:mod:`repro.engine.protocol`):

* ``"any"`` — chunks are dealt round-robin (linear sketches and counter
  summaries merge correctly for any split);
* ``"vertex"`` — updates are routed by a hash of the A-endpoint, so
  degree counts and residency-window witness collection stay exact
  inside each vertex's owning shard (Algorithms 1–2, witness
  baselines);
* ``("window", w)`` — updates are routed by global stream position in
  blocks of ``w`` (the tumbling-window wrapper, whose per-window
  instances are seeded by global window index).

A run registers processors with *compatible* routings only (``"any"``
composes with either of the others; vertex and window routing cannot
share one partition).

Two execution backends:

* ``"process"`` (default) — a ``fork``-based worker pool.  For
  *file sources* every worker opens the persisted stream itself
  (optionally memory-mapped) and filters its own sub-stream, so no
  update data ever crosses a pipe — the out-of-core path: a
  multi-gigabyte v2 file streams through ``n_workers`` cores without
  being materialised anywhere.  For in-memory sources the parent
  routes chunks to bounded per-worker queues (backpressure included).
  On platforms without ``fork`` the runner falls back to the serial
  backend (same answers, no parallelism).
* ``"serial"`` — the identical split/route/merge pipeline executed in
  process, one shard at a time.  Useful for tests, debugging, and
  single-core hosts; answers are identical to the process backend.

With ``n_workers=1`` the runner degenerates to a plain
:class:`~repro.engine.runner.FanoutRunner` pass (no split, no merge) —
the single-core reference path the equivalence suite compares against.
"""

from __future__ import annotations

import queue as queue_module
import traceback
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.engine.protocol import (
    SHARD_ANY,
    SHARD_BY_VERTEX,
    ShardRouting,
    combined_routing,
    ensure_mergeable,
    shard_routing_of,
)
from repro.engine.runner import FanoutRunner, as_chunks
from repro.streams.columnar import DEFAULT_CHUNK_SIZE, Columns

#: Fibonacci multiplier (golden-ratio reciprocal in 64 bits) for the
#: vertex-hash shard route.
_FIB = np.uint64(0x9E3779B97F4A7C15)
_SHIFT = np.uint64(33)

#: Bounded per-worker chunk queue length (backpressure for in-memory
#: sources much larger than what the workers can absorb).
_QUEUE_DEPTH = 8

BACKENDS = ("process", "serial")


class ShardedWorkerError(RuntimeError):
    """A shard worker failed; carries structured cause information.

    ``cause_type`` is the original exception class name;
    ``is_stream_error`` is True for input problems (stream format,
    I/O) that callers like the CLI handle with a friendly message
    rather than a traceback.
    """

    def __init__(
        self, message: str, cause_type: str, is_stream_error: bool = False
    ) -> None:
        super().__init__(message)
        self.cause_type = cause_type
        self.is_stream_error = is_stream_error


def _fork_context():
    """The fork multiprocessing context, or None where unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def fork_available() -> bool:
    """True when the process backend can actually run in parallel here."""
    return _fork_context() is not None


def _describe_error(exc: BaseException) -> Tuple[str, bool, str]:
    """Structured worker-failure report: (class name, is-stream-error,
    formatted traceback)."""
    from repro.streams.persist import StreamFormatError

    return (
        type(exc).__name__,
        isinstance(exc, (StreamFormatError, OSError)),
        traceback.format_exc(),
    )


def vertex_shard(a: np.ndarray, n_shards: int) -> np.ndarray:
    """Shard id of every A-endpoint: a fixed multiplicative (Fibonacci)
    hash, deterministic across runs, processes and platforms."""
    mixed = (np.asarray(a).astype(np.uint64) * _FIB) >> _SHIFT
    return (mixed % np.uint64(n_shards)).astype(np.int64)


def _shard_ids(
    chunk: Columns,
    routing: ShardRouting,
    n_workers: int,
    chunk_index: int,
    position: int,
):
    """Shard assignment for one chunk: a per-update id array for masked
    routings, or the single owning worker (int) for whole-chunk
    round-robin.  The one copy of the routing arithmetic — file-pool
    and queue-pool workers must stay bit-identical.
    """
    if routing == SHARD_ANY:
        return chunk_index % n_workers
    a = chunk[0]
    if routing == SHARD_BY_VERTEX:
        return vertex_shard(a, n_workers)
    window = routing[1]  # ("window", w): global-position window index
    return (
        (position + np.arange(len(a), dtype=np.int64)) // window
    ) % n_workers


def _mask_select(chunk: Columns, mask: np.ndarray) -> Optional[Columns]:
    if not mask.any():
        return None
    if mask.all():
        return chunk
    a, b, sign = chunk
    return a[mask], b[mask], None if sign is None else sign[mask]


def route_chunk(
    chunk: Columns,
    routing: ShardRouting,
    worker: int,
    n_workers: int,
    chunk_index: int,
    position: int,
) -> Optional[Columns]:
    """The sub-chunk of ``chunk`` that worker ``worker`` must process.

    ``chunk_index`` and ``position`` are the chunk's ordinal and the
    global position of its first update (both ignored unless the
    routing needs them).  Returns ``None`` when nothing in the chunk is
    routed to this worker.
    """
    ids = _shard_ids(chunk, routing, n_workers, chunk_index, position)
    if isinstance(ids, int):
        return chunk if ids == worker else None
    return _mask_select(chunk, ids == worker)


def route_chunk_all(
    chunk: Columns,
    routing: ShardRouting,
    n_workers: int,
    chunk_index: int,
    position: int,
) -> List[Optional[Columns]]:
    """Every worker's sub-chunk in one pass.

    Computes the shard-id array once per chunk instead of once per
    worker — the parent process is the routing bottleneck for
    queue-fed runs, so the hash/division work must not scale with the
    worker count.
    """
    ids = _shard_ids(chunk, routing, n_workers, chunk_index, position)
    if isinstance(ids, int):
        return [chunk if worker == ids else None for worker in range(n_workers)]
    return [
        _mask_select(chunk, ids == worker) for worker in range(n_workers)
    ]


def _drive(
    shard: Dict[str, Any],
    source: Any,
    routing: ShardRouting,
    worker: int,
    n_workers: int,
    chunk_size: int,
    mmap: bool,
    readahead: bool = False,
    readahead_depth: int = 1,
) -> Dict[str, Any]:
    """Run one shard's FanoutRunner over its routed sub-stream."""
    runner = FanoutRunner(shard, chunk_size=chunk_size)
    if isinstance(source, (str, Path)):
        from repro.streams.persist import ChunkedStreamReader

        chunks = ChunkedStreamReader(
            source, mmap=mmap, readahead=readahead,
            readahead_depth=readahead_depth,
        ).chunks(chunk_size)
    else:
        chunks = as_chunks(source, chunk_size)
    position = 0
    for chunk_index, chunk in enumerate(chunks):
        routed = route_chunk(
            chunk, routing, worker, n_workers, chunk_index, position
        )
        position += len(chunk[0])
        if routed is not None:
            runner.process_chunk(*routed)
    return dict(runner._processors)


def _file_worker(args) -> Tuple[int, Any, Any]:
    """Process-pool body for file sources: self-read, filter, return."""
    (worker, n_workers, shard, path, routing, chunk_size, mmap, readahead,
     readahead_depth) = args
    try:
        processors = _drive(
            shard, path, routing, worker, n_workers, chunk_size, mmap,
            readahead, readahead_depth,
        )
        return worker, processors, None
    except BaseException as exc:
        return worker, None, _describe_error(exc)


def _queue_worker(worker, shard, chunk_size, in_queue, out_queue) -> None:
    """Process body for in-memory sources: consume routed chunks."""
    try:
        runner = FanoutRunner(shard, chunk_size=chunk_size)
        while True:
            chunk = in_queue.get()
            if chunk is None:
                break
            runner.process_chunk(*chunk)
        out_queue.put((worker, dict(runner._processors), None))
    except BaseException as exc:
        error = _describe_error(exc)
        # Keep draining until the sentinel so the parent's bounded-queue
        # puts never block on a worker that has stopped consuming.
        while in_queue.get() is not None:
            pass
        out_queue.put((worker, None, error))


class ShardedRunner:
    """Multi-core counterpart of :class:`~repro.engine.runner.FanoutRunner`.

    Args:
        processors: optional initial ``name -> processor`` mapping; every
            processor must implement the mergeable-summary layer
            (``merge``/``split``/``shard_routing``).
        n_workers: shard count = worker process count.
        chunk_size: updates per chunk handed to ``process_batch``.
        mmap: memory-map v2 stream files instead of loading them (file
            sources only; the out-of-core path).
        readahead: prefetch each worker's upcoming chunks on background
            threads while the current one is processed (effective for
            memory-mapped file sources; identical chunk contents).
            ``None`` (default) auto-enables readahead exactly when the
            workers will memory-map a file source — the cold-cache
            pass whose page-in latency readahead exists to hide; pass
            ``False`` to force it off.
        readahead_depth: chunks each worker's prefetcher keeps in
            flight (default 1, the classic double buffer).
        backend: ``"process"`` (fork pool; default) or ``"serial"``.

    Usage::

        runner = ShardedRunner({"alg2": InsertionOnlyFEwW(...)}, n_workers=4)
        results = runner.run("workload.npz")   # same answers as FanoutRunner
        merged = runner["alg2"]                # the merged processor
    """

    def __init__(
        self,
        processors: Optional[Mapping[str, Any]] = None,
        *,
        n_workers: int = 2,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        mmap: bool = False,
        readahead: Optional[bool] = None,
        readahead_depth: int = 1,
        backend: str = "process",
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if readahead_depth < 1:
            raise ValueError(
                f"readahead_depth must be >= 1, got {readahead_depth}"
            )
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.n_workers = n_workers
        self.chunk_size = chunk_size
        self.mmap = mmap
        self.readahead = None if readahead is None else bool(readahead)
        self.readahead_depth = int(readahead_depth)
        self.backend = backend
        self._processors: Dict[str, Any] = {}
        self._merged: Dict[str, Any] = {}
        if processors is not None:
            for name, processor in processors.items():
                self.add(name, processor)

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------

    def add(self, name: str, processor: Any) -> "ShardedRunner":
        """Register a mergeable processor under ``name``; returns self."""
        if name in self._processors:
            raise ValueError(f"processor {name!r} already registered")
        self._processors[name] = ensure_mergeable(processor, name)
        return self

    def __len__(self) -> int:
        return len(self._processors)

    def __getitem__(self, name: str) -> Any:
        """The merged processor after :meth:`run` (the registered one
        before)."""
        if name in self._merged:
            return self._merged[name]
        return self._processors[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._processors)

    def routing(self) -> ShardRouting:
        """The single stream partition satisfying every processor."""
        if not self._processors:
            raise RuntimeError("no processors registered; call add() first")
        return combined_routing(
            [
                shard_routing_of(processor, name)
                for name, processor in self._processors.items()
            ]
        )

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, source: Any, chunk_size: Optional[int] = None) -> Dict[str, Any]:
        """Shard, execute, merge, finalize: ``name -> answer``.

        Answers match a single-core
        :class:`~repro.engine.runner.FanoutRunner` pass over the same
        stream — bit-identically for the linear/exact structures,
        guarantee-identically for the sampled/counter summaries (see
        ``tests/integration/test_sharded_equivalence.py``).
        """
        if not self._processors:
            raise RuntimeError("no processors registered; call add() first")
        chunk_size = chunk_size or self.chunk_size
        if self.mmap and not isinstance(source, (str, Path)):
            raise ValueError(
                "mmap streaming requires a stream-file path source"
            )
        routing = self.routing()
        if self.n_workers == 1:
            # Degenerate case: the exact single-core reference path.
            runner = FanoutRunner(self._processors, chunk_size=chunk_size)
            if self.mmap:
                from repro.streams.persist import ChunkedStreamReader

                source = ChunkedStreamReader(
                    source,
                    mmap=True,
                    readahead=self._effective_readahead(True),
                    readahead_depth=self.readahead_depth,
                )
            runner.process(source, chunk_size)
            self._merged = dict(self._processors)
            return runner.finalize()

        shards = self._split_shards()
        if self.backend == "serial":
            completed = self._run_serial(shards, source, routing, chunk_size)
        else:
            completed = self._run_processes(shards, source, routing, chunk_size)
        return self._merge_and_finalize(completed)

    def _merge_and_finalize(
        self, completed: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        self._merged = {}
        results = {}
        for name in self._processors:
            merged = completed[0][name]
            for shard in completed[1:]:
                merged = merged.merge(shard[name])
            self._merged[name] = merged
            results[name] = merged.finalize()
        return results

    def _split_shards(self) -> List[Dict[str, Any]]:
        """Per-worker ``name -> shard processor`` dicts."""
        shards: List[Dict[str, Any]] = [{} for _ in range(self.n_workers)]
        for name, processor in self._processors.items():
            for worker, piece in enumerate(processor.split(self.n_workers)):
                shards[worker][name] = piece
        return shards

    def _run_serial(
        self,
        shards: List[Dict[str, Any]],
        source: Any,
        routing: ShardRouting,
        chunk_size: int,
    ) -> List[Dict[str, Any]]:
        """The split/route/merge pipeline on one core (shard at a time).

        In-memory sources may be consumed only once (chunk iterables),
        so chunks are materialised and replayed per shard; file sources
        are re-read per shard, exactly like the process backend.
        """
        if isinstance(source, (str, Path)):
            mmap = self._worker_mmap(source)
            readahead = self._effective_readahead(mmap)
            return [
                _drive(
                    shard, source, routing, worker, self.n_workers,
                    chunk_size, mmap, readahead, self.readahead_depth,
                )
                for worker, shard in enumerate(shards)
            ]
        chunks = list(as_chunks(source, chunk_size))
        return [
            _drive(
                shard, iter(chunks), routing, worker, self.n_workers,
                chunk_size, False,
            )
            for worker, shard in enumerate(shards)
        ]

    def _worker_mmap(self, source) -> bool:
        """Whether shard workers should memory-map ``source``.

        Even without an explicit ``mmap=True``, every worker mapping a
        stored v2 archive beats every worker eagerly loading its own
        full copy of the columns — the workers then share one page
        cache.  Compressed archives fall back to eager loading inside
        the reader; v1 text is parsed incrementally either way.
        """
        if self.mmap:
            return True
        from repro.streams.persist import detect_version

        try:
            return detect_version(source) == 2
        except OSError:
            return False

    def _effective_readahead(self, mmap: bool) -> bool:
        """Resolve the auto (``None``) readahead setting.

        Cold memory-mapped file passes are exactly where prefetch pays:
        every chunk's first touch is a page-in that would otherwise
        stall the worker's compute.  Eager and in-memory sources have
        no deferred I/O, so auto resolves to off there.
        """
        if self.readahead is not None:
            return self.readahead
        return bool(mmap)

    def _run_processes(
        self,
        shards: List[Dict[str, Any]],
        source: Any,
        routing: ShardRouting,
        chunk_size: int,
    ) -> List[Dict[str, Any]]:
        context = _fork_context()
        if context is None:
            # No fork on this platform: identical answers, one core.
            return self._run_serial(shards, source, routing, chunk_size)
        if isinstance(source, (str, Path)):
            return self._run_file_pool(context, shards, source, routing, chunk_size)
        return self._run_queue_pool(context, shards, source, routing, chunk_size)

    def _run_file_pool(
        self, context, shards, source, routing, chunk_size
    ) -> List[Dict[str, Any]]:
        """Workers read the stream file themselves — zero data IPC."""
        mmap = self._worker_mmap(source)
        readahead = self._effective_readahead(mmap)
        tasks = [
            (
                worker,
                self.n_workers,
                shard,
                str(source),
                routing,
                chunk_size,
                mmap,
                readahead,
                self.readahead_depth,
            )
            for worker, shard in enumerate(shards)
        ]
        with context.Pool(processes=self.n_workers) as pool:
            outcomes = pool.map(_file_worker, tasks)
        return self._collect(outcomes)

    def _run_queue_pool(
        self, context, shards, source, routing, chunk_size
    ) -> List[Dict[str, Any]]:
        """Parent routes chunks to bounded per-worker queues."""
        in_queues = [
            context.Queue(maxsize=_QUEUE_DEPTH) for _ in range(self.n_workers)
        ]
        out_queue = context.Queue()
        workers = [
            context.Process(
                target=_queue_worker,
                args=(worker, shards[worker], chunk_size, in_queues[worker], out_queue),
                daemon=True,
            )
            for worker in range(self.n_workers)
        ]
        for process in workers:
            process.start()
        clean = False
        try:
            position = 0
            for chunk_index, chunk in enumerate(as_chunks(source, chunk_size)):
                routed_all = route_chunk_all(
                    chunk, routing, self.n_workers, chunk_index, position
                )
                for worker, routed in enumerate(routed_all):
                    if routed is not None:
                        self._put_alive(in_queues[worker], routed,
                                        workers[worker], worker)
                position += len(chunk[0])
            for worker, queue in enumerate(in_queues):
                self._put_alive(queue, None, workers[worker], worker)
            outcomes = self._gather_outcomes(out_queue, workers)
            clean = True
        finally:
            for process in workers:
                # On an error path the surviving workers may still be
                # blocked waiting for chunks that will never come —
                # don't stall 30 s per worker before surfacing it.
                if not clean and process.is_alive():
                    process.terminate()
                process.join(timeout=30)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
        return self._collect(outcomes)

    @staticmethod
    def _put_alive(queue, item, process, worker) -> None:
        """Bounded-queue put that notices a dead consumer.

        A worker killed abnormally (OOM, segfault) never drains its
        queue; an unconditional blocking put would hang the parent
        forever once the queue fills.
        """
        while True:
            try:
                queue.put(item, timeout=1.0)
                return
            except queue_module.Full:
                if not process.is_alive():
                    raise RuntimeError(
                        f"sharded worker {worker} terminated abnormally "
                        f"(exit code {process.exitcode}) while the stream "
                        f"was still being routed to it"
                    ) from None

    def _gather_outcomes(self, out_queue, workers):
        """Collect one result per worker, noticing abnormal deaths.

        A worker that hits a Python-level error reports it through the
        queue; a worker killed by the OS never does, so waiting must
        watch process liveness rather than block forever.
        """
        outcomes = []
        pending = set(range(self.n_workers))
        while pending:
            try:
                outcome = out_queue.get(timeout=1.0)
            except queue_module.Empty:
                dead = [w for w in pending if not workers[w].is_alive()]
                if dead:
                    # Grace period: a result already sent may still be
                    # in the pipe after the sender exited.
                    try:
                        outcome = out_queue.get(timeout=2.0)
                    except queue_module.Empty:
                        codes = {w: workers[w].exitcode for w in dead}
                        raise RuntimeError(
                            f"sharded worker(s) {sorted(dead)} terminated "
                            f"abnormally without reporting a result "
                            f"(exit codes {codes})"
                        ) from None
                else:
                    continue
            outcomes.append(outcome)
            pending.discard(outcome[0])
        return outcomes

    def _collect(self, outcomes) -> List[Dict[str, Any]]:
        """Order worker results 0..W-1, surfacing worker tracebacks."""
        completed: List[Optional[Dict[str, Any]]] = [None] * self.n_workers
        for worker, processors, error in outcomes:
            if error is not None:
                cause_type, is_stream_error, formatted = error
                raise ShardedWorkerError(
                    f"sharded worker {worker} failed:\n{formatted}",
                    cause_type=cause_type,
                    is_stream_error=is_stream_error,
                )
            completed[worker] = processors
        return completed  # type: ignore[return-value]


def run_sharded(
    processors: Mapping[str, Any],
    source: Any,
    *,
    n_workers: int = 2,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    mmap: bool = False,
    readahead: Optional[bool] = None,
    readahead_depth: int = 1,
    backend: str = "process",
) -> Dict[str, Any]:
    """One-shot convenience: build a ShardedRunner, run it, return answers.

    Prefer assembling runs through :class:`repro.pipeline.Pipeline`,
    which adds spec validation, registries, and typed results on top of
    the same execution path; this helper remains for direct engine use.
    """
    return ShardedRunner(
        processors,
        n_workers=n_workers,
        chunk_size=chunk_size,
        mmap=mmap,
        readahead=readahead,
        readahead_depth=readahead_depth,
        backend=backend,
    ).run(source)
