"""Single-pass fan-out execution over columnar edge streams.

:class:`FanoutRunner` is the batch-first replacement for every
hand-rolled driver loop that used to live in the star-detection, top-k
and windowed wrappers, the CLI, and the benchmarks: register N
conforming :class:`~repro.engine.protocol.StreamProcessor` structures,
then :meth:`FanoutRunner.run` streams the source chunk by chunk and
hands *each chunk once* to every processor before moving on.  The
stream is therefore traversed a single time regardless of how many
structures consume it — the property Lemma 3.3's ``O(log n)`` parallel
degree guesses and any multi-tenant ingestion pipeline rely on.

Chunk sources are normalised by :func:`as_chunks`:

* :class:`~repro.streams.columnar.ColumnarEdgeStream` — zero-copy
  column slices;
* :class:`~repro.streams.stream.EdgeStream` — converted to columns
  once, then sliced;
* a path (``str`` / :class:`~pathlib.Path`) — opened through the
  chunked persistence reader, so multi-gigabyte stream files feed the
  engine without ever materialising per-item lists;
* any object with a ``chunks(chunk_size)`` method, or any iterable of
  ``(a, b, sign)`` column triples.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.engine.protocol import ensure_stream_processor
from repro.streams.columnar import (
    DEFAULT_CHUNK_SIZE,
    ColumnarEdgeStream,
    Columns,
)
from repro.streams.stream import EdgeStream


def as_chunks(
    source: Any, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[Columns]:
    """Normalise any supported stream source into ``(a, b, sign)`` chunks."""
    if isinstance(source, (str, Path)):
        # Deferred import keeps streams.persist free to evolve without
        # the engine module loading it for in-memory runs.
        from repro.streams.persist import ChunkedStreamReader

        return ChunkedStreamReader(source).chunks(chunk_size)
    if isinstance(source, EdgeStream):
        source = ColumnarEdgeStream.from_edge_stream(source)
    if hasattr(source, "chunks"):
        return source.chunks(chunk_size)
    if isinstance(source, Iterable):
        return iter(source)
    raise TypeError(
        f"cannot stream chunks from {type(source).__name__}; expected a "
        f"ColumnarEdgeStream, EdgeStream, path, or chunk iterable"
    )


class FanoutRunner:
    """Stream one source into N registered processors in a single pass.

    Args:
        processors: optional initial ``name -> processor`` mapping (the
            iteration order of the mapping is preserved in results).
        chunk_size: default number of updates per fan-out step.

    Usage::

        runner = FanoutRunner({"alg2": InsertionOnlyFEwW(...)})
        runner.add("topk", TopKFEwW(...))
        results = runner.run(stream)        # {"alg2": ..., "topk": ...}
    """

    def __init__(
        self,
        processors: Optional[Mapping[str, Any]] = None,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self._processors: Dict[str, Any] = {}
        if processors is not None:
            for name, processor in processors.items():
                self.add(name, processor)

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------

    def add(self, name: str, processor: Any) -> "FanoutRunner":
        """Register a processor under ``name``; returns self for chaining."""
        if name in self._processors:
            raise ValueError(f"processor {name!r} already registered")
        self._processors[name] = ensure_stream_processor(processor, name)
        return self

    def __len__(self) -> int:
        return len(self._processors)

    def __getitem__(self, name: str) -> Any:
        return self._processors[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._processors)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def process_chunk(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Hand one column chunk to every registered processor."""
        for processor in self._processors.values():
            processor.process_batch(a, b, sign)

    def process(self, source: Any, chunk_size: Optional[int] = None) -> "FanoutRunner":
        """Stream ``source`` through every processor (no finalize)."""
        for a, b, sign in as_chunks(source, chunk_size or self.chunk_size):
            self.process_chunk(a, b, sign)
        return self

    def finalize(self) -> Dict[str, Any]:
        """Call every processor's ``finalize``; returns ``name -> answer``."""
        return {
            name: processor.finalize()
            for name, processor in self._processors.items()
        }

    def run(self, source: Any, chunk_size: Optional[int] = None) -> Dict[str, Any]:
        """Single-pass ingestion plus finalization, in one call."""
        if not self._processors:
            raise RuntimeError("no processors registered; call add() first")
        return self.process(source, chunk_size).finalize()


def run_fanout(
    processors: Mapping[str, Any],
    source: Any,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Dict[str, Any]:
    """One-shot convenience: build a runner, run it, return the answers."""
    return FanoutRunner(processors, chunk_size=chunk_size).run(source)
