"""Single-pass fan-out execution over columnar edge streams.

:class:`FanoutRunner` is the batch-first replacement for every
hand-rolled driver loop that used to live in the star-detection, top-k
and windowed wrappers, the CLI, and the benchmarks: register N
conforming :class:`~repro.engine.protocol.StreamProcessor` structures,
then :meth:`FanoutRunner.run` streams the source chunk by chunk and
hands *each chunk once* to every processor before moving on.  The
stream is therefore traversed a single time regardless of how many
structures consume it — the property Lemma 3.3's ``O(log n)`` parallel
degree guesses and any multi-tenant ingestion pipeline rely on.

Chunk sources are normalised by :func:`as_chunks`:

* :class:`~repro.streams.columnar.ColumnarEdgeStream` — zero-copy
  column slices;
* :class:`~repro.streams.stream.EdgeStream` — converted to columns
  once, then sliced;
* a path (``str`` / :class:`~pathlib.Path`) — opened through the
  chunked persistence reader, so multi-gigabyte stream files feed the
  engine without ever materialising per-item lists;
* any object with a ``chunks(chunk_size)`` method, or any iterable of
  ``(a, b, sign)`` column triples.

For long file passes the runner can snapshot its progress: construct
it with ``checkpoint_dir=`` (and optionally ``checkpoint_every=N``
chunks) and every processor's summary plus the stream offset is
written atomically through
:class:`~repro.engine.checkpoint.CheckpointStore` as the pass runs.
A killed run restarts with :meth:`FanoutRunner.resume`, which rebuilds
the processors from the latest snapshot and re-opens the file at the
saved offset — the resumed pass is bit-identical to an uninterrupted
one, because summaries carry *all* their state (including windowed
bucket/RNG state) and chunk boundaries line up.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.engine.protocol import ensure_stream_processor
from repro.streams.columnar import (
    DEFAULT_CHUNK_SIZE,
    ColumnarEdgeStream,
    Columns,
)
from repro.streams.stream import EdgeStream


def as_chunks(
    source: Any, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[Columns]:
    """Normalise any supported stream source into ``(a, b, sign)`` chunks."""
    if isinstance(source, (str, Path)):
        # Deferred import keeps streams.persist free to evolve without
        # the engine module loading it for in-memory runs.
        from repro.streams.persist import ChunkedStreamReader

        return ChunkedStreamReader(source).chunks(chunk_size)
    if isinstance(source, EdgeStream):
        source = ColumnarEdgeStream.from_edge_stream(source)
    if hasattr(source, "chunks"):
        return source.chunks(chunk_size)
    if isinstance(source, Iterable):
        return iter(source)
    raise TypeError(
        f"cannot stream chunks from {type(source).__name__}; expected a "
        f"ColumnarEdgeStream, EdgeStream, path, or chunk iterable"
    )


#: Checkpoint tag a (single-worker) fanout pass snapshots under.
FANOUT_TAG = "fanout"


class FanoutRunner:
    """Stream one source into N registered processors in a single pass.

    Args:
        processors: optional initial ``name -> processor`` mapping (the
            iteration order of the mapping is preserved in results).
        chunk_size: default number of updates per fan-out step.
        checkpoint_dir: when set, snapshot every processor's summary
            and the stream offset into this directory as the pass runs
            (file sources only; see :mod:`repro.engine.checkpoint`).
        checkpoint_every: source chunks between snapshots (default
            :data:`~repro.engine.checkpoint.DEFAULT_CHECKPOINT_EVERY`;
            requires ``checkpoint_dir``).
        fault_plan: optional :class:`~repro.engine.faults.FaultPlan`
            consulted before each chunk — deterministic fault injection
            for chaos tests; omit for the no-op default.

    Usage::

        runner = FanoutRunner({"alg2": InsertionOnlyFEwW(...)})
        runner.add("topk", TopKFEwW(...))
        results = runner.run(stream)        # {"alg2": ..., "topk": ...}
    """

    def __init__(
        self,
        processors: Optional[Mapping[str, Any]] = None,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        checkpoint_dir: Optional[Any] = None,
        checkpoint_every: Optional[int] = None,
        fault_plan: Optional[Any] = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
        if checkpoint_dir is not None and checkpoint_every is None:
            from repro.engine.checkpoint import DEFAULT_CHECKPOINT_EVERY

            checkpoint_every = DEFAULT_CHECKPOINT_EVERY
        self.chunk_size = chunk_size
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        self.checkpoint_every = checkpoint_every
        self.fault_plan = fault_plan
        self.resumed = False
        self._start_chunk = 0
        self._start_position = 0
        self._resume_source: Optional[str] = None
        self._processors: Dict[str, Any] = {}
        if processors is not None:
            for name, processor in processors.items():
                self.add(name, processor)

    @classmethod
    def resume(
        cls,
        checkpoint_dir: Any,
        *,
        source: Any = None,
        fault_plan: Optional[Any] = None,
    ) -> "FanoutRunner":
        """Rebuild a runner from the latest checkpoint in ``checkpoint_dir``.

        The returned runner carries the snapshotted processors and the
        saved stream offset; calling :meth:`run` (with no source — the
        checkpointed path is remembered, or pass one to override, e.g.
        after moving the file) continues the pass from that offset,
        bit-identical to a run that was never interrupted.

        Raises:
            repro.engine.checkpoint.CheckpointError: when the
                checkpoint is absent, torn, or version-incompatible.
        """
        from repro.engine.checkpoint import (
            DEFAULT_CHECKPOINT_EVERY,
            CheckpointStore,
        )

        snapshot = CheckpointStore(checkpoint_dir).load(FANOUT_TAG)
        runner = cls(
            snapshot.state,
            chunk_size=int(snapshot.meta.get("chunk_size", DEFAULT_CHUNK_SIZE)),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=int(
                snapshot.meta.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY)
            ),
            fault_plan=fault_plan,
        )
        runner._start_chunk = snapshot.chunk_index
        runner._start_position = snapshot.position
        runner._resume_source = snapshot.meta.get("source")
        if source is not None:
            runner._resume_source = str(source)
        runner.resumed = True
        return runner

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------

    def add(self, name: str, processor: Any) -> "FanoutRunner":
        """Register a processor under ``name``; returns self for chaining."""
        if name in self._processors:
            raise ValueError(f"processor {name!r} already registered")
        self._processors[name] = ensure_stream_processor(processor, name)
        return self

    def __len__(self) -> int:
        return len(self._processors)

    def __getitem__(self, name: str) -> Any:
        return self._processors[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._processors)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def process_chunk(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Hand one column chunk to every registered processor."""
        for processor in self._processors.values():
            processor.process_batch(a, b, sign)

    def process(
        self, source: Any = None, chunk_size: Optional[int] = None
    ) -> "FanoutRunner":
        """Stream ``source`` through every processor (no finalize)."""
        source = self._default_source(source)
        chunk_size = chunk_size or self.chunk_size
        plan = self.fault_plan
        plain = (
            self.checkpoint_dir is None
            and (plan is None or plan.is_noop)
            and self._start_position == 0
        )
        if plain:
            for a, b, sign in as_chunks(source, chunk_size):
                self.process_chunk(a, b, sign)
            return self
        store = self._checkpoint_store()
        chunks, path = self._offset_chunks(source, chunk_size)
        chunk_index = self._start_chunk
        position = self._start_position
        meta = {
            "source": path,
            "chunk_size": chunk_size,
            "checkpoint_every": self.checkpoint_every,
        }
        if store is not None:
            # Initial snapshot: a run killed before the first periodic
            # checkpoint still resumes (from the start).
            store.save(
                FANOUT_TAG, dict(self._processors),
                chunk_index=chunk_index, position=position, meta=meta,
            )
        for chunk in chunks:
            if plan is not None:
                plan.fire(0, chunk_index, 0, in_process=True)
            self.process_chunk(*chunk)
            position += len(chunk[0])
            chunk_index += 1
            if store is not None and chunk_index % self.checkpoint_every == 0:
                store.save(
                    FANOUT_TAG, dict(self._processors),
                    chunk_index=chunk_index, position=position, meta=meta,
                )
        if store is not None:
            store.save(
                FANOUT_TAG, dict(self._processors),
                chunk_index=chunk_index, position=position,
                complete=True, meta=meta,
            )
        return self

    def _default_source(self, source: Any) -> Any:
        if source is not None:
            return source
        if self._resume_source is not None:
            return self._resume_source
        raise TypeError(
            "process() requires a source (or a runner built by "
            "FanoutRunner.resume(), which remembers its file)"
        )

    def _checkpoint_store(self):
        if self.checkpoint_dir is None:
            return None
        from repro.engine.checkpoint import CheckpointStore

        return CheckpointStore(self.checkpoint_dir)

    def _offset_chunks(self, source: Any, chunk_size: int):
        """Chunk iterator honouring the resume offset, plus the source
        path (``None`` for in-memory sources).

        Checkpointing and resuming need a re-openable, seekable source:
        a path or a :class:`~repro.streams.persist.ChunkedStreamReader`.
        Fault injection alone works on any source.
        """
        from repro.streams.persist import ChunkedStreamReader

        if isinstance(source, (str, Path)):
            reader = ChunkedStreamReader(source)
        elif isinstance(source, ChunkedStreamReader):
            reader = source
        elif self.checkpoint_dir is None and self._start_position == 0:
            return as_chunks(source, chunk_size), None
        else:
            raise ValueError(
                "checkpointing requires a stream-file source (a path or "
                "ChunkedStreamReader)"
            )
        return (
            reader.chunks(chunk_size, start=self._start_position),
            str(reader.path),
        )

    def finalize(self) -> Dict[str, Any]:
        """Call every processor's ``finalize``; returns ``name -> answer``."""
        return {
            name: processor.finalize()
            for name, processor in self._processors.items()
        }

    def run(
        self, source: Any = None, chunk_size: Optional[int] = None
    ) -> Dict[str, Any]:
        """Single-pass ingestion plus finalization, in one call."""
        if not self._processors:
            raise RuntimeError("no processors registered; call add() first")
        return self.process(source, chunk_size).finalize()


def run_fanout(
    processors: Mapping[str, Any],
    source: Any,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Dict[str, Any]:
    """One-shot convenience: build a runner, run it, return the answers."""
    return FanoutRunner(processors, chunk_size=chunk_size).run(source)
