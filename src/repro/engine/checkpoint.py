"""Durable run checkpoints: pickled summaries + stream offsets.

The mergeable-summary layer makes durable progress cheap: a run's
entire recoverable state is each processor's summary (including a
windowed processor's buckets and RNG state — all instance-held and
picklable) plus the offset into the persisted stream file.
:class:`CheckpointStore` snapshots exactly that, under a two-file
protocol that survives being killed at any instruction:

* the **payload** — ``{tag}.{chunk_index}.pkl``, the pickled state —
  is written first, atomically (same-directory temp file +
  ``os.replace``);
* the **manifest** — ``{tag}.manifest.json`` — is then atomically
  replaced to point at the new payload, carrying its SHA-256 digest,
  the stream offset, and a format version.

Because the manifest only ever references a payload that is already
durable, and payload filenames are unique per chunk index, every crash
window leaves either the new checkpoint or the previous one loadable —
never a torn hybrid.  Superseded payloads are unlinked only after the
manifest swap.  :meth:`CheckpointStore.load` verifies the digest and
version and raises :class:`CheckpointError` on any inconsistency: a
damaged checkpoint is rejected, not half-loaded.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
from contextlib import suppress
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bumped whenever the manifest/payload layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

#: Default number of source chunks between snapshots.
DEFAULT_CHECKPOINT_EVERY = 64

_TAG_PATTERN = re.compile(r"^[A-Za-z0-9_-]+$")

_MANIFEST_KEYS = (
    "format_version", "tag", "chunk_index", "position", "complete",
    "payload", "sha256",
)


class CheckpointError(RuntimeError):
    """A checkpoint is missing, torn, or from an incompatible format."""


@dataclass(frozen=True)
class Checkpoint:
    """One loaded snapshot.

    Attributes:
        tag: the snapshot series this belongs to (e.g. ``"shard-2"``).
        chunk_index: chunks fully absorbed when it was taken.
        position: stream updates fully absorbed (the resume offset).
        complete: True for the final snapshot of a finished run.
        state: the unpickled payload (processor summaries etc.).
        meta: caller-supplied JSON metadata from the manifest.
    """

    tag: str
    chunk_index: int
    position: int
    complete: bool
    state: Any
    meta: Dict[str, Any] = field(default_factory=dict)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Same-directory temp file + ``os.replace``; fsynced so the bytes
    are durable before the name is."""
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        with suppress(OSError):
            tmp.unlink()
        raise


class CheckpointStore:
    """Atomic, versioned snapshots keyed by tag in one directory.

    Each tag is an independent series (a sharded run uses ``"run"``
    for the job manifest plus ``"shard-0"`` .. ``"shard-W-1"``); saving
    a tag supersedes its previous snapshot.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def _check_tag(self, tag: str) -> None:
        if not _TAG_PATTERN.match(tag):
            raise ValueError(
                f"checkpoint tag must match {_TAG_PATTERN.pattern}, "
                f"got {tag!r}"
            )

    def _manifest_path(self, tag: str) -> Path:
        return self.directory / f"{tag}.manifest.json"

    def _payload_name(self, tag: str, chunk_index: int) -> str:
        return f"{tag}.{chunk_index:012d}.pkl"

    # ------------------------------------------------------------------

    def save(
        self,
        tag: str,
        state: Any,
        *,
        chunk_index: int,
        position: int,
        complete: bool = False,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Snapshot ``state`` at the given stream offset; returns the
        manifest path.  Payload first, manifest second — see the module
        docstring for why that order is crash-safe."""
        self._check_tag(tag)
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        payload_name = self._payload_name(tag, chunk_index)
        _atomic_write_bytes(self.directory / payload_name, payload)
        manifest = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "tag": tag,
            "chunk_index": int(chunk_index),
            "position": int(position),
            "complete": bool(complete),
            "payload": payload_name,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "meta": dict(meta) if meta else {},
        }
        manifest_path = self._manifest_path(tag)
        _atomic_write_bytes(
            manifest_path,
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
        )
        for old in self.directory.glob(f"{tag}.*.pkl"):
            if old.name != payload_name:
                with suppress(OSError):
                    old.unlink()
        return manifest_path

    # ------------------------------------------------------------------

    def has(self, tag: str) -> bool:
        """Whether a manifest for ``tag`` exists (it may still be torn)."""
        self._check_tag(tag)
        return self._manifest_path(tag).exists()

    def tags(self) -> List[str]:
        return sorted(
            path.name[: -len(".manifest.json")]
            for path in self.directory.glob("*.manifest.json")
        )

    def load(self, tag: str) -> Checkpoint:
        """Load and verify the latest snapshot for ``tag``.

        Raises:
            CheckpointError: no manifest, unparsable/incomplete
                manifest, unsupported format version, missing payload,
                or payload digest mismatch.
        """
        self._check_tag(tag)
        manifest_path = self._manifest_path(tag)
        try:
            text = manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint manifest for tag {tag!r} in {self.directory}"
            ) from None
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint manifest {manifest_path}: {error}"
            ) from error
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"torn or corrupt checkpoint manifest {manifest_path}: {error}"
            ) from None
        if not isinstance(data, dict) or any(
            key not in data for key in _MANIFEST_KEYS
        ):
            raise CheckpointError(
                f"torn or corrupt checkpoint manifest {manifest_path}: "
                f"missing required fields"
            )
        if data["format_version"] != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {manifest_path} has format version "
                f"{data['format_version']!r}; this build reads version "
                f"{CHECKPOINT_FORMAT_VERSION}"
            )
        payload_path = self.directory / str(data["payload"])
        try:
            payload = payload_path.read_bytes()
        except OSError as error:
            raise CheckpointError(
                f"checkpoint payload {payload_path} unreadable: {error}"
            ) from None
        digest = hashlib.sha256(payload).hexdigest()
        if digest != data["sha256"]:
            raise CheckpointError(
                f"checkpoint payload {payload_path} digest mismatch "
                f"(torn write or corruption): {digest} != {data['sha256']}"
            )
        try:
            state = pickle.loads(payload)
        except Exception as error:
            raise CheckpointError(
                f"checkpoint payload {payload_path} failed to unpickle: "
                f"{error}"
            ) from error
        meta = data.get("meta")
        return Checkpoint(
            tag=tag,
            chunk_index=int(data["chunk_index"]),
            position=int(data["position"]),
            complete=bool(data["complete"]),
            state=state,
            meta=dict(meta) if isinstance(meta, dict) else {},
        )

    def try_load(self, tag: str) -> Optional[Checkpoint]:
        """Like :meth:`load`, but None when no manifest exists yet.

        A *present but damaged* checkpoint still raises — silently
        restarting from zero would mask corruption.
        """
        if not self.has(tag):
            return None
        return self.load(tag)
