"""Parallel tree-reduction merge: the shard-combine contract.

:class:`~repro.engine.sharded.ShardedRunner` historically folded shard
summaries left to right in the parent after the barrier —
``((s0 + s1) + s2) + s3`` — a serial ``O(n_workers)`` chain on one
core.  :func:`tree_reduce` replaces the fold with a binomial reduction
tree of the same pairwise :meth:`merge
<repro.engine.protocol.MergeableStreamProcessor.merge>` calls —
``(s0 + s1) + (s2 + s3)`` — which halves the live summaries every
round (log depth), and which the process backend can distribute so
workers merge pairwise in parallel before anything reaches the parent.

**Merge-order contract.**  The tree's merge order is a fixed function
of the shard index alone: round ``k`` merges shard ``i + 2**k`` into
shard ``i`` for every ``i`` divisible by ``2**(k+1)``, ascending ``i``,
and the receiver is always the lower index.  Consequences:

* **Linear/exact structures** (ℓ₀-sampler banks, CountSketch,
  AMS/F2, degree tables, exact supports — anything whose merge is
  elementwise addition or disjoint-key union): associativity makes the
  tree *bit-identical* to the sequential left-fold, and with it to the
  single-core reference pass.  This is asserted by
  ``tests/engine/test_tree_merge.py``.
* **Counter/sampled summaries** (Misra-Gries, SpaceSaving, reservoir
  unions): merge is associative in *guarantee* but not always in
  byte-level tie-breaking, so the tree result may differ bit-wise from
  the left-fold while carrying exactly the same error/success bounds —
  the classical mergeable-summaries property (Agarwal et al.).  The
  result is still deterministic: the tree shape depends only on the
  worker count, never on timing.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["tree_reduce", "tree_rounds"]


def tree_rounds(n: int) -> List[List[Tuple[int, int]]]:
    """The reduction schedule for ``n`` shards: one ``(receiver,
    sender)`` pair list per round.

    Round ``k`` pairs receiver ``i`` (``i % 2**(k+1) == 0``) with
    sender ``i + 2**k`` whenever the sender exists; after
    ``ceil(log2 n)`` rounds only shard 0 is live.  The schedule is what
    the distributed worker-side merge wires its pipes from, and what
    :func:`tree_reduce` executes in-process — one definition, so the
    two paths cannot drift.
    """
    if n < 1:
        raise ValueError(f"need at least one shard, got {n}")
    rounds: List[List[Tuple[int, int]]] = []
    span = 1
    while span < n:
        rounds.append(
            [(i, i + span) for i in range(0, n, 2 * span) if i + span < n]
        )
        span *= 2
    return rounds


def tree_reduce(items: Sequence[T], merge: Callable[[T, T], T]) -> T:
    """Combine ``items`` pairwise along the binomial reduction tree.

    ``merge(receiver, sender)`` must fold the sender into the receiver
    and return the combined value (the in-place ``merge``-and-return
    convention every processor in this library follows).  For an
    associative merge the result equals the sequential left-fold
    ``merge(merge(items[0], items[1]), ...)``; see the module docstring
    for which structures that makes bit-identical.
    """
    slots: List[T] = list(items)
    for pairs in tree_rounds(len(slots)):
        for receiver, sender in pairs:
            slots[receiver] = merge(slots[receiver], slots[sender])
    return slots[0]
