"""Shared-memory columnar transport for in-memory sharded runs.

Queue-fed :class:`~repro.engine.sharded.ShardedRunner` passes every
routed sub-chunk from the parent to a worker process.  Pickling
the three ``int64`` columns through a ``multiprocessing.Queue`` copies
each chunk twice (serialise + deserialise) and funnels the bytes
through a pipe; for the fused sketch kernels that is the dominant cost
of a sharded run.

This module replaces the column payload with a
:mod:`multiprocessing.shared_memory` handoff:

* the parent owns a small pool of shared segments, sized by queue
  backpressure (at most ``workers x (queue depth + 1)`` chunks are ever
  in flight);
* :class:`ChunkPublisher` copies each chunk's columns into a segment
  once and enqueues only a tiny :class:`ShmChunk` descriptor
  ``(segment, offset, length, has_sign)``;
* workers attach the segment and build zero-copy NumPy views over the
  columns (:class:`ChunkAttacher`), process them, and report the
  segment on a release queue;
* the parent drains releases between chunks and recycles segments
  whose outstanding descriptor count hit zero — refcounting matters
  because one segment may carry sub-chunks for several workers;
* every segment is closed **and unlinked** by the parent on all exits,
  including failure paths where a worker died without releasing.

Processors may not retain the views past ``process_batch`` — the
segment is recycled after release.  Every processor in this repository
either consolidates the chunk immediately (``np.unique`` / scatter-add
kernels) or copies what it keeps (``ExactSupport.update_batch``
buffers copies by contract), so the views are safe to recycle.
"""

from __future__ import annotations

import queue as queue_module
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

try:  # pragma: no cover - stdlib since 3.8, but platform-gated
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

_ITEM = np.dtype(np.int64).itemsize

#: Smallest segment allocated, so the short tail chunk of a stream does
#: not churn a tiny one-off segment.
_MIN_SEGMENT_BYTES = 1 << 16

#: Cached result of the one-shot availability probe.
_SHM_OK: Optional[bool] = None


class ShmChunk(NamedTuple):
    """Descriptor of one routed sub-chunk inside a shared segment.

    ``offset`` (in ``int64`` elements) locates column ``a``; ``b``
    follows immediately, then — when ``has_sign`` — the sign column.
    This tuple is the *only* payload a queue-pool chunk put carries
    when the shared-memory transport is engaged.
    """

    segment: str
    offset: int
    length: int
    has_sign: bool


def shm_available() -> bool:
    """True when POSIX shared memory actually works here (probed once)."""
    global _SHM_OK
    if _SHM_OK is None:
        if _shared_memory is None:
            _SHM_OK = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=_ITEM)
                probe.close()
                probe.unlink()
                _SHM_OK = True
            except Exception:
                _SHM_OK = False
    return _SHM_OK


class ChunkPublisher:
    """Parent-side segment pool: publish chunks, recycle on release.

    Segments are created lazily and reused as workers release them;
    the pool never blocks waiting for a release — when nothing free is
    large enough it allocates, and the bounded chunk queues cap how
    many segments can be outstanding at once.  :meth:`close` unlinks
    everything unconditionally, which is what makes the failure paths
    (dead worker, routing error) leak-free.
    """

    def __init__(self) -> None:
        if _shared_memory is None:  # pragma: no cover - platform-gated
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        # Start the resource tracker *now*, in the parent, before any
        # workers fork: forked workers then share it, so their
        # attachment registrations dedup against the parent's instead
        # of each worker lazily spawning a private tracker that would
        # warn about "leaked" (already-unlinked) segments at exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self._segments: Dict[str, object] = {}
        self._free: List[str] = []
        self._refs: Dict[str, int] = {}

    def publish(
        self, routed_all: List[Optional[Tuple]]
    ) -> List[Optional[ShmChunk]]:
        """Copy every worker's sub-chunk into one segment; return descriptors.

        The per-worker list shape mirrors
        :func:`~repro.engine.sharded.route_chunk_all`: ``None`` entries
        stay ``None``.  The segment's refcount is the number of
        descriptors issued, so it is recycled only after *every*
        receiving worker released it.
        """
        words = 0
        for routed in routed_all:
            if routed is not None:
                a, _b, sign = routed
                words += (3 if sign is not None else 2) * len(a)
        if words == 0:
            return [None] * len(routed_all)
        name = self._acquire(words * _ITEM)
        segment = self._segments[name]
        buf = np.frombuffer(segment.buf, dtype=np.int64)  # type: ignore[attr-defined]
        descriptors: List[Optional[ShmChunk]] = []
        cursor = 0
        issued = 0
        for routed in routed_all:
            if routed is None:
                descriptors.append(None)
                continue
            a, b, sign = routed
            length = len(a)
            buf[cursor : cursor + length] = a
            buf[cursor + length : cursor + 2 * length] = b
            if sign is not None:
                buf[cursor + 2 * length : cursor + 3 * length] = sign
            descriptors.append(ShmChunk(name, cursor, length, sign is not None))
            cursor += (3 if sign is not None else 2) * length
            issued += 1
        self._refs[name] = issued
        return descriptors

    def _acquire(self, required: int) -> str:
        """A free segment of at least ``required`` bytes (allocating one)."""
        for position, name in enumerate(self._free):
            if self._segments[name].size >= required:  # type: ignore[attr-defined]
                return self._free.pop(position)
        segment = _shared_memory.SharedMemory(
            create=True, size=max(required, _MIN_SEGMENT_BYTES)
        )
        self._segments[segment.name] = segment
        return segment.name

    def release(self, name: str) -> None:
        """One worker finished with ``name``; recycle at zero references."""
        refs = self._refs.get(name)
        if refs is None:
            return
        if refs <= 1:
            del self._refs[name]
            self._free.append(name)
        else:
            self._refs[name] = refs - 1

    def drain(self, release_queue) -> None:
        """Apply every release currently sitting on the queue (non-blocking)."""
        while True:
            try:
                name = release_queue.get_nowait()
            except queue_module.Empty:
                return
            self.release(name)

    def segment_names(self) -> List[str]:
        """Names of every live segment (introspection for tests)."""
        return list(self._segments)

    def close(self) -> None:
        """Close and unlink every segment, success or failure alike."""
        for segment in self._segments.values():
            try:
                segment.close()  # type: ignore[attr-defined]
            except Exception:
                pass
            try:
                segment.unlink()  # type: ignore[attr-defined]
            except Exception:
                pass
        self._segments.clear()
        self._free.clear()
        self._refs.clear()


class ChunkAttacher:
    """Worker-side attachment cache: descriptors to zero-copy columns.

    Segments are recycled under stable names, so each worker attaches a
    given segment once and keeps the handle for the whole run; the
    views handed out are slices of the shared buffer — no copy.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, object] = {}

    def view(
        self, descriptor: ShmChunk
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """``(a, b, sign)`` column views for one descriptor."""
        segment = self._segments.get(descriptor.segment)
        if segment is None:
            # Attaching registers the name with the resource tracker
            # (non-owning attachments too, through Python 3.12).  The
            # queue pool always runs under the fork context, so workers
            # share the parent's tracker process and its cache is a set
            # — the duplicate registration dedups, and the parent's
            # unlink clears the one entry.  Do NOT unregister here:
            # that would strip the parent's own registration.
            segment = _shared_memory.SharedMemory(name=descriptor.segment)
            self._segments[descriptor.segment] = segment
        buf = np.frombuffer(segment.buf, dtype=np.int64)  # type: ignore[attr-defined]
        offset, length = descriptor.offset, descriptor.length
        a = buf[offset : offset + length]
        b = buf[offset + length : offset + 2 * length]
        sign = (
            buf[offset + 2 * length : offset + 3 * length]
            if descriptor.has_sign
            else None
        )
        return a, b, sign

    def close(self) -> None:
        """Detach every cached segment (the parent owns the unlink)."""
        for segment in self._segments.values():
            try:
                segment.close()  # type: ignore[attr-defined]
            except Exception:
                # A BufferError here means a processor kept a view past
                # process_batch; the handle dies with the process and
                # the parent still unlinks the segment.
                pass
        self._segments.clear()
