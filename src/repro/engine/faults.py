"""Deterministic fault injection for the execution engine.

Recovery code that is never exercised is recovery code that does not
work.  A :class:`FaultPlan` describes, ahead of time, exactly which
misfortunes befall a run — *kill worker 2 before chunk 3*, *raise
``OSError`` on worker 0's first read*, *stall worker 1 for 50 ms*,
*drop worker 3's result message* — and both runners consult it at the
same well-defined points on every execution.  The default plan is a
no-op, so production runs pay one attribute check per chunk; chaos
tests build seeded plans and get bit-reproducible failures, which is
what lets the retry/checkpoint/fallback paths assert *bit-identical*
recovery rather than "it probably recovered".

Faults are scoped by ``(worker, chunk, attempt)``:

* ``worker`` — the shard worker index (``None`` matches any worker;
  the single worker of a :class:`~repro.engine.runner.FanoutRunner`
  pass is worker 0);
* ``chunk`` — chunk-scoped faults (kill/raise/delay) fire immediately
  *before* that chunk is processed, so a kill at chunk ``j`` leaves
  exactly ``j`` chunks absorbed — the same boundary checkpoints are
  written on;
* ``attempt`` — the retry attempt the fault applies to (0 is the first
  run), so a plan can kill attempt 0 and let the respawned attempt 1
  succeed deterministically.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

FAULT_KINDS = ("kill", "raise", "delay", "drop_result", "corrupt_result")

#: Exception classes a ``raise`` fault may inject, by name (names keep
#: :class:`Fault` picklable and JSON-friendly).
_RAISABLE = ("OSError", "RuntimeError", "ValueError", "TimeoutError",
             "StreamFormatError")


def _resolve_exception(name: str):
    if name == "StreamFormatError":
        from repro.streams.persist import StreamFormatError

        return StreamFormatError
    return {
        "OSError": OSError,
        "RuntimeError": RuntimeError,
        "ValueError": ValueError,
        "TimeoutError": TimeoutError,
    }[name]


@dataclass(frozen=True)
class Fault:
    """One planned misfortune; see the module docstring for scoping.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        worker: shard worker index the fault targets (None = any).
        chunk: chunk index chunk-scoped faults fire before (required
            for kill/raise/delay; ignored for result faults).
        attempt: retry attempt the fault applies to.
        exc: exception class name for ``raise`` faults.
        message: message for ``raise`` faults.
        delay_s: sleep length for ``delay`` faults.
    """

    kind: str
    worker: Optional[int] = None
    chunk: Optional[int] = None
    attempt: int = 0
    exc: str = "OSError"
    message: str = "injected fault"
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.kind in ("kill", "raise", "delay") and self.chunk is None:
            raise ValueError(f"{self.kind!r} faults need a chunk index")
        if self.kind == "raise" and self.exc not in _RAISABLE:
            raise ValueError(
                f"raise fault exception must be one of {_RAISABLE}, "
                f"got {self.exc!r}"
            )
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def _matches(self, worker: int, attempt: int) -> bool:
        return (
            (self.worker is None or self.worker == worker)
            and self.attempt == attempt
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of planned faults.

    Compose plans with ``+``::

        plan = FaultPlan.kill(worker=1, chunk=3) + FaultPlan.delay(
            worker=0, chunk=0, delay_s=0.05)

    The empty plan (``FaultPlan()``) is the no-op default.
    """

    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    # -- constructors --------------------------------------------------

    @staticmethod
    def kill(worker: Optional[int], chunk: int, attempt: int = 0) -> "FaultPlan":
        """SIGKILL the worker process right before ``chunk``."""
        return FaultPlan((Fault("kill", worker, chunk, attempt),))

    @staticmethod
    def read_error(
        worker: Optional[int],
        chunk: int,
        attempt: int = 0,
        exc: str = "OSError",
        message: str = "injected read error",
    ) -> "FaultPlan":
        """Raise ``exc`` in the worker right before ``chunk``."""
        return FaultPlan(
            (Fault("raise", worker, chunk, attempt, exc=exc, message=message),)
        )

    @staticmethod
    def delay(
        worker: Optional[int], chunk: int, delay_s: float, attempt: int = 0
    ) -> "FaultPlan":
        """Stall the worker for ``delay_s`` seconds before ``chunk``."""
        return FaultPlan(
            (Fault("delay", worker, chunk, attempt, delay_s=delay_s),)
        )

    @staticmethod
    def drop_result(worker: Optional[int], attempt: int = 0) -> "FaultPlan":
        """Swallow the worker's result message (it exits silently)."""
        return FaultPlan((Fault("drop_result", worker, attempt=attempt),))

    @staticmethod
    def corrupt_result(worker: Optional[int], attempt: int = 0) -> "FaultPlan":
        """Replace the worker's result message with garbage."""
        return FaultPlan((Fault("corrupt_result", worker, attempt=attempt),))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.faults + other.faults)

    # -- consultation points -------------------------------------------

    @property
    def is_noop(self) -> bool:
        return not self.faults

    def fire(
        self,
        worker: int,
        chunk_index: int,
        attempt: int = 0,
        *,
        in_process: bool = False,
    ) -> None:
        """Fire every chunk-scoped fault planned for this point.

        Called by the drive loops immediately before processing chunk
        ``chunk_index``.  ``in_process=True`` marks drive loops running
        in the parent (serial backend, fanout, serial fallback), where
        a kill fault must not SIGKILL the caller's whole process — it
        raises instead, flagging the plan as mis-scoped.
        """
        for fault in self.faults:
            if fault.chunk != chunk_index or not fault._matches(worker, attempt):
                continue
            if fault.kind == "delay":
                time.sleep(fault.delay_s)
            elif fault.kind == "raise":
                raise _resolve_exception(fault.exc)(fault.message)
            elif fault.kind == "kill":
                if in_process:
                    raise RuntimeError(
                        f"fault-plan kill for worker {worker} at chunk "
                        f"{chunk_index} fired in-process; kill faults "
                        f"require the process backend"
                    )
                os.kill(os.getpid(), signal.SIGKILL)

    def drops_result(self, worker: int, attempt: int = 0) -> bool:
        return any(
            fault.kind == "drop_result" and fault._matches(worker, attempt)
            for fault in self.faults
        )

    def corrupts_result(self, worker: int, attempt: int = 0) -> bool:
        return any(
            fault.kind == "corrupt_result" and fault._matches(worker, attempt)
            for fault in self.faults
        )
