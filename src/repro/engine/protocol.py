"""The :class:`StreamProcessor` protocol: what the engine drives.

Every streaming structure in this library — the paper's Algorithms 1–3,
the extension wrappers (Star Detection, top-k, tumbling windows), the
classical baselines and the sketch summaries — exposes the same two
methods:

* ``process_batch(a, b, sign=None)`` — consume one column chunk of
  updates (``a``/``b`` endpoint arrays plus an optional ``sign``
  column; ``None`` means all-insert).  For every structure this is
  equivalent to feeding the chunk item by item — bit-identical for the
  seeded randomized structures, guarantee-identical for the
  weight-collapsed counter summaries (see
  ``tests/integration/test_batch_equivalence.py``).
* ``finalize()`` — the end-of-stream hook.  Algorithms return their
  answer (a :class:`~repro.core.neighbourhood.Neighbourhood`, a list of
  them, or window results) or ``None``/``[]`` on failure instead of
  raising; query-style summaries (Count-Min, Misra–Gries, ...) return
  themselves so callers can keep querying.  ``finalize`` never raises
  :class:`~repro.core.neighbourhood.AlgorithmFailed` — a fan-out run
  over N processors should not abort because one guess failed.

Anything conforming can be registered with a
:class:`~repro.engine.runner.FanoutRunner` and fed from any chunk
source in a single pass.

Mergeable-summary layer
-----------------------

For sharded (multi-core / distributed) execution every structure also
implements the classical *mergeable summaries* interface (Agarwal et
al.):

* ``split(n_shards)`` — produce ``n_shards`` independent empty shard
  instances of the same configuration.  Must be called on a *fresh*
  (pre-stream) structure; seeded structures replicate their seed-derived
  state so that linear sketches merge back bit-identically.
* ``merge(other)`` — combine two summaries of disjoint sub-streams into
  a summary of the concatenation.  Implementations raise an actionable
  :class:`ValueError` when the operands are incompatible (different
  parameters, different hash seeds, ...).  The returned summary is the
  combined one; callers must treat both operands as consumed (an
  implementation may reuse either operand's storage).
* ``shard_routing`` — metadata telling a
  :class:`~repro.engine.sharded.ShardedRunner` how stream updates must
  be partitioned for the per-shard runs to stay faithful:

  - :data:`SHARD_ANY` — any partition of the updates works (linear
    sketches such as Count-Min/CountSketch/ℓ₀-banks, and the counter
    summaries, which are mergeable for arbitrary splits);
  - :data:`SHARD_BY_VERTEX` — updates must be routed by a hash of the
    A-endpoint, so each vertex's degree counts, first-k witnesses and
    residency-window witness collection stay *exact* inside its owning
    shard (the paper's Algorithms 1–2 and the witness baselines);
  - ``(SHARD_BY_WINDOW, window)`` — updates must be routed by global
    stream position in blocks of ``window`` (the windowed wrappers in
    :mod:`repro.engine.windows`, whose per-bucket instances are seeded
    by global bucket index; ``window`` is the policy's bucket size).
"""

from __future__ import annotations

from typing import Any, List, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

#: Routing tag: updates may be partitioned arbitrarily across shards.
SHARD_ANY = "any"

#: Routing tag: updates must be routed by A-endpoint hash.
SHARD_BY_VERTEX = "vertex"

#: Routing tag (first element of a ``(tag, window)`` tuple): updates
#: must be routed by global position in blocks of ``window``.
SHARD_BY_WINDOW = "window"

ShardRouting = Union[str, Tuple[str, int]]

_MISSING = object()


@runtime_checkable
class StreamProcessor(Protocol):
    """Structural type of every engine-drivable streaming structure."""

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Consume one column chunk of signed edge updates."""
        ...

    def finalize(self) -> Any:
        """End-of-stream hook; returns the structure's answer (or self)."""
        ...


@runtime_checkable
class MergeableStreamProcessor(StreamProcessor, Protocol):
    """A :class:`StreamProcessor` that supports sharded execution."""

    #: How a ShardedRunner must partition updates for this structure.
    shard_routing: ShardRouting

    def split(self, n_shards: int) -> List[Any]:
        """``n_shards`` independent empty shard instances (fresh self)."""
        ...

    def merge(self, other: Any) -> Any:
        """Combine two summaries of disjoint sub-streams."""
        ...


def ensure_stream_processor(processor: Any, name: str = "processor") -> Any:
    """Validate protocol conformance with an actionable error message.

    ``isinstance(x, StreamProcessor)`` only checks attribute presence;
    this helper reports *which* method is missing — and distinguishes a
    missing attribute from a present-but-not-callable one (e.g. a
    ``finalize`` data field shadowing the method), which matters when a
    user registers a structure that predates the engine.
    """
    missing = []
    not_callable = []
    for method in ("process_batch", "finalize"):
        attribute = getattr(processor, method, _MISSING)
        if attribute is _MISSING:
            missing.append(method)
        elif not callable(attribute):
            not_callable.append(
                f"{method} (a non-callable {type(attribute).__name__})"
            )
    if missing or not_callable:
        problems = []
        if missing:
            problems.append(f"missing {', '.join(missing)}")
        if not_callable:
            problems.append(f"has {', '.join(not_callable)}")
        raise TypeError(
            f"{name} ({type(processor).__name__}) does not conform to "
            f"StreamProcessor: {'; '.join(problems)}"
        )
    return processor


def shard_routing_of(processor: Any, name: str = "processor") -> ShardRouting:
    """The processor's validated ``shard_routing`` metadata."""
    routing = getattr(processor, "shard_routing", _MISSING)
    if routing is _MISSING:
        raise TypeError(
            f"{name} ({type(processor).__name__}) declares no shard_routing; "
            f"mergeable processors must set it to SHARD_ANY, SHARD_BY_VERTEX "
            f"or (SHARD_BY_WINDOW, window)"
        )
    if routing in (SHARD_ANY, SHARD_BY_VERTEX):
        return routing
    if (
        isinstance(routing, tuple)
        and len(routing) == 2
        and routing[0] == SHARD_BY_WINDOW
        and isinstance(routing[1], int)
        and routing[1] >= 1
    ):
        return routing
    raise TypeError(
        f"{name} ({type(processor).__name__}) has invalid shard_routing "
        f"{routing!r}"
    )


def ensure_mergeable(processor: Any, name: str = "processor") -> Any:
    """Validate the full mergeable-summary surface (protocol + merge layer)."""
    ensure_stream_processor(processor, name)
    missing = [
        method
        for method in ("merge", "split")
        if not callable(getattr(processor, method, None))
    ]
    if missing:
        raise TypeError(
            f"{name} ({type(processor).__name__}) is not mergeable: "
            f"missing {', '.join(missing)}"
        )
    shard_routing_of(processor, name)
    return processor


def combined_routing(routings: List[ShardRouting]) -> ShardRouting:
    """The single stream partition satisfying every processor's routing.

    ``SHARD_ANY`` is compatible with everything; vertex routing and
    window routing (or two different window sizes) cannot be satisfied
    by one partition, so mixing them raises :class:`ValueError`.
    """
    resolved: ShardRouting = SHARD_ANY
    for routing in routings:
        if routing == SHARD_ANY or routing == resolved:
            continue
        if resolved == SHARD_ANY:
            resolved = routing
            continue
        raise ValueError(
            f"incompatible shard routings in one run: {resolved!r} vs "
            f"{routing!r}; run these processors in separate ShardedRunners"
        )
    return resolved
