"""The :class:`StreamProcessor` protocol: what the engine drives.

Every streaming structure in this library — the paper's Algorithms 1–3,
the extension wrappers (Star Detection, top-k, tumbling windows), the
classical baselines and the sketch summaries — exposes the same two
methods:

* ``process_batch(a, b, sign=None)`` — consume one column chunk of
  updates (``a``/``b`` endpoint arrays plus an optional ``sign``
  column; ``None`` means all-insert).  For every structure this is
  equivalent to feeding the chunk item by item — bit-identical for the
  seeded randomized structures, guarantee-identical for the
  weight-collapsed counter summaries (see
  ``tests/integration/test_batch_equivalence.py``).
* ``finalize()`` — the end-of-stream hook.  Algorithms return their
  answer (a :class:`~repro.core.neighbourhood.Neighbourhood`, a list of
  them, or window results) or ``None``/``[]`` on failure instead of
  raising; query-style summaries (Count-Min, Misra–Gries, ...) return
  themselves so callers can keep querying.  ``finalize`` never raises
  :class:`~repro.core.neighbourhood.AlgorithmFailed` — a fan-out run
  over N processors should not abort because one guess failed.

Anything conforming can be registered with a
:class:`~repro.engine.runner.FanoutRunner` and fed from any chunk
source in a single pass.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class StreamProcessor(Protocol):
    """Structural type of every engine-drivable streaming structure."""

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Consume one column chunk of signed edge updates."""
        ...

    def finalize(self) -> Any:
        """End-of-stream hook; returns the structure's answer (or self)."""
        ...


def ensure_stream_processor(processor: Any, name: str = "processor") -> Any:
    """Validate protocol conformance with an actionable error message.

    ``isinstance(x, StreamProcessor)`` only checks attribute presence;
    this helper reports *which* method is missing, which matters when a
    user registers a structure that predates the engine.
    """
    missing = [
        method
        for method in ("process_batch", "finalize")
        if not callable(getattr(processor, method, None))
    ]
    if missing:
        raise TypeError(
            f"{name} ({type(processor).__name__}) does not conform to "
            f"StreamProcessor: missing {', '.join(missing)}"
        )
    return processor
