"""Window policies: engine-level windowing for any stream processor.

The tumbling-window wrapper used to be a bespoke loop hard-wired to
Algorithm 2 (``repro.core.windowed``).  This module extracts windowing
into a first-class subsystem: a :class:`WindowPolicy` decides how the
stream is cut into fixed-size *buckets* and what is retained when a
bucket closes, and the generic :class:`WindowedProcessor` composes any
:class:`~repro.engine.protocol.StreamProcessor` with any policy.  The
engine machinery carries over unchanged: chunks are split at bucket
boundaries exactly where the per-item path would split them, and the
wrapper implements the full mergeable-summary layer
(``split``/``merge``/``shard_routing``), so windowed runs shard across
a :class:`~repro.engine.sharded.ShardedRunner` with ``("window",
bucket)`` routing.

Three policies ship:

* :class:`TumblingPolicy` — consecutive non-overlapping windows; each
  bucket *is* a window, finalized and recorded when it closes.  The
  refactored :class:`~repro.core.windowed.TumblingWindowFEwW` is this
  policy over Algorithm 2, bit-identical to the pre-refactor wrapper.
* :class:`SlidingPolicy` — sliding window of span ``window`` via the
  smooth-histogram technique (Braverman & Ostrovsky): the stream is cut
  into buckets of ``max(1, ceil(window * bucket_ratio))`` updates, each
  bucket keeps its *live* summary, and the sliding answer merges the
  trailing buckets whose union covers the window.  The covered span
  ``L`` satisfies ``window <= L <= window + bucket`` — the ``(1 +
  bucket_ratio)`` bucket bound — at a memory cost of ``ceil(1 /
  bucket_ratio) + 1`` concurrent summaries instead of one per offset.
* :class:`DecayPolicy` — count-based decay: the newest ``keep`` buckets
  stay at full resolution, everything older is folded (via the inner
  processor's ``merge``) into one running *tail* summary.  Recent
  activity stays queryable per bucket; history decays into an
  aggregate — the decayed top-k shape monitoring workloads want.

Sliding and decay retention merge inner summaries, so those policies
require a mergeable inner processor; tumbling works with any
:class:`~repro.engine.protocol.StreamProcessor`.  Per the PR 3
taxonomy, sharded windowed runs are bit-identical for tumbling and
sliding (buckets are seeded by global index and wholly owned by one
shard) and bit-identical for decay over linear/exact inner structures
(tail folding is a commutative merge), guarantee-identical otherwise.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.protocol import (
    SHARD_BY_WINDOW,
    ensure_stream_processor,
    shard_routing_of,
)

#: Multiplier in the per-bucket seed derivation; kept identical to the
#: pre-refactor TumblingWindowFEwW so tumbling-as-a-policy reproduces
#: the old wrapper bit for bit.
_SEED_MULTIPLIER = 1_000_003


def derive_bucket_seed(master_seed: int, bucket_index: int) -> int:
    """Per-bucket seed, a function of the *global* bucket index.

    Seeding by global index is what lets a sharded execution reproduce
    single-core bucket results exactly: whichever shard owns a bucket
    derives the same seed a single-core run would.
    """
    return (master_seed * _SEED_MULTIPLIER + bucket_index) & 0xFFFFFFFF


def clone_summary(instance: Any) -> Any:
    """Duplicate a processor/summary for a merge fold or a probe.

    Prefers the structure-provided ``clone()`` fast path — a
    bit-identical state duplication without the generic deepcopy graph
    walk — and falls back to ``copy.deepcopy`` for structures that do
    not provide one.  Window policies clone bucket summaries on every
    suffix fold and mid-stream probe, so this is on the query hot path.
    """
    clone = getattr(instance, "clone", None)
    if callable(clone):
        return clone()
    return copy.deepcopy(instance)


class SuffixCacheList(list):
    """Retention list that carries a lazily built suffix-merge cache.

    ``suffix`` maps a start index to the left-fold merge of the buckets
    from that index to the end of the list (``(((b_i ∘ b_{i+1}) ∘ …) ∘
    b_last``).  The cache is pure derived data: it is dropped on pickle
    and deepcopy (``__reduce__``), and the owning policy clears it
    whenever the underlying bucket list changes (close/merge).
    """

    __slots__ = ("suffix",)

    def __init__(self, iterable=()) -> None:
        super().__init__(iterable)
        self.suffix: Dict[int, Any] = {}

    def __reduce__(self):
        return (type(self), (list(self),))


@dataclass(frozen=True)
class WindowRecord:
    """One closed bucket's recorded output (``value`` is whatever the
    inner processor's ``finalize`` returned; ``None`` means failure)."""

    window_index: int
    start_update: int
    end_update: int
    value: Any

    @property
    def found(self) -> bool:
        return self.value is not None


@dataclass
class Bucket:
    """A closed bucket holding its *live* inner summary.

    ``start``/``end`` are global update positions; ``index`` is the
    global bucket ordinal (also the seed-derivation key).
    """

    index: int
    start: int
    end: int
    instance: Any

    @property
    def count(self) -> int:
        return self.end - self.start


@dataclass
class SlidingWindowAnswer:
    """The smooth-histogram sliding answer at end of stream.

    ``processor`` is the merged inner summary over the covered span
    ``[start_update, end_update)`` and ``value`` its finalized output.
    The span satisfies ``window <= span <= window + bucket`` whenever
    the stream was at least that long (otherwise the whole stream is
    covered) — the ``(1 + bucket_ratio)`` approximation of the window.
    """

    window: int
    bucket: int
    start_update: int
    end_update: int
    n_buckets: int
    processor: Any
    value: Any

    @property
    def span(self) -> int:
        return self.end_update - self.start_update


@dataclass
class DecayAnswer:
    """Count-based-decay output: recent buckets plus the folded tail.

    ``recent`` holds the newest buckets' finalized records (oldest
    first); the tail aggregates every older update into one summary
    (``tail_processor`` is ``None`` when nothing has decayed yet).
    """

    recent: List[WindowRecord]
    tail_processor: Any
    tail_value: Any
    tail_start_update: int
    tail_end_update: int

    @property
    def has_tail(self) -> bool:
        return self.tail_processor is not None


# ----------------------------------------------------------------------
# Policies.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WindowPolicy:
    """Base class: how buckets are sized, retained, merged and reported.

    Policies are immutable configuration; all mutable retention state
    lives in per-wrapper *state* objects created by :meth:`new_state`,
    which is what lets one policy object be shared across shards.
    """

    #: Set by subclasses: whether retention merges inner summaries (and
    #: therefore requires a mergeable inner processor).
    requires_merge: ClassVar[bool] = False
    kind: ClassVar[str] = "abstract"

    @property
    def bucket(self) -> int:
        """Updates per bucket — the engine's boundary-splitting unit and
        the wrapper's ``("window", bucket)`` shard-routing block."""
        raise NotImplementedError

    def new_state(self) -> Any:
        raise NotImplementedError

    def is_empty(self, state: Any) -> bool:
        raise NotImplementedError

    def close(self, state: Any, bucket: Bucket, make_record: Callable) -> None:
        """Retain one closed bucket (called in global index order within
        a shard; across shards indices interleave and merge re-orders)."""
        raise NotImplementedError

    def merge(self, state: Any, other: Any) -> Any:
        """Combine two shards' retention states (indices are disjoint)."""
        raise NotImplementedError

    def result(self, state: Any, make_record: Callable) -> Any:
        """The policy's end-of-stream answer."""
        raise NotImplementedError

    def query(
        self, state: Any, partial: Optional[Bucket], make_record: Callable
    ) -> Any:
        """The policy's answer *mid-stream*, without closing anything.

        ``partial`` is the in-progress bucket (a deep copy of the live
        instance; ``None`` when it is empty).  The base behaviour —
        kept by tumbling, matching the pre-refactor "query the last
        completed window" semantics — ignores it; policies whose
        retention merges summaries (sliding, decay) override to
        include the partial bucket so the answer covers the stream up
        to the current update.  Must not mutate ``state``.
        """
        return self.result(state, make_record)


@dataclass(frozen=True)
class TumblingPolicy(WindowPolicy):
    """Consecutive non-overlapping windows of ``window`` updates."""

    window: int
    kind: ClassVar[str] = "tumbling"

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    @property
    def bucket(self) -> int:
        return self.window

    def new_state(self) -> List[WindowRecord]:
        return []

    def is_empty(self, state: List[WindowRecord]) -> bool:
        return not state

    def close(self, state, bucket: Bucket, make_record) -> None:
        # The instance is finalized and dropped at the boundary — space
        # stays one live instance plus the retained records.
        state.append(
            make_record(
                bucket.index, bucket.start, bucket.end,
                bucket.instance.finalize(),
            )
        )

    def merge(self, state, other):
        state.extend(other)
        state.sort(key=lambda record: record.window_index)
        return state

    def result(self, state, make_record) -> List[WindowRecord]:
        return list(state)


@dataclass(frozen=True)
class SlidingPolicy(WindowPolicy):
    """Sliding window of span ``window`` via smooth-histogram buckets.

    ``bucket_ratio`` trades accuracy for memory: buckets hold
    ``max(1, ceil(window * bucket_ratio))`` updates, the trailing
    ``ceil(window / bucket) + 1`` bucket summaries are retained, and the
    reported span overshoots the window by at most one bucket — i.e. the
    answer is an exact summary of the last ``L`` updates with
    ``window <= L <= (1 + bucket_ratio) * window``.
    """

    window: int
    bucket_ratio: float = 0.25
    kind: ClassVar[str] = "sliding"
    requires_merge: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.bucket_ratio <= 1.0:
            raise ValueError(
                f"bucket_ratio must be in (0, 1], got {self.bucket_ratio}"
            )

    @property
    def bucket(self) -> int:
        return max(1, math.ceil(self.window * self.bucket_ratio))

    @property
    def retained(self) -> int:
        """Concurrent bucket summaries kept per shard."""
        bucket = self.bucket
        return -(-self.window // bucket) + 1

    def new_state(self) -> SuffixCacheList:
        return SuffixCacheList()

    def is_empty(self, state: List[Bucket]) -> bool:
        return not state

    def close(self, state, bucket: Bucket, make_record) -> None:
        state.append(bucket)
        del state[: -self.retained]
        cache = getattr(state, "suffix", None)
        if cache is not None:
            cache.clear()

    def merge(self, state, other):
        state.extend(other)
        state.sort(key=lambda bucket: bucket.index)
        del state[: -self.retained]
        cache = getattr(state, "suffix", None)
        if cache is not None:
            cache.clear()
        return state

    def _suffix_fold(self, state, start: int) -> Any:
        """A caller-owned left-fold merge of ``state[start:]``.

        Buckets stay live for repeat queries: merge consumes its
        operands, so the fold runs over clones.  When the state carries
        a suffix cache (see :class:`SuffixCacheList`) the fold is built
        once per (start, bucket-list) pair and re-cloned on later
        probes, making repeated queries O(1) merges instead of
        O(retained) — the cache only empties when a bucket closes.
        """
        if start >= len(state):
            return None
        cache = getattr(state, "suffix", None)
        if cache is None:
            merged = clone_summary(state[start].instance)
            for bucket in state[start + 1 :]:
                merged = merged.merge(clone_summary(bucket.instance))
            return merged
        fold = cache.get(start)
        if fold is None:
            fold = clone_summary(state[start].instance)
            for bucket in state[start + 1 :]:
                fold = fold.merge(clone_summary(bucket.instance))
            cache[start] = fold
        return clone_summary(fold)

    def _answer(
        self, state, partial: Optional[Bucket]
    ) -> Optional[SlidingWindowAnswer]:
        """The smooth-histogram answer over the trailing buckets (plus
        the in-progress one on the query path): scan backwards until the
        covered span reaches the window, then fold that suffix."""
        n_state = len(state)
        if n_state == 0 and partial is None:
            return None
        covered = partial.count if partial is not None else 0
        start = n_state
        if covered < self.window:
            while start > 0:
                start -= 1
                covered += state[start].count
                if covered >= self.window:
                    break
        merged = self._suffix_fold(state, start)
        if merged is None:
            merged = clone_summary(partial.instance)
        elif partial is not None:
            merged = merged.merge(clone_summary(partial.instance))
        return SlidingWindowAnswer(
            window=self.window,
            bucket=self.bucket,
            start_update=state[start].start if start < n_state else partial.start,
            end_update=partial.end if partial is not None else state[-1].end,
            n_buckets=(n_state - start) + (1 if partial is not None else 0),
            processor=merged,
            value=merged.finalize(),
        )

    def result(self, state, make_record) -> Optional[SlidingWindowAnswer]:
        return self._answer(state, None)

    def query(self, state, partial, make_record):
        """Query-at-any-point: the smooth-histogram answer over the
        trailing buckets *plus* the in-progress one, so the covered
        span always ends at the current update (the end-of-stream
        ``result`` path sees the same union once ``flush`` closes the
        last bucket)."""
        return self._answer(state, partial)


@dataclass(frozen=True)
class DecayPolicy(WindowPolicy):
    """Count-based decay: ``keep`` recent buckets, older folded to a tail.

    The newest ``keep`` closed buckets of ``bucket_size`` updates each
    are retained at full resolution; every older bucket is merged — in
    global index order — into a single running tail summary.  Space is
    ``keep + 1`` summaries no matter how long the stream runs.
    """

    bucket_size: int
    keep: int = 4
    kind: ClassVar[str] = "decay"
    requires_merge: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if self.bucket_size < 1:
            raise ValueError(f"bucket_size must be >= 1, got {self.bucket_size}")
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")

    @property
    def bucket(self) -> int:
        return self.bucket_size

    def new_state(self) -> Dict[str, Any]:
        return {
            "recent": [],
            "tail": None,
            "tail_start": 0,
            "tail_end": 0,
            "_records": {},
        }

    def is_empty(self, state) -> bool:
        return not state["recent"] and state["tail"] is None

    def _fold(self, state, bucket: Bucket) -> None:
        state.pop("_tail_record", None)
        if state["tail"] is None:
            state["tail"] = bucket.instance
            state["tail_start"] = bucket.start
            state["tail_end"] = bucket.end
        else:
            state["tail"] = state["tail"].merge(bucket.instance)
            state["tail_start"] = min(state["tail_start"], bucket.start)
            state["tail_end"] = max(state["tail_end"], bucket.end)

    def _prune_records(self, state) -> None:
        """Drop memoized records whose bucket left ``recent`` (folded
        into the tail) or was only a transient in-progress probe."""
        cache = state.setdefault("_records", {})
        live = {(bucket.index, bucket.end) for bucket in state["recent"]}
        for key in [key for key in cache if key not in live]:
            del cache[key]

    def close(self, state, bucket: Bucket, make_record) -> None:
        state["recent"].append(bucket)
        while len(state["recent"]) > self.keep:
            self._fold(state, state["recent"].pop(0))
        self._prune_records(state)

    def merge(self, state, other):
        if other["tail"] is not None:
            self._fold(
                state,
                Bucket(-1, other["tail_start"], other["tail_end"], other["tail"]),
            )
        state["recent"].extend(other["recent"])
        state["recent"].sort(key=lambda bucket: bucket.index)
        while len(state["recent"]) > self.keep:
            self._fold(state, state["recent"].pop(0))
        self._prune_records(state)
        return state

    def query(self, state, partial, make_record):
        """Mid-stream answer: the in-progress bucket appears as the
        newest recent bucket (retention folding only happens when it
        actually closes, so ``recent`` may transiently show ``keep + 1``
        buckets; ``state`` itself is never touched)."""
        if partial is not None:
            state = dict(state, recent=state["recent"] + [partial])
        return self.result(state, make_record)

    def result(self, state, make_record) -> DecayAnswer:
        # Closed buckets receive no further updates, so their records
        # are memoized per (index, end) — a probe only re-finalizes the
        # in-progress bucket and whatever closed since the last probe.
        # The tail value is keyed by its covered span, which only moves
        # when a bucket folds.  (``query`` hands in a shallow dict copy
        # sharing these caches, so probes populate them too.)
        tail = state["tail"]
        cache = state.get("_records")
        recent = []
        for bucket in state["recent"]:
            record = None
            key = (bucket.index, bucket.end)
            if cache is not None:
                record = cache.get(key)
            if record is None:
                record = make_record(
                    bucket.index, bucket.start, bucket.end,
                    bucket.instance.finalize(),
                )
                if cache is not None:
                    cache[key] = record
            recent.append(record)
        if tail is None:
            tail_value = None
        else:
            span = (state["tail_start"], state["tail_end"])
            memo = state.get("_tail_record")
            if memo is not None and memo[0] == span:
                tail_value = memo[1]
            else:
                tail_value = tail.finalize()
                state["_tail_record"] = (span, tail_value)
        return DecayAnswer(
            recent=recent,
            tail_processor=tail,
            tail_value=tail_value,
            tail_start_update=state["tail_start"],
            tail_end_update=state["tail_end"],
        )


# ----------------------------------------------------------------------
# The generic wrapper.
# ----------------------------------------------------------------------


class WindowedProcessor:
    """Compose any :class:`StreamProcessor` with any :class:`WindowPolicy`.

    Args:
        factory: builds one inner processor per bucket; called as
            ``factory(seed)`` with the bucket's derived seed (a function
            of the master ``seed`` and the *global* bucket index, see
            :func:`derive_bucket_seed`).  Deterministic processors may
            ignore the argument.  For sharded (multi-process) execution
            the factory must be picklable — a module-level function,
            ``functools.partial`` of one, or a dataclass with
            ``__call__`` — not a lambda.
        policy: the :class:`WindowPolicy` deciding bucket size and
            retention.
        seed: master seed for per-bucket seed derivation.

    The wrapper is a full mergeable stream processor: ``process_batch``
    splits chunks at bucket boundaries exactly where per-item
    processing would, ``shard_routing`` is ``("window", bucket)``, and
    ``split``/``merge`` give each shard ownership of every
    ``n_shards``-th bucket (seeded by global index, so any shard
    reproduces exactly what a single-core run would compute for its
    buckets).

    Raises:
        TypeError: when the factory's product does not conform to the
            StreamProcessor protocol, or lacks ``merge`` under a policy
            whose retention merges summaries (sliding, decay).
        ValueError: when the inner processor's own ``shard_routing``
            conflicts with the wrapper's window routing (an inner
            ``("window", w)`` — windowed wrappers cannot be nested,
            their chunk splits and shard routes would disagree).
    """

    def __init__(
        self,
        factory: Callable[[int], Any],
        policy: WindowPolicy,
        *,
        seed: int | None = None,
    ) -> None:
        if not isinstance(policy, WindowPolicy):
            raise TypeError(
                f"policy must be a WindowPolicy, got {type(policy).__name__}"
            )
        self._factory = factory
        self.policy = policy
        self._seed = seed if seed is not None else 0
        #: global index of the bucket currently being filled, and how
        #: far to jump when it closes (a shard produced by :meth:`split`
        #: owns buckets ``offset, offset + stride, ...``).
        self._bucket_index = 0
        self._stride = 1
        self._updates = 0
        self._state = policy.new_state()
        self._current = self._fresh_instance()
        self._validate_inner(self._current)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    def _validate_inner(self, instance: Any) -> None:
        """Protocol + routing checks on the factory's product.

        A wrapper must not hide its inner processor's problems: protocol
        violations surface with the inner type named, and an inner
        window routing is a hard conflict — the wrapper already owns the
        ``("window", bucket)`` partition, and a nested window split
        would disagree with it on where chunks break.
        """
        ensure_stream_processor(
            instance, name=f"windowed inner processor ({self.policy.kind})"
        )
        if getattr(instance, "shard_routing", None) is not None:
            inner_routing = shard_routing_of(
                instance, name=f"windowed inner processor ({self.policy.kind})"
            )
            if isinstance(inner_routing, tuple) and inner_routing[0] == SHARD_BY_WINDOW:
                raise ValueError(
                    f"inner processor {type(instance).__name__} declares "
                    f"shard routing {inner_routing!r}, which conflicts with "
                    f"the WindowedProcessor's own ('window', "
                    f"{self.policy.bucket}) routing; windowed wrappers "
                    f"cannot be nested — configure a single policy instead"
                )
        if self.policy.requires_merge and not callable(
            getattr(instance, "merge", None)
        ):
            raise TypeError(
                f"{self.policy.kind} retention merges bucket summaries, but "
                f"inner processor {type(instance).__name__} has no merge(); "
                f"use a mergeable processor or the tumbling policy"
            )

    def _fresh_instance(self) -> Any:
        return self._factory(derive_bucket_seed(self._seed, self._bucket_index))

    def _make_record(
        self, index: int, start: int, end: int, value: Any
    ) -> Any:
        """Record constructor hook (subclasses may emit their own type)."""
        return WindowRecord(index, start, end, value)

    # ------------------------------------------------------------------
    # Stream processing (engine protocol).
    # ------------------------------------------------------------------

    @property
    def shard_routing(self) -> Tuple[str, int]:
        """Updates must be routed by global stream position in blocks of
        ``policy.bucket`` (see repro.engine.protocol)."""
        return (SHARD_BY_WINDOW, self.policy.bucket)

    def _close_bucket(self) -> None:
        start = self._bucket_index * self.policy.bucket
        self.policy.close(
            self._state,
            Bucket(self._bucket_index, start, start + self._updates, self._current),
            self._make_record,
        )
        self._bucket_index += self._stride
        self._updates = 0
        self._current = self._fresh_instance()

    def process_item(self, item) -> None:
        """Feed one update; closes the bucket at each boundary."""
        self._current.process_item(item)
        self._updates += 1
        if self._updates == self.policy.bucket:
            self._close_bucket()

    def process_batch(
        self,
        a: np.ndarray,
        b: np.ndarray,
        sign: Optional[np.ndarray] = None,
    ) -> None:
        """Engine entry point: split the chunk at bucket boundaries.

        Each maximal run of updates that falls inside one bucket is fed
        to the current inner instance as a single sub-batch, and buckets
        close exactly where the per-item path would close them — so the
        sequence of (instance, updates) pairs, and with it every
        bucket's retained state, is identical to item-at-a-time
        processing at any chunk size.  A shard produced by :meth:`split`
        must be fed exactly the updates of its own buckets, in order
        (what a ShardedRunner's window routing does).
        """
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        bucket = self.policy.bucket
        position, n_items = 0, len(a)
        while position < n_items:
            room = bucket - self._updates
            take = min(room, n_items - position)
            stop = position + take
            self._current.process_batch(
                a[position:stop],
                b[position:stop],
                None if sign is None else sign[position:stop],
            )
            self._updates += take
            position = stop
            if self._updates == bucket:
                self._close_bucket()

    def process(self, stream) -> "WindowedProcessor":
        """Consume a whole stream through the engine's chunk path."""
        from repro.engine.runner import as_chunks

        for a, b, sign in as_chunks(stream):
            self.process_batch(a, b, sign)
        return self

    def flush(self) -> None:
        """Close the in-progress bucket early (end of stream).

        A no-op when the last bucket closed exactly at a boundary —
        except on a completely untouched instance, where (matching the
        pre-refactor tumbling semantics) it records one empty bucket.
        """
        if self._updates > 0 or (
            self.policy.is_empty(self._state) and self._bucket_index == 0
        ):
            self._close_bucket()

    def finalize(self) -> Any:
        """Engine hook: flush the in-progress bucket and return the
        policy's answer (a record list, a sliding answer, or a decay
        answer)."""
        self.flush()
        return self.policy.result(self._state, self._make_record)

    def query(self) -> Any:
        """The policy's answer at the *current* stream position.

        Unlike :meth:`finalize`, nothing closes and no state mutates:
        the wrapper keeps streaming afterwards, so callers can probe as
        often as they like (monitoring dashboards, the Pipeline's
        ``probe_every`` hook).  The in-progress bucket is handed to the
        policy as an independent copy (the structure-provided ``clone()``
        fast path when available, else a deep copy) — for the
        smooth-histogram sliding policy that makes this exact
        query-at-any-point: the answer covers the trailing span ending
        at the update fed last.  Tumbling keeps its historical
        semantics (completed windows only).
        """
        partial = None
        if self._updates > 0:
            start = self._bucket_index * self.policy.bucket
            partial = Bucket(
                self._bucket_index,
                start,
                start + self._updates,
                clone_summary(self._current),
            )
        return self.policy.query(self._state, partial, self._make_record)

    # ------------------------------------------------------------------
    # Mergeable-summary layer.
    # ------------------------------------------------------------------

    def _check_merge_compatible(self, other: "WindowedProcessor") -> None:
        if type(other) is not type(self):
            raise ValueError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.policy != other.policy or self._seed != other._seed:
            raise ValueError(
                "cannot merge windowed wrappers with different policies or "
                "seeds; split both from the same instance"
            )

    def merge(self, other: "WindowedProcessor") -> "WindowedProcessor":
        """Interleave the retained buckets of two shards.

        Each operand's in-progress bucket (if it received updates) is
        flushed first; the merged state then holds every shard's
        retained buckets re-ordered by global index.  Buckets are
        seeded by global index and each is processed wholly by one
        shard, so tumbling/sliding retention is bit-identical to a
        single-core run over the concatenated stream (decay tail
        folding is bit-identical for commutative inner merges).
        """
        self._check_merge_compatible(other)
        if self._updates > 0:
            self._close_bucket()
        if other._updates > 0:
            other._close_bucket()
        self._state = self.policy.merge(self._state, other._state)
        return self

    def _spawn(self) -> "WindowedProcessor":
        """A fresh same-configuration wrapper (overridden by subclasses
        whose constructors take algorithm parameters)."""
        return WindowedProcessor(self._factory, self.policy, seed=self._seed)

    def split(self, n_shards: int) -> List["WindowedProcessor"]:
        """``n_shards`` shards, shard ``j`` owning buckets ``j, j + n, ...``.

        Each shard derives the same per-bucket seeds a single-core run
        would, so bucket contents are reproduced exactly no matter which
        shard computes them.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if (
            self._updates
            or not self.policy.is_empty(self._state)
            or self._bucket_index != 0
        ):
            raise RuntimeError("split() must be called before processing")
        shards = []
        for offset in range(n_shards):
            shard = self._spawn()
            shard._bucket_index = offset
            shard._stride = n_shards
            shard._current = shard._fresh_instance()
            shards.append(shard)
        return shards

    def __getstate__(self):
        """Pickle/deepcopy without query caches.

        Policy state dicts hold memoized records under ``_``-prefixed
        keys (and sliding lists drop their suffix cache via
        :class:`SuffixCacheList`); both are pure derived data that
        should not ride along in checkpoint payloads or shard IPC.
        """
        state = dict(self.__dict__)
        policy_state = state.get("_state")
        if isinstance(policy_state, dict):
            state["_state"] = {
                key: value
                for key, value in policy_state.items()
                if not key.startswith("_")
            }
        return state

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def space_words(self) -> int:
        """The live instance plus whatever the policy retains.

        Sliding/decay retain live bucket summaries (charged via their
        own ``space_words``); tumbling retains finalized records, for
        which — matching :class:`~repro.core.windowed.TumblingWindowFEwW`'s
        accounting — the most recent found answer is charged as one
        vertex word plus two words per witness edge.
        """
        total = _space_of(self._current)
        if isinstance(self._state, list):
            records = []
            for entry in self._state:
                if isinstance(entry, Bucket):
                    total += _space_of(entry.instance)
                else:
                    records.append(entry)
            for record in reversed(records):
                value = getattr(record, "value", None)
                if value is not None and hasattr(value, "size"):
                    total += 1 + 2 * value.size
                    break
        elif isinstance(self._state, dict):
            for bucket in self._state.get("recent", ()):
                total += _space_of(bucket.instance)
            if self._state.get("tail") is not None:
                total += _space_of(self._state["tail"])
        return total


def _space_of(processor: Any) -> int:
    space = getattr(processor, "space_words", None)
    return space() if callable(space) else 0
