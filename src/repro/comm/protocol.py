"""Message-size bookkeeping for one-way protocols.

The communication cost of a one-way protocol (§2) is the size of the
*longest* message any party sends.  In our executable reductions a
message is the streaming algorithm's memory state at the moment it is
handed to the next party, so its size in words is the algorithm's
``space_words()`` at that point.  :class:`MessageLog` records every
handoff so benchmarks can report the protocol's cost next to the
paper's lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.spacemeter import words_to_bits


@dataclass
class MessageLog:
    """Record of all messages sent during one protocol execution."""

    messages: List[Tuple[int, int, int]] = field(default_factory=list)

    def record(self, sender: int, receiver: int, words: int) -> None:
        """Log a message of ``words`` machine words from sender to receiver."""
        if words < 0:
            raise ValueError(f"negative message size {words}")
        self.messages.append((sender, receiver, words))

    def max_message_words(self) -> int:
        """The protocol's communication cost in words (0 if no messages)."""
        if not self.messages:
            return 0
        return max(words for _, _, words in self.messages)

    def max_message_bits(self) -> int:
        """The protocol's communication cost in bits."""
        return words_to_bits(self.max_message_words())

    def total_words(self) -> int:
        """Sum of all message sizes (total communication)."""
        return sum(words for _, _, words in self.messages)

    def __len__(self) -> int:
        return len(self.messages)
