"""Problem 3 (Set-Disjointness_p) and the Theorem 4.1 reduction.

``Set-Disjointness_p``: ``p`` parties each hold a subset of an
``n``-universe with the promise that the sets are either pairwise
disjoint or share exactly one common element; deciding which requires
some party to send ``Ω(n / p²)`` bits one-way [12].

Theorem 4.1 turns a FEwW streaming algorithm into a protocol: party
``i`` encodes each element ``u`` of its set as ``k`` edges from
A-vertex ``u`` to party-``i``'s private block of B-vertices, so the
common element (if any) reaches degree ``d = k p`` while all other
vertices stay at degree ``k``.  Running the algorithm through all
parties and checking whether the reported neighbourhood exceeds ``k``
decides the promise — hence the algorithm's memory must be
``Ω(n / p²)`` bits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

from repro.comm.protocol import MessageLog
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed
from repro.streams.edge import Edge, StreamItem


@dataclass(frozen=True)
class SetDisjointnessInstance:
    """One promise instance: party sets plus the ground truth."""

    universe_size: int
    sets: Tuple[FrozenSet[int], ...]
    intersecting: bool

    @property
    def n_parties(self) -> int:
        return len(self.sets)


def disjoint_instance(
    p: int, n: int, rng: random.Random, set_size: int | None = None
) -> SetDisjointnessInstance:
    """Pairwise-disjoint instance: a random partition slice per party."""
    if p < 2:
        raise ValueError(f"need p >= 2 parties, got {p}")
    size = set_size if set_size is not None else max(1, n // (2 * p))
    if p * size > n:
        raise ValueError(f"cannot fit {p} disjoint sets of size {size} in [{n}]")
    universe = list(range(n))
    rng.shuffle(universe)
    sets = tuple(
        frozenset(universe[i * size : (i + 1) * size]) for i in range(p)
    )
    return SetDisjointnessInstance(n, sets, intersecting=False)


def intersecting_instance(
    p: int, n: int, rng: random.Random, set_size: int | None = None
) -> SetDisjointnessInstance:
    """Uniquely-intersecting instance: disjoint slices plus one shared item."""
    base = disjoint_instance(p, n, rng, set_size)
    used: Set[int] = set().union(*base.sets)
    free = [u for u in range(n) if u not in used]
    if not free:
        raise ValueError("no free universe element for the shared item")
    shared = rng.choice(free)
    sets = tuple(s | {shared} for s in base.sets)
    return SetDisjointnessInstance(n, sets, intersecting=True)


def _party_edges(
    instance: SetDisjointnessInstance, party: int, k: int
) -> List[Edge]:
    """Theorem 4.1's encoding: element ``u`` -> ``k`` edges into the
    party's private B-block ``[party*k, (party+1)*k)``."""
    return [
        Edge(u, party * k + j)
        for u in sorted(instance.sets[party])
        for j in range(k)
    ]


def solve_set_disjointness_via_feww(
    instance: SetDisjointnessInstance,
    k: int = 4,
    seed: int | None = None,
    alpha: int | None = None,
) -> Tuple[bool, MessageLog]:
    """Run the Theorem 4.1 protocol with Algorithm 2 as the FEwW solver.

    Args:
        instance: the promise instance.
        k: per-party edge multiplicity; the FEwW threshold is ``d = k p``.
        seed: seed for the streaming algorithm.
        alpha: approximation factor; defaults to ``p - 1``, the largest
            integral factor for which a reported neighbourhood can still
            separate degree ``k p`` from degree ``k``
            (``ceil(k p / (p-1)) >= k + 1``).

    Returns:
        (answer, log): the protocol's verdict (True = intersecting) and
        the message log whose entries are the algorithm's memory size at
        each party handoff.
    """
    p = instance.n_parties
    if alpha is None:
        alpha = max(1, p - 1)
    d = k * p
    algorithm = InsertionOnlyFEwW(instance.universe_size, d, alpha, seed=seed)
    log = MessageLog()
    for party in range(p):
        for edge in _party_edges(instance, party, k):
            algorithm.process_item(StreamItem(edge))
        if party < p - 1:
            log.record(party, party + 1, algorithm.space_words())
    try:
        neighbourhood = algorithm.result()
        answer = neighbourhood.size >= k + 1
    except AlgorithmFailed:
        answer = False
    return answer, log
