"""Executable communication-complexity constructions.

The paper's lower bounds (Sections 4 and 6) are proved by reducing
communication problems to FEwW: if a small-space streaming algorithm
existed, the parties could ship its memory state around and solve a
problem whose communication complexity is known to be large.  This
package makes those reductions *runnable*: instance generators for each
communication problem, protocol drivers that really simulate a FEwW
algorithm across parties with message-size accounting, and the trivial
baselines the proofs compare against.

* :mod:`repro.comm.protocol` — message-size bookkeeping;
* :mod:`repro.comm.set_disjointness` — Problem 3 and Theorem 4.1;
* :mod:`repro.comm.bit_vector_learning` — Problem 4, Figures 1–2, and
  Theorem 4.8;
* :mod:`repro.comm.matrix_row_index` — Problem 5, Figure 3, Lemma 6.3
  and Theorem 6.4.
"""

from repro.comm.protocol import MessageLog
from repro.comm.set_disjointness import (
    SetDisjointnessInstance,
    disjoint_instance,
    intersecting_instance,
    solve_set_disjointness_via_feww,
)
from repro.comm.bit_vector_learning import (
    BitVectorLearningInstance,
    bvl_graph_stream,
    decode_witness,
    figure1_instance,
    solve_bvl_via_feww,
    trivial_bvl_protocol,
)
from repro.comm.matrix_row_index import (
    AmriInstance,
    AmriProtocolResult,
    figure3_instance,
    solve_amri_via_feww,
)
from repro.comm.figures import (
    render_figure1,
    render_figure2,
    render_figure3,
    render_figures,
)
from repro.comm.simulate import run_streaming_protocol, split_among_parties

__all__ = [
    "AmriInstance",
    "AmriProtocolResult",
    "BitVectorLearningInstance",
    "MessageLog",
    "SetDisjointnessInstance",
    "bvl_graph_stream",
    "decode_witness",
    "disjoint_instance",
    "figure1_instance",
    "figure3_instance",
    "intersecting_instance",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figures",
    "run_streaming_protocol",
    "solve_amri_via_feww",
    "split_among_parties",
    "solve_bvl_via_feww",
    "solve_set_disjointness_via_feww",
    "trivial_bvl_protocol",
]
