"""Problem 5 (Augmented-Matrix-Row-Index) and the Lemma 6.3 reduction.

``Augmented-Matrix-Row-Index(n, m, k)``: Alice holds a uniform binary
``n × m`` matrix ``X``; Bob holds a uniform row index ``J`` and, for
every other row, a uniform set of ``m - k`` known positions with their
values.  After one message from Alice, Bob must output the entire row
``X_J``.  Theorem 6.2: any protocol with error ε needs
``(n-1)(k-1-εm)`` bits.

Lemma 6.3 solves the problem with an insertion-deletion FEwW algorithm:
``Θ(α log n)`` parallel repetitions, each permuting every row's columns
by fresh public randomness, running the algorithm on the matrix-as-
bipartite-graph with Bob's known 1-entries as *deletions* (leaving
every row except ``J`` with at most ``d/α - 1`` ones), so the reported
vertex must be row ``J`` and each witness reveals a 1-position.  An
inverted-matrix copy of the same machinery recovers the 0-positions,
covering rows with fewer than ``d`` ones.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.comm.protocol import MessageLog
from repro.core.insertion_deletion import InsertionDeletionFEwW
from repro.core.neighbourhood import AlgorithmFailed
from repro.streams.edge import DELETE, INSERT, Edge, StreamItem


@dataclass(frozen=True)
class AmriInstance:
    """One Augmented-Matrix-Row-Index instance.

    Attributes:
        n: number of rows.
        m: number of columns.
        k: number of positions per row *unknown* to Bob (he knows m-k).
        matrix: Alice's matrix, ``matrix[i][j] ∈ {0,1}``.
        target_row: Bob's index ``J``.
        known_positions: for each row ``i != J``, the sorted tuple of the
            ``m - k`` column indices Bob knows (values are read from the
            matrix itself).
    """

    n: int
    m: int
    k: int
    matrix: Tuple[Tuple[int, ...], ...]
    target_row: int
    known_positions: Dict[int, Tuple[int, ...]]

    def known_value(self, row: int, column: int) -> int:
        """Bob's knowledge of position (row, column); must be known."""
        if row == self.target_row or column not in self.known_positions[row]:
            raise KeyError(f"Bob does not know position ({row}, {column})")
        return self.matrix[row][column]

    def target_row_bits(self) -> Tuple[int, ...]:
        """Ground truth: the row Bob must output."""
        return self.matrix[self.target_row]


def random_instance(n: int, m: int, k: int, rng: random.Random) -> AmriInstance:
    """Sample from the input distribution of Problem 5."""
    if not 1 <= k <= m:
        raise ValueError(f"need 1 <= k <= m, got k={k}, m={m}")
    matrix = tuple(
        tuple(rng.randrange(2) for _ in range(m)) for _ in range(n)
    )
    target = rng.randrange(n)
    known = {
        row: tuple(sorted(rng.sample(range(m), m - k)))
        for row in range(n)
        if row != target
    }
    return AmriInstance(n, m, k, matrix, target, known)


def figure3_instance() -> AmriInstance:
    """The paper's Figure 3 example: Augmented-Matrix-Row-Index(4, 6, 2).

    Alice's matrix is the 4x6 matrix shown in the figure; Bob must
    output row 3 (index 2 here, 0-indexed) and knows 6-2 = 4 positions
    in every other row.  The figure does not pin down *which* positions
    Bob knows, so we fix columns {0, 1, 2, 4}, which matches the four
    values printed per known row.
    """
    matrix = (
        (0, 1, 1, 1, 0, 0),
        (1, 1, 0, 0, 1, 0),
        (0, 0, 0, 0, 1, 0),
        (1, 0, 1, 0, 1, 0),
    )
    known = {row: (0, 1, 2, 4) for row in (0, 1, 3)}
    return AmriInstance(4, 6, 2, matrix, 2, known)


@dataclass(frozen=True)
class AmriProtocolResult:
    """Outcome of the Lemma 6.3 protocol."""

    recovered_row: Tuple[int, ...]
    correct: bool
    repetitions: int
    used_inverted: bool
    log: MessageLog


def _run_repetition(
    instance: AmriInstance,
    alpha: float,
    invert: bool,
    rep_seed: int,
    scale: float,
    log: MessageLog,
) -> Set[int]:
    """One parallel repetition: permute, stream, delete, report.

    Returns the set of (un-permuted) columns of the target row learned
    to hold value 1 (or value 0 when ``invert``).  Empty set when the
    FEwW run fails or reports a non-target row (cannot happen for a
    correct run, but we guard anyway).
    """
    n, m = instance.n, instance.m
    d = m // 2  # the reduction instantiates FEwW(n, d) with m = 2d
    rng = random.Random(rep_seed)
    permutations = [list(range(m)) for _ in range(n)]
    for permutation in permutations:
        rng.shuffle(permutation)

    def cell(row: int, column: int) -> int:
        value = instance.matrix[row][column]
        return 1 - value if invert else value

    algorithm = InsertionDeletionFEwW(
        n, m, d, alpha, seed=rng.getrandbits(64), scale=scale
    )
    # Alice: insert an edge for every 1-cell of the permuted matrix.
    for row in range(n):
        for column in range(m):
            if cell(row, column):
                algorithm.process_item(
                    StreamItem(Edge(row, permutations[row][column]), INSERT)
                )
    log.record(0, 1, algorithm.space_words())
    # Bob: delete the edges at his known 1-positions (rows != J).
    for row, columns in instance.known_positions.items():
        for column in columns:
            if cell(row, column):
                algorithm.process_item(
                    StreamItem(Edge(row, permutations[row][column]), DELETE)
                )
    try:
        neighbourhood = algorithm.result()
    except AlgorithmFailed:
        return set()
    if neighbourhood.vertex != instance.target_row:
        return set()
    inverse = {permutations[instance.target_row][c]: c for c in range(m)}
    return {inverse[b] for b in neighbourhood.witnesses}


def solve_amri_via_feww(
    instance: AmriInstance,
    alpha: float = 2.0,
    seed: int | None = None,
    repetition_constant: float = 10.0,
    scale: float = 1.0,
) -> AmriProtocolResult:
    """Run the full Lemma 6.3 protocol.

    Args:
        instance: must satisfy ``k = d/α - 1`` for the reduction's
            degree argument, i.e. ``instance.k <= m/(2α) - 1`` keeps
            every non-target row below the output threshold after Bob's
            deletions.  (Callers construct instances accordingly; the
            function raises otherwise.)
        alpha: approximation factor handed to Algorithm 3.
        seed: master seed for the public randomness.
        repetition_constant: the ``Θ(α log n)`` constant (default 10).
        scale: forwarded to Algorithm 3's sampler counts.

    Returns:
        the recovered row, whether it matches ground truth, repetition
        count, whether the inverted runs decided the output, and the
        message log (one entry per repetition per direction).
    """
    n, m = instance.n, instance.m
    d = m // 2
    threshold = math.ceil(d / alpha)
    if instance.k > threshold - 1:
        raise ValueError(
            f"reduction needs k <= d/alpha - 1 = {threshold - 1}, got k={instance.k}"
        )
    repetitions = max(1, math.ceil(repetition_constant * alpha * math.log(max(n, 2))))
    rng = random.Random(seed)
    log = MessageLog()

    ones: Set[int] = set()
    zeros: Set[int] = set()
    for _ in range(repetitions):
        rep_seed = rng.getrandbits(64)
        ones |= _run_repetition(instance, alpha, False, rep_seed, scale, log)
        zeros |= _run_repetition(instance, alpha, True, rep_seed + 1, scale, log)

    # Decision rule from the proof: if the non-inverted runs certified at
    # least d ones, row J has >= d ones and they were all learned w.h.p.;
    # otherwise the row has <= d-1 ones, the inverted instance satisfied
    # the promise, and all zeros were learned instead.
    if len(ones) >= d:
        recovered = tuple(1 if c in ones else 0 for c in range(m))
        used_inverted = False
    else:
        recovered = tuple(0 if c in zeros else 1 for c in range(m))
        used_inverted = True
    correct = recovered == instance.target_row_bits()
    return AmriProtocolResult(recovered, correct, repetitions, used_inverted, log)
