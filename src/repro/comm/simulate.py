"""Generic driver: run a streaming algorithm as a one-way protocol.

Every lower-bound reduction in the paper has the same skeleton: split
the input among ``p`` parties, let party 1 run the streaming algorithm
on its share, hand the memory state to party 2, and so on (§2's one-way
model).  This module provides that skeleton generically, so tests and
benchmarks can measure any algorithm's "communication footprint" —
the size of its memory state at each handoff — on any workload.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.comm.protocol import MessageLog
from repro.streams.stream import EdgeStream

SPLIT_MODES = ("contiguous", "round-robin")


def split_among_parties(
    stream: EdgeStream, p: int, mode: str = "contiguous"
) -> List[EdgeStream]:
    """Partition a stream's updates among ``p`` parties, order preserved.

    Args:
        stream: the full update sequence.
        p: number of parties (>= 1).
        mode: ``"contiguous"`` gives party i the i-th block of updates;
            ``"round-robin"`` deals updates out cyclically (update j
            goes to party j mod p).

    The concatenation of the returned streams in party order replays
    the original update sequence exactly in ``contiguous`` mode; in
    ``round-robin`` mode the global order is permuted, which is only
    valid for order-insensitive inputs (e.g. insertion-only streams
    define the same final graph either way, but the *validity* of a
    turnstile stream can break — callers get validation errors in that
    case rather than silent corruption).
    """
    if p < 1:
        raise ValueError(f"need at least one party, got {p}")
    if mode not in SPLIT_MODES:
        raise ValueError(f"mode must be one of {SPLIT_MODES}, got {mode!r}")
    items = list(stream)
    if mode == "contiguous":
        block = (len(items) + p - 1) // p if items else 0
        shares = [items[i * block : (i + 1) * block] for i in range(p)]
    else:
        shares = [items[i::p] for i in range(p)]
    return [
        EdgeStream(share, stream.n, stream.m, validate=False)
        for share in shares
    ]


def run_streaming_protocol(
    algorithm, party_streams: Sequence[EdgeStream]
) -> Tuple[object, MessageLog]:
    """Drive ``algorithm`` across parties, logging each handoff's size.

    Args:
        algorithm: any object with ``process_item`` and ``space_words``.
        party_streams: each party's share, in speaking order.

    Returns:
        the algorithm (having seen the whole input) and the message log
        with one entry per handoff (``p - 1`` total).
    """
    log = MessageLog()
    last = len(party_streams) - 1
    for party, share in enumerate(party_streams):
        for item in share:
            algorithm.process_item(item)
        if party < last:
            log.record(party, party + 1, algorithm.space_words())
    return algorithm, log
