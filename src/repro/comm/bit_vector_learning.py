"""Problem 4 (Bit-Vector-Learning) and the Theorem 4.8 reduction.

``Bit-Vector-Learning(p, n, k)``: nested index sets
``[n] = X_1 ⊇ X_2 ⊇ ... ⊇ X_p`` with ``|X_i| = n^{1-(i-1)/(p-1)}``;
party ``i`` holds a fresh uniform ``k``-bit string ``Y^j_i`` for every
``j ∈ X_i``; ``Z_j`` concatenates ``Y^j_1 ∘ Y^j_2 ∘ ...`` over the
parties whose set contains ``j``.  The last party must output some
index ``I`` together with at least ``1.01 k`` bits of ``Z_I``.

A trivial zero-communication protocol outputs exactly ``k`` bits (the
last party's own ``Y^I_p``); Theorem 4.7 shows that crossing to
``1.01 k`` bits forces a message of ``Ω(k n^{1/(p-1)} / p)`` bits, and
Theorem 4.8 transfers that to FEwW via the Figure-2 graph encoding:
party ``i`` encodes bit ``j`` of ``Y^ℓ_i`` as an edge from A-vertex
``ℓ`` to B-vertex ``2k·i + 2·j + bit`` — the B-vertex *parity*
carries the bit, so every witness of the reported vertex reveals one
bit of ``Z_I``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.comm.protocol import MessageLog
from repro.core.insertion_only import InsertionOnlyFEwW
from repro.core.neighbourhood import AlgorithmFailed
from repro.streams.edge import Edge, StreamItem
from repro.streams.stream import EdgeStream


@dataclass(frozen=True)
class BitVectorLearningInstance:
    """An instance: nested index sets and per-party bit strings.

    Attributes:
        p: number of parties.
        n: size of the first index set ``X_1 = [n]`` (0-indexed here).
        k: bits per string.
        index_sets: ``index_sets[i]`` is party ``i``'s sorted ``X_{i+1}``.
        strings: ``strings[i][j]`` is ``Y^j_i`` as a bit tuple, present
            exactly when ``j ∈ X_{i+1}``.
    """

    p: int
    n: int
    k: int
    index_sets: Tuple[Tuple[int, ...], ...]
    strings: Tuple[Dict[int, Tuple[int, ...]], ...]

    def z_string(self, j: int) -> Tuple[int, ...]:
        """The concatenated string ``Z_j`` over parties containing ``j``."""
        bits: List[int] = []
        for party in range(self.p):
            if j in self.strings[party]:
                bits.extend(self.strings[party][j])
        return tuple(bits)

    def z_bit(self, j: int, party: int, position: int) -> int:
        """Bit ``position`` of ``Y^j_party`` (ground truth for verification)."""
        return self.strings[party][j][position]


def random_instance(
    p: int, n: int, k: int, rng: random.Random
) -> BitVectorLearningInstance:
    """Sample from the input distribution of Problem 4.

    Requires ``n^{1/(p-1)}`` integral (the paper's convenience
    restriction for Baranyai's theorem): ``n`` must be a perfect
    ``(p-1)``-th power.
    """
    if p < 2:
        raise ValueError(f"need p >= 2, got {p}")
    root = round(n ** (1.0 / (p - 1)))
    if root ** (p - 1) != n:
        raise ValueError(
            f"n={n} must be a perfect (p-1)={p - 1} power (paper's restriction)"
        )
    index_sets: List[Tuple[int, ...]] = [tuple(range(n))]
    for i in range(2, p + 1):
        target = round(n ** (1.0 - (i - 1) / (p - 1)))
        subset = tuple(sorted(rng.sample(index_sets[-1], target)))
        index_sets.append(subset)
    strings: List[Dict[int, Tuple[int, ...]]] = []
    for party in range(p):
        strings.append(
            {
                j: tuple(rng.randrange(2) for _ in range(k))
                for j in index_sets[party]
            }
        )
    return BitVectorLearningInstance(
        p, n, k, tuple(index_sets), tuple(strings)
    )


def figure1_instance() -> BitVectorLearningInstance:
    """The exact example of the paper's Figure 1 (p=3, n=4, k=5).

    Alice holds X_1 = {1,2,3,4} (0-indexed {0,1,2,3}) with strings
    10010, 01000, 01011, 01111; Bob holds X_2 = {1,4} with 11011 and
    01010; Charlie holds X_3 = {4} with 00011.  The concatenations are
    Z_1 = 1001011011, Z_2 = 01000, Z_3 = 01011, Z_4 = 011110101000011.
    """

    def bits(text: str) -> Tuple[int, ...]:
        return tuple(int(ch) for ch in text)

    index_sets = ((0, 1, 2, 3), (0, 3), (3,))
    strings = (
        {0: bits("10010"), 1: bits("01000"), 2: bits("01011"), 3: bits("01111")},
        {0: bits("11011"), 3: bits("01010")},
        {3: bits("00011")},
    )
    return BitVectorLearningInstance(3, 4, 5, index_sets, strings)


# ----------------------------------------------------------------------
# Figure 2: the graph encoding.
# ----------------------------------------------------------------------


def encode_bit(party: int, position: int, bit: int, k: int) -> int:
    """B-vertex encoding one bit: ``2k·party + 2·position + bit``."""
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit}")
    return 2 * k * party + 2 * position + bit


def decode_witness(b: int, k: int) -> Tuple[int, int, int]:
    """Inverse of :func:`encode_bit`: returns (party, position, bit)."""
    party, rest = divmod(b, 2 * k)
    position, bit = divmod(rest, 2)
    return party, position, bit


def party_edges(instance: BitVectorLearningInstance, party: int) -> List[Edge]:
    """Party ``i``'s edge set ``E_i`` from the proof of Theorem 4.8."""
    edges = []
    for ell in instance.index_sets[party]:
        for position, bit in enumerate(instance.strings[party][ell]):
            edges.append(Edge(ell, encode_bit(party, position, bit, instance.k)))
    return edges


def bvl_graph_stream(instance: BitVectorLearningInstance) -> EdgeStream:
    """The full Figure-2 graph as one insertion-only stream (party order)."""
    items = [
        StreamItem(edge)
        for party in range(instance.p)
        for edge in party_edges(instance, party)
    ]
    return EdgeStream(items, instance.n, 2 * instance.k * instance.p)


@dataclass(frozen=True)
class BvlProtocolResult:
    """Outcome of a Bit-Vector-Learning protocol run."""

    index: int
    learned_bits: Tuple[Tuple[int, int, int], ...]  # (party, position, bit)
    correct: bool
    log: MessageLog

    @property
    def n_bits(self) -> int:
        return len(self.learned_bits)


def solve_bvl_via_feww(
    instance: BitVectorLearningInstance,
    seed: int | None = None,
    alpha: int | None = None,
) -> BvlProtocolResult:
    """Run the Theorem 4.8 protocol with Algorithm 2 as the solver.

    The FEwW threshold is ``d = Δ = k p`` (the element of ``X_p`` has
    one edge per bit per party).  With ``alpha`` defaulting to
    ``floor(p / 1.01)``, a successful run returns at least
    ``ceil(k p / alpha) >= 1.01 k`` witnesses, each decoding to one bit
    of ``Z_I``.

    Returns:
        the reported index, the decoded (party, position, bit) triples,
        whether *all* decoded bits match the instance (protocol
        correctness), and the message log.
    """
    p, k = instance.p, instance.k
    if alpha is None:
        alpha = max(1, math.floor(p / 1.01))
    d = k * p
    algorithm = InsertionOnlyFEwW(instance.n, d, alpha, seed=seed)
    log = MessageLog()
    for party in range(p):
        for edge in party_edges(instance, party):
            algorithm.process_item(StreamItem(edge))
        if party < p - 1:
            log.record(party, party + 1, algorithm.space_words())
    try:
        neighbourhood = algorithm.result()
    except AlgorithmFailed:
        return BvlProtocolResult(-1, (), False, log)
    index = neighbourhood.vertex
    learned = tuple(
        (party, position, bit)
        for party, position, bit in sorted(
            decode_witness(b, k) for b in neighbourhood.witnesses
        )
    )
    correct = all(
        party < p
        and index in instance.strings[party]
        and instance.z_bit(index, party, position) == bit
        for party, position, bit in learned
    )
    return BvlProtocolResult(index, learned, correct, log)


def trivial_bvl_protocol(
    instance: BitVectorLearningInstance,
) -> Tuple[int, Tuple[int, ...]]:
    """The zero-communication baseline from Section 4.3.

    The last party outputs its single index ``I ∈ X_p`` together with
    its own ``k``-bit string ``Y^I_p`` — exactly ``k`` bits, never more.
    """
    last = instance.p - 1
    if not instance.index_sets[last]:
        raise ValueError("degenerate instance: X_p is empty")
    index = instance.index_sets[last][0]
    return index, instance.strings[last][index]
