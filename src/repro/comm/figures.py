"""Text renderings of the paper's three figures.

Used by both ``python -m repro figures`` and
``examples/lower_bound_reductions.py`` so documentation, CLI and tests
all show the same constructions.
"""

from __future__ import annotations

from repro.comm.bit_vector_learning import (
    bvl_graph_stream,
    figure1_instance,
    solve_bvl_via_feww,
    trivial_bvl_protocol,
)
from repro.comm.matrix_row_index import figure3_instance, solve_amri_via_feww

PARTY_NAMES = ("Alice", "Bob", "Charlie", "Dana", "Eve")


def render_figure1() -> str:
    """Figure 1: the Bit-Vector-Learning(3, 4, 5) example instance."""
    instance = figure1_instance()
    lines = ["Figure 1 — Bit-Vector-Learning(3, 4, 5)"]
    for party in range(instance.p):
        holdings = ", ".join(
            f"Y^{j + 1}_{party + 1}={''.join(map(str, bits))}"
            for j, bits in sorted(instance.strings[party].items())
        )
        members = ", ".join(str(j + 1) for j in instance.index_sets[party])
        lines.append(
            f"  {PARTY_NAMES[party]}: X_{party + 1}={{{members}}}  {holdings}"
        )
    for j in range(instance.n):
        lines.append(f"  Z_{j + 1} = {''.join(map(str, instance.z_string(j)))}")
    return "\n".join(lines)


def render_figure2(seed: int = 11) -> str:
    """Figure 2: the graph encoding, plus a protocol run over it."""
    instance = figure1_instance()
    stream = bvl_graph_stream(instance)
    deepest = instance.index_sets[-1][0]
    lines = [
        "Figure 2 — graph encoding (party blocks of 2k B-vertices; "
        "B-vertex parity = the bit)",
        f"  |A| = {stream.n}, |B| = {stream.m}, edges = {len(stream)}",
        f"  Delta = k*p = {instance.k * instance.p}, achieved by "
        f"a_{deepest + 1} (the element of X_p)",
    ]
    result = solve_bvl_via_feww(instance, seed=seed)
    lines.append(
        f"  FEwW protocol output: index {result.index + 1}, "
        f"{result.n_bits} bits learned, all correct: {result.correct}"
    )
    index, trivial_bits = trivial_bvl_protocol(instance)
    lines.append(
        f"  trivial zero-communication protocol: index {index + 1}, only "
        f"{len(trivial_bits)} bits (needs 1.01k = 6)"
    )
    return "\n".join(lines)


def render_figure3(seed: int = 12) -> str:
    """Figure 3: the AMRI(4, 6, 2) instance, plus a protocol run."""
    instance = figure3_instance()
    lines = ["Figure 3 — Augmented-Matrix-Row-Index(4, 6, 2)"]
    for row_index, row in enumerate(instance.matrix):
        marker = (
            "  <- row J (unknown to Bob)"
            if row_index == instance.target_row
            else ""
        )
        lines.append(f"  {''.join(map(str, row))}{marker}")
    result = solve_amri_via_feww(
        instance, alpha=1.0, seed=seed, repetition_constant=4, scale=0.3
    )
    lines.append(
        f"  Lemma 6.3 protocol recovers row J = "
        f"{''.join(map(str, result.recovered_row))} "
        f"(correct: {result.correct}, {result.repetitions} repetitions, "
        f"decided by the {'inverted' if result.used_inverted else 'direct'} "
        f"runs)"
    )
    return "\n".join(lines)


def render_figures() -> str:
    """All three figures, separated by blank lines."""
    return "\n\n".join([render_figure1(), render_figure2(), render_figure3()])
