"""Determinism lints: RNG must flow from a seed, never ambient state.

Checkpoint/resume bit-identity, sharded merge equivalence and the
per-shard decorrelation scheme all assume every random draw in
``src/repro`` is reproducible from an explicit seed (a seeded
:class:`random.Random`, a :class:`numpy.random.Generator` from
``default_rng(seed)``, or a :class:`numpy.random.SeedSequence` child).
These rules reject every ambient entropy source:

* ``determinism/global-random`` — module-global :mod:`random` calls
  (``random.shuffle``, ``random.randint``, ...) that draw from the
  hidden interpreter-wide state.
* ``determinism/legacy-np-random`` — legacy ``numpy.random.<fn>``
  global-state calls (``np.random.rand``, ``np.random.seed``, ...).
  Constructing seeded objects (``default_rng``, ``SeedSequence``,
  ``RandomState(seed)``, bit generators) is fine.
* ``determinism/unseeded-rng`` — ``random.Random()`` /
  ``default_rng()`` / ``SeedSequence()`` called with *no* arguments,
  which silently fall back to OS entropy.
* ``determinism/wall-clock`` — ``time.time()`` and friends: wall-clock
  reads make replayed runs diverge (monotonic/perf_counter timing for
  timeouts and benchmarks is allowed).
* ``determinism/os-entropy`` — ``os.urandom``, the :mod:`secrets`
  module, ``random.SystemRandom``.
* ``determinism/uuid`` — ``uuid.uuid1``/``uuid4`` (host state resp.
  OS entropy).

``DETERMINISM_ALLOWLIST`` exempts whole files (repo-relative posix
paths) that legitimately need ambient entropy; today it is empty —
prefer a line pragma with a reason so the exemption is visible at the
call site.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.source import ModuleSource

__all__ = ["DETERMINISM_ALLOWLIST", "check_determinism"]

#: Repo-relative posix paths exempt from every determinism rule.
DETERMINISM_ALLOWLIST: FrozenSet[str] = frozenset()

#: Module-global functions of :mod:`random` (state-carrying API).
_GLOBAL_RANDOM: FrozenSet[str] = frozenset(
    f"random.{name}"
    for name in (
        "seed", "getstate", "setstate", "random", "uniform", "triangular",
        "randint", "randrange", "randbytes", "getrandbits", "choice",
        "choices", "shuffle", "sample", "binomialvariate", "betavariate",
        "expovariate", "gammavariate", "gauss", "lognormvariate",
        "normalvariate", "vonmisesvariate", "paretovariate",
        "weibullvariate",
    )
)

#: numpy.random names that build explicit, seedable objects.
_NP_RANDOM_OK: FrozenSet[str] = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "RandomState", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    }
)

#: Zero-argument constructors that fall back to OS entropy.
_SEEDABLE_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
    }
)

_WALL_CLOCK: FrozenSet[str] = frozenset({"time.time", "time.time_ns"})

_DATETIME_NOW: FrozenSet[str] = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

_OS_ENTROPY: FrozenSet[str] = frozenset(
    {"os.urandom", "random.SystemRandom"}
)

_UUID: FrozenSet[str] = frozenset({"uuid.uuid1", "uuid.uuid4"})

_HINTS: Dict[str, str] = {
    "determinism/global-random": (
        "draw from a seeded random.Random(seed) instance (or one derived "
        "from a SeedSequence) instead of the interpreter-global state"
    ),
    "determinism/legacy-np-random": (
        "use numpy.random.default_rng(seed) / SeedSequence children "
        "instead of the legacy numpy.random global state"
    ),
    "determinism/unseeded-rng": (
        "pass an explicit seed (or a SeedSequence child); zero-argument "
        "constructors read OS entropy and break replay"
    ),
    "determinism/wall-clock": (
        "wall-clock reads diverge under checkpoint/resume; use "
        "time.monotonic()/perf_counter() for intervals, or thread a "
        "timestamp in from the caller"
    ),
    "determinism/os-entropy": (
        "OS entropy is unreplayable; derive randomness from the run seed"
    ),
    "determinism/uuid": (
        "uuid1/uuid4 depend on host state; derive ids from the run seed "
        "or a counter"
    ),
}


def _classify(canonical: str, node: ast.Call) -> Tuple[str, str]:
    """(rule, problem) for one canonical call name, or ``("", "")``."""
    if canonical in _SEEDABLE_CONSTRUCTORS and not node.args and not node.keywords:
        return (
            "determinism/unseeded-rng",
            f"{canonical}() called without a seed",
        )
    if canonical in _GLOBAL_RANDOM:
        return (
            "determinism/global-random",
            f"call to module-global {canonical}()",
        )
    if canonical.startswith("numpy.random."):
        tail = canonical[len("numpy.random."):]
        root = tail.split(".", 1)[0]
        if root not in _NP_RANDOM_OK:
            return (
                "determinism/legacy-np-random",
                f"legacy global-state call {canonical}()",
            )
    if canonical in _WALL_CLOCK or canonical in _DATETIME_NOW:
        return ("determinism/wall-clock", f"wall-clock read {canonical}()")
    if canonical in _OS_ENTROPY or canonical.startswith("secrets."):
        return ("determinism/os-entropy", f"OS entropy source {canonical}()")
    if canonical in _UUID:
        return ("determinism/uuid", f"host-state id {canonical}()")
    return ("", "")


def check_determinism(source: ModuleSource) -> List[Diagnostic]:
    """All determinism findings of one module (pre-suppression)."""
    if source.display_path in DETERMINISM_ALLOWLIST:
        return []
    findings: List[Diagnostic] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        canonical = source.resolve_call(node)
        if canonical is None:
            continue
        rule, problem = _classify(canonical, node)
        if rule:
            findings.append(
                Diagnostic(
                    rule=rule,
                    path=source.display_path,
                    line=node.lineno,
                    problem=problem,
                    hint=_HINTS[rule],
                )
            )
    return findings
