"""The diagnostics core shared by every analysis rule.

Every rule — static AST lints and the runtime contract auditor alike —
reports through one row shape (:class:`Diagnostic`: rule id, file:line,
problem, hint), the CoreDiag posture `validate_spec` already takes for
Pipeline specs: collect the *complete* minimal set of violations in one
pass and present them together, never crash on the first.

Suppression is pragma-based and every pragma must carry a reason::

    # repro: allow-scalar-loop decrement-all is order-dependent
    for item, witness in zip(a.tolist(), b.tolist()):
        ...

A pragma suppresses matching diagnostics on its own line; a pragma
trailing a statement covers that statement, and a pragma on a
comment-only line covers the first code line below the comment block
(the reason may continue over following comment lines).  The pragma
name is either the full rule id (``hotpath/scalar-loop``) or just the
part after the family slash (``scalar-loop``).  A pragma without a reason is itself an error
(``pragma/missing-reason``); a pragma that suppressed nothing is an
advisory (``pragma/unused``) so stale suppressions cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional

__all__ = [
    "Diagnostic",
    "Pragma",
    "PragmaIndex",
    "render_json",
    "render_text",
]

#: Rule id of the mandatory-reason pragma check.
RULE_PRAGMA_MISSING_REASON = "pragma/missing-reason"

#: Rule id of the stale-suppression pragma check.
RULE_PRAGMA_UNUSED = "pragma/unused"

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow-(?P<name>[A-Za-z0-9_/-]+)(?:\s+(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, what rule, what is wrong, how to fix it.

    ``advisory`` findings (stale pragmas, ...) do not fail a default
    ``repro analyze`` run but do fail ``--strict`` — the CI gate.
    """

    rule: str
    path: str
    line: int
    problem: str
    hint: str
    advisory: bool = False

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def sort_key(self) -> Any:
        return (self.path, self.line, self.rule, self.problem)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "problem": self.problem,
            "hint": self.hint,
            "advisory": self.advisory,
        }


@dataclass
class Pragma:
    """One ``# repro: allow-<name> <reason>`` comment.

    ``covers`` is the set of source lines the pragma suppresses: its
    own line, plus either the statement it trails or — when it sits in
    a comment block — the first code line below that block.
    """

    line: int
    name: str
    reason: str
    covers: FrozenSet[int] = frozenset()
    used: bool = False

    def matches(self, rule: str) -> bool:
        if self.name == rule:
            return True
        _, _, suffix = rule.partition("/")
        return bool(suffix) and self.name == suffix


def _covered_lines(line: int, source_lines: List[str]) -> FrozenSet[int]:
    """The lines a pragma at ``line`` (1-indexed) suppresses."""
    covered = {line}
    stripped = (
        source_lines[line - 1].strip() if line <= len(source_lines) else ""
    )
    if stripped and not stripped.startswith("#"):
        return frozenset(covered)  # trailing pragma: the statement line
    cursor = line + 1
    while cursor <= len(source_lines):
        text = source_lines[cursor - 1].strip()
        if text and not text.startswith("#"):
            covered.add(cursor)  # first code line below the comment block
            break
        cursor += 1
    return frozenset(covered)


class PragmaIndex:
    """All suppression pragmas of one source file, by covered line."""

    def __init__(self, pragmas: List[Pragma]) -> None:
        self._by_line: Dict[int, List[Pragma]] = {}
        self._all = list(pragmas)
        for pragma in pragmas:
            for covered in pragma.covers or {pragma.line}:
                self._by_line.setdefault(covered, []).append(pragma)

    @classmethod
    def from_source(cls, text: str) -> "PragmaIndex":
        pragmas: List[Pragma] = []
        source_lines = text.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return cls([])
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            pragmas.append(
                Pragma(
                    line=line,
                    name=match.group("name"),
                    reason=match.group("reason") or "",
                    covers=_covered_lines(line, source_lines),
                )
            )
        return cls(pragmas)

    def suppresses(self, rule: str, line: int) -> bool:
        """True (and mark the pragma used) when ``rule``@``line`` is
        covered by a matching pragma."""
        for pragma in self._by_line.get(line, ()):
            if pragma.matches(rule):
                pragma.used = True
                return True
        return False

    def hygiene_diagnostics(self, path: str) -> List[Diagnostic]:
        """Pragma problems: missing reasons (errors), unused (advisory)."""
        findings: List[Diagnostic] = []
        for pragma in self._all:
            if not pragma.reason:
                findings.append(
                    Diagnostic(
                        rule=RULE_PRAGMA_MISSING_REASON,
                        path=path,
                        line=pragma.line,
                        problem=(
                            f"pragma 'allow-{pragma.name}' has no reason"
                        ),
                        hint=(
                            "every suppression must say why: "
                            f"'# repro: allow-{pragma.name} <reason>'"
                        ),
                    )
                )
            if not pragma.used:
                findings.append(
                    Diagnostic(
                        rule=RULE_PRAGMA_UNUSED,
                        path=path,
                        line=pragma.line,
                        problem=(
                            f"pragma 'allow-{pragma.name}' suppressed "
                            f"nothing"
                        ),
                        hint="delete the stale pragma (or fix its name)",
                        advisory=True,
                    )
                )
        return findings


def render_text(diagnostics: List[Diagnostic]) -> str:
    """Human-readable report, one ``path:line: [rule] problem`` block
    per finding with an indented hint line."""
    if not diagnostics:
        return "repro analyze: no findings"
    lines: List[str] = []
    errors = 0
    for diagnostic in sorted(diagnostics, key=Diagnostic.sort_key):
        tag = "note" if diagnostic.advisory else "error"
        lines.append(
            f"{diagnostic.location}: {tag}: [{diagnostic.rule}] "
            f"{diagnostic.problem}"
        )
        lines.append(f"    hint: {diagnostic.hint}")
        errors += 0 if diagnostic.advisory else 1
    advisories = len(diagnostics) - errors
    lines.append(
        f"repro analyze: {errors} error(s), {advisories} advisory note(s)"
    )
    return "\n".join(lines)


def render_json(
    diagnostics: List[Diagnostic], files_scanned: Optional[int] = None
) -> Dict[str, Any]:
    """The machine-readable report (``repro analyze --json``)."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    errors = sum(1 for diagnostic in ordered if not diagnostic.advisory)
    report: Dict[str, Any] = {
        "version": 1,
        "diagnostics": [diagnostic.to_dict() for diagnostic in ordered],
        "summary": {
            "errors": errors,
            "advisories": len(ordered) - errors,
        },
    }
    if files_scanned is not None:
        report["summary"]["files_scanned"] = files_scanned
    return report
