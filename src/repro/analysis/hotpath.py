"""Hot-path shape lint: batch entry points must stay vectorized.

Every throughput win in this repo came from replacing per-item Python
loops with whole-chunk NumPy kernels, and every floor in
``FLOOR_UPDATES_PER_S`` assumes the batch entry points stay that way.
``hotpath/scalar-loop`` flags a ``for`` loop inside a
``process_batch`` / ``observe_batch`` / ``update_batch`` body whose
iterable references one of the method's own batch parameters — the
signature of per-item iteration over chunk columns (``zip(a.tolist(),
b.tolist())``, ``range(len(a))``, ``enumerate(deltas)``, ...).

Loops over *derived, collapsed* data are deliberately not flagged:
iterating the distinct keys of an ``np.unique`` netting pass, internal
rung/level/bank fan-out (``for run in self.runs``) and fixed-size limb
loops are all sub-linear in the chunk and are how the fused kernels
are written.

Order-dependent structures that genuinely cannot collapse a chunk
(Misra-Gries decrement-all, Bloom first-arrival admission) annotate
the loop::

    # repro: allow-scalar-loop decrement-all couples counters to arrivals
    for item, witness in zip(a.tolist(), b.tolist()):
        ...

The reason is mandatory — the pragma documents *why* the loop is
irreducible, so a future reader knows the floor gate (not this lint)
is the guard that matters there.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.source import ModuleSource

__all__ = ["HOT_BATCH_METHODS", "check_hotpath"]

#: The engine-driven batch entry points the rule watches.
HOT_BATCH_METHODS: FrozenSet[str] = frozenset(
    {"process_batch", "observe_batch", "update_batch"}
)


def _batch_parameters(method: ast.FunctionDef) -> Set[str]:
    args = method.args
    names = {
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    names.discard("self")
    return names


def _references(node: ast.AST, names: Set[str]) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in names
        for sub in ast.walk(node)
    )


def check_hotpath(source: ModuleSource) -> List[Diagnostic]:
    """All hot-path findings of one module (pre-suppression)."""
    findings: List[Diagnostic] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method in node.body:
            if (
                not isinstance(method, ast.FunctionDef)
                or method.name not in HOT_BATCH_METHODS
            ):
                continue
            params = _batch_parameters(method)
            if not params:
                continue
            for loop in ast.walk(method):
                if not isinstance(loop, ast.For):
                    continue
                if not _references(loop.iter, params):
                    continue
                findings.append(
                    Diagnostic(
                        rule="hotpath/scalar-loop",
                        path=source.display_path,
                        line=loop.lineno,
                        problem=(
                            f"per-item loop over batch parameter(s) in "
                            f"{node.name}.{method.name}"
                        ),
                        hint=(
                            "collapse the chunk with a vectorized kernel "
                            "(np.unique netting, scatter-add, boolean "
                            "masks); if the structure is genuinely "
                            "order-dependent, annotate the loop with "
                            "'# repro: allow-scalar-loop <reason>'"
                        ),
                    )
                )
    return findings
