"""Static invariant linter + contract auditor (``repro analyze``).

The engine's correctness contracts — seeded RNG everywhere
(checkpoint/resume and per-shard decorrelation), mergeable summaries
behind every registry entry (sharded execution), picklable
fork-crossing state (worker pipes, checkpoints), vectorized batch
entry points (the throughput floors) — are enforced at runtime by the
equivalence suites.  This package machine-checks them at lint time so
a refactor cannot silently violate what those suites assume:

* :mod:`repro.analysis.determinism` — no ambient entropy;
* :mod:`repro.analysis.forksafe` — fork/pickle-safe summaries, shm
  creation confined to ``engine/shm.py``;
* :mod:`repro.analysis.hotpath` — no per-item loops in batch paths;
* :mod:`repro.analysis.protocol` — registry metadata agrees with the
  classes it describes;
* :mod:`repro.analysis.audit` — the runtime cross-check (build,
  batch, pickle round-trip, split/merge smoke per registry entry).

Everything reports through :class:`~repro.analysis.diagnostics.
Diagnostic` rows (rule id, file:line, problem, hint) with mandatory-
reason pragma suppression; :func:`~repro.analysis.runner.analyze` is
the entry point the CLI and CI gate call.
"""

from repro.analysis.audit import AUDIT_DEFAULTS, AUDIT_PARAMS, audit_registry
from repro.analysis.determinism import (
    DETERMINISM_ALLOWLIST,
    check_determinism,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Pragma,
    PragmaIndex,
    render_json,
    render_text,
)
from repro.analysis.forksafe import check_forksafe
from repro.analysis.hotpath import HOT_BATCH_METHODS, check_hotpath
from repro.analysis.protocol import check_protocol
from repro.analysis.runner import (
    AnalysisReport,
    analyze,
    changed_files,
    iter_python_files,
)
from repro.analysis.source import ModuleSource

__all__ = [
    "AUDIT_DEFAULTS",
    "AUDIT_PARAMS",
    "AnalysisReport",
    "DETERMINISM_ALLOWLIST",
    "Diagnostic",
    "HOT_BATCH_METHODS",
    "ModuleSource",
    "Pragma",
    "PragmaIndex",
    "analyze",
    "audit_registry",
    "changed_files",
    "check_determinism",
    "check_forksafe",
    "check_hotpath",
    "check_protocol",
    "iter_python_files",
    "render_json",
    "render_text",
]
