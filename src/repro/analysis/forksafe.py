"""Pickle/fork-safety lints: summaries must survive the fork boundary.

:class:`~repro.engine.sharded.ShardedRunner` pickles shard summaries
through pipes, the checkpoint store pickles processor maps to disk, and
spec-driven runs rebuild processors in forked workers.  Anything a
summary object captures therefore has to pickle — and has to still
*mean* something in another process.  These rules guard the two ways
that silently breaks:

* unpicklable state — lambdas and locally-defined functions/classes
  stored on ``self`` (``forksafe/lambda-attribute``,
  ``forksafe/local-def-attribute``);
* process-bound state — open file handles, sockets, subprocesses,
  thread primitives stored on ``self``
  (``forksafe/resource-attribute``): even when such objects pickle,
  the descriptor or lock they wrap does not cross ``fork`` + pickle
  meaningfully.

The rules apply only to classes that actually cross the boundary:
anything exposing the engine surface (``process_batch``, or a
``split``/``merge`` pair).  Readers, runners and other driver-side
classes may hold handles and threads freely.

A fourth rule pins the shared-memory discipline the leak-freedom proof
in ``engine/shm.py`` depends on: every
``multiprocessing.shared_memory.SharedMemory`` segment is created (and
therefore unlinked) inside ``engine/shm.py`` alone
(``forksafe/shm-outside-engine``).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.source import ModuleSource

__all__ = ["check_forksafe"]

#: Method names marking a class as fork-crossing.
_ENGINE_SURFACE: FrozenSet[str] = frozenset(
    {"process_batch", "observe_batch", "update_batch"}
)

#: Canonical constructors whose instances are process-bound.
_RESOURCE_FACTORIES: FrozenSet[str] = frozenset(
    {
        "builtins.open",
        "io.open",
        "socket.socket",
        "subprocess.Popen",
        "threading.Thread",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "_thread.allocate_lock",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Queue",
        "multiprocessing.Pipe",
        "mmap.mmap",
    }
)

#: The one module allowed to create shared-memory segments.
_SHM_HOME = "repro/engine/shm.py"

_SHM_FACTORY = "multiprocessing.shared_memory.SharedMemory"


def _is_fork_crossing(node: ast.ClassDef) -> bool:
    """Class exposes the engine surface or the mergeable pair."""
    methods: Set[str] = {
        item.name
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    if methods & _ENGINE_SURFACE:
        return True
    return "split" in methods and "merge" in methods


def _self_attribute_target(assign: ast.Assign) -> Optional[str]:
    """Attribute name when the statement assigns ``self.<attr> = ...``."""
    for target in assign.targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
    return None


def _check_method(
    source: ModuleSource,
    class_name: str,
    method: ast.FunctionDef,
    findings: List[Diagnostic],
) -> None:
    local_defs: Set[str] = set()
    local_classes: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not method:
                local_defs.add(node.name)
        elif isinstance(node, ast.ClassDef):
            local_classes.add(node.name)
    for node in ast.walk(method):
        if not isinstance(node, ast.Assign):
            continue
        attr = _self_attribute_target(node)
        if attr is None:
            continue
        value = node.value
        where = f"{class_name}.{method.name} stores self.{attr}"
        if isinstance(value, ast.Lambda):
            findings.append(
                Diagnostic(
                    rule="forksafe/lambda-attribute",
                    path=source.display_path,
                    line=node.lineno,
                    problem=f"{where} = <lambda>; lambdas do not pickle",
                    hint=(
                        "use a module-level function or a frozen-dataclass "
                        "callable (cf. RegistryWindowFactory) so the "
                        "attribute pickles across the fork boundary"
                    ),
                )
            )
            continue
        referenced = value.func if isinstance(value, ast.Call) else value
        if isinstance(referenced, ast.Name):
            if referenced.id in local_defs or referenced.id in local_classes:
                kind = (
                    "class" if referenced.id in local_classes else "function"
                )
                findings.append(
                    Diagnostic(
                        rule="forksafe/local-def-attribute",
                        path=source.display_path,
                        line=node.lineno,
                        problem=(
                            f"{where}, built from locally-defined {kind} "
                            f"{referenced.id!r}; locals do not pickle"
                        ),
                        hint=(
                            "define the helper at module level so pickle "
                            "can import it by qualified name"
                        ),
                    )
                )
                continue
        if isinstance(value, ast.Call):
            canonical = source.resolve_call(value)
            if canonical in _RESOURCE_FACTORIES:
                findings.append(
                    Diagnostic(
                        rule="forksafe/resource-attribute",
                        path=source.display_path,
                        line=node.lineno,
                        problem=(
                            f"{where} = {canonical}(...); OS handles and "
                            f"thread primitives do not survive fork+pickle"
                        ),
                        hint=(
                            "open/create the resource where it is used "
                            "(or in the driver) instead of storing it on "
                            "a summary that crosses worker boundaries"
                        ),
                    )
                )


def check_forksafe(source: ModuleSource) -> List[Diagnostic]:
    """All fork-safety findings of one module (pre-suppression)."""
    findings: List[Diagnostic] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            canonical = source.resolve_call(node)
            if (
                canonical == _SHM_FACTORY
                and not source.display_path.endswith(_SHM_HOME)
            ):
                findings.append(
                    Diagnostic(
                        rule="forksafe/shm-outside-engine",
                        path=source.display_path,
                        line=node.lineno,
                        problem=(
                            "SharedMemory segment created outside "
                            "engine/shm.py"
                        ),
                        hint=(
                            "route segment creation through repro.engine."
                            "shm (ChunkPublisher/ChunkAttacher); its "
                            "unlink-in-finally discipline is what keeps "
                            "kill/raise paths leak-free"
                        ),
                    )
                )
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_fork_crossing(node):
            continue
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                _check_method(source, node.name, item, findings)
    return findings
