"""Parsed view of one source file: AST, pragmas, import aliases.

The lint rules match *canonical dotted names* (``numpy.random.rand``,
``random.shuffle``, ``multiprocessing.shared_memory.SharedMemory``)
rather than surface spellings, so ``import numpy as np``, ``from numpy
import random as npr`` and ``from random import shuffle`` all resolve
to the same canonical name before a rule ever sees them.  Resolution is
intentionally conservative: a name that is not traceable to an import
(a local variable, an attribute of an instance, a call result) resolves
to ``None`` and no name-based rule fires on it — a seeded
``rng.shuffle(...)`` bound method must never be confused with the
module-global ``random.shuffle(...)``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.diagnostics import PragmaIndex

__all__ = ["ModuleSource", "dotted_name"]

#: Bare builtins the fork-safety rules care about (``open`` captures an
#: OS file handle).
_BUILTIN_CANONICAL = {"open": "builtins.open"}


def _collect_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local binding -> canonical dotted prefix, from every import
    statement in the module (any nesting level)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    # ``import numpy.random`` binds the root ``numpy``.
                    root = item.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative import: never stdlib random/numpy
            for item in node.names:
                if item.name == "*":
                    continue
                bound = item.asname or item.name
                aliases[bound] = f"{node.module}.{item.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]``; None when the
    chain is not rooted at a plain name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


class ModuleSource:
    """One analyzed file: display path, text, AST, pragmas, aliases."""

    def __init__(self, path: Path, display_path: str, text: str) -> None:
        self.path = path
        self.display_path = display_path
        self.text = text
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        self.pragmas = PragmaIndex.from_source(text)
        self.aliases = _collect_aliases(self.tree)

    @classmethod
    def load(cls, path: Path, display_path: str) -> "ModuleSource":
        return cls(path, display_path, path.read_text())

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, or None.

        ``np.random.rand`` -> ``numpy.random.rand`` under ``import
        numpy as np``; a bare ``open`` resolves through the builtin
        table unless the module rebound the name.
        """
        parts = dotted_name(node)
        if parts is None:
            return None
        root, rest = parts[0], parts[1:]
        canonical_root = self.aliases.get(root)
        if canonical_root is None:
            if not rest and root in _BUILTIN_CANONICAL:
                return _BUILTIN_CANONICAL[root]
            return None
        return ".".join([canonical_root, *rest])

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        return self.resolve(node.func)
