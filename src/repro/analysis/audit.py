"""Import-time contract auditor: runtime truth behind the static view.

The static rules reason about source; this auditor imports the real
:data:`~repro.pipeline.registry.PROCESSORS` registry and *exercises*
every entry, so the static and dynamic views cannot drift.  Per entry:

* build at audit parameters (registry defaults plus
  :data:`AUDIT_DEFAULTS` for the required ones) —
  ``audit/unbuildable`` / ``audit/build-failed``;
* feed a tiny batch through ``process_batch`` — ``audit/batch-failed``;
* pickle round-trip the *loaded* instance and drive the clone through
  another batch + ``finalize`` (the exact path a sharded worker's
  summary takes through a pipe) — ``audit/pickle-roundtrip``;
* mergeable smoke: ``split(1)`` yields exactly one same-type summary
  that still ingests and finalizes (``audit/split-identity``), and a
  ``split(2)`` pair merges (``audit/merge-smoke``);
* metadata ↔ capability agreement: the *instance*'s validated
  ``shard_routing`` must match the registry's declared routing, and
  ``mergeable`` must match what
  :func:`~repro.engine.protocol.ensure_mergeable` accepts —
  ``audit/metadata-capability``.

Diagnostics anchor at the implementing class when one is resolvable,
otherwise at ``<registry>``.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.protocol import _class_location

__all__ = ["AUDIT_DEFAULTS", "AUDIT_PARAMS", "audit_registry"]

#: Name-based values for required parameters (small on purpose: the
#: audit exercises contracts, not accuracy).
AUDIT_DEFAULTS: Dict[str, Any] = {
    "n": 32,
    "m": 64,
    "d": 4,
    "k": 4,
    "count": 2,
    "width": 16,
    "rows": 3,
    "capacity": 128,
    "edges": 64,
    "epsilon": 0.25,
    "delta": 0.25,
    "fp_rate": 0.05,
    "n_vertices": 32,
    "seed": 0,
}

#: Per-entry overrides when the name-based table is not right.
AUDIT_PARAMS: Dict[str, Dict[str, Any]] = {}

#: The tiny audit batches (well inside every AUDIT_DEFAULTS domain).
_BATCH_A = np.array([0, 1, 2, 0], dtype=np.int64)
_BATCH_B = np.array([1, 2, 3, 4], dtype=np.int64)
_BATCH_A2 = np.array([3, 1], dtype=np.int64)
_BATCH_B2 = np.array([5, 2], dtype=np.int64)


def _audit_params(entry: Any) -> Tuple[Optional[Dict[str, Any]], List[str]]:
    """(params, missing-required-names) for one entry."""
    overrides = AUDIT_PARAMS.get(entry.name, {})
    params: Dict[str, Any] = {}
    missing: List[str] = []
    for param in entry.params:
        if param.name in overrides:
            params[param.name] = overrides[param.name]
        elif not param.required:
            continue  # let bind() fill the registry default
        elif param.name in AUDIT_DEFAULTS:
            params[param.name] = AUDIT_DEFAULTS[param.name]
        else:
            missing.append(param.name)
    if missing:
        return None, missing
    return params, []


def audit_registry(
    registry: Optional[Any] = None, root: Optional[Path] = None
) -> List[Diagnostic]:
    """Exercise every registry entry; return the complete finding set."""
    if registry is None:
        from repro.pipeline.registry import PROCESSORS

        registry = PROCESSORS
    from repro.engine.protocol import ensure_mergeable, shard_routing_of

    findings: List[Diagnostic] = []
    for entry in registry.entries():
        cls = entry.resolved_class
        if cls is not None:
            path, line = _class_location(cls, root)
        else:
            path, line = "<registry>", 0

        def report(rule: str, problem: str, hint: str) -> None:
            findings.append(
                Diagnostic(
                    rule=rule,
                    path=path,
                    line=line,
                    problem=f"processor {entry.name!r}: {problem}",
                    hint=hint,
                )
            )

        params, missing = _audit_params(entry)
        if params is None:
            report(
                "audit/unbuildable",
                f"no audit value for required parameter(s) {missing}",
                "add the parameter name to repro.analysis.audit."
                "AUDIT_DEFAULTS (or an AUDIT_PARAMS entry) so the "
                "contract auditor can instantiate the processor",
            )
            continue
        try:
            processor = entry.build(params)
        except Exception as error:  # noqa: BLE001 — report, don't crash
            report(
                "audit/build-failed",
                f"factory raised {type(error).__name__}: {error}",
                "the registry schema and the factory signature disagree",
            )
            continue
        try:
            processor.process_batch(_BATCH_A, _BATCH_B)
        except Exception as error:  # noqa: BLE001
            report(
                "audit/batch-failed",
                f"process_batch raised {type(error).__name__}: {error}",
                "every processor must ingest a plain int64 (a, b) chunk "
                "with sign=None",
            )
            continue
        try:
            clone = pickle.loads(pickle.dumps(processor))
            clone.process_batch(_BATCH_A2, _BATCH_B2)
            clone.finalize()
        except Exception as error:  # noqa: BLE001
            report(
                "audit/pickle-roundtrip",
                f"pickle round-trip failed with "
                f"{type(error).__name__}: {error}",
                "shard summaries and checkpoints travel by pickle; drop "
                "the unpicklable state (open handles, lambdas, locks) "
                "or add __getstate__/__setstate__",
            )

        capable = True
        try:
            fresh = entry.build(params)
            ensure_mergeable(fresh)
        except TypeError:
            capable = False
        except Exception as error:  # noqa: BLE001
            report(
                "audit/build-failed",
                f"second build raised {type(error).__name__}: {error}",
                "factories must be repeatable at fixed parameters",
            )
            continue
        if entry.mergeable != capable:
            report(
                "audit/metadata-capability",
                f"registered mergeable={entry.mergeable} but the instance "
                f"{'passes' if capable else 'fails'} ensure_mergeable()",
                "align the registry metadata with the runtime surface",
            )
        if capable:
            routing = shard_routing_of(entry.build(params))
            if entry.routing is not None and routing != entry.routing:
                report(
                    "audit/metadata-capability",
                    f"registered routing={entry.routing!r} but the "
                    f"instance reports shard_routing={routing!r}",
                    "the registry routing drives spec validation and "
                    "shard partitioning; it must match the instance",
                )
            try:
                parts = entry.build(params).split(1)
                if len(parts) != 1 or not isinstance(parts[0], type(fresh)):
                    report(
                        "audit/split-identity",
                        f"split(1) returned "
                        f"{[type(part).__name__ for part in parts]!r}",
                        "split(1) must yield exactly one shard instance "
                        "of the processor's own type",
                    )
                else:
                    parts[0].process_batch(_BATCH_A, _BATCH_B)
                    parts[0].finalize()
            except Exception as error:  # noqa: BLE001
                report(
                    "audit/split-identity",
                    f"split(1) smoke failed with "
                    f"{type(error).__name__}: {error}",
                    "a single-shard split must behave like the original "
                    "processor",
                )
            try:
                left, right = entry.build(params).split(2)
                merged = left.merge(right)
                merged.finalize()
            except Exception as error:  # noqa: BLE001
                report(
                    "audit/merge-smoke",
                    f"split(2)+merge failed with "
                    f"{type(error).__name__}: {error}",
                    "same-configuration shards must always merge; this is "
                    "the exact fold ShardedRunner performs",
                )
    return findings
