"""Protocol-conformance lints over the processor registry.

Every name in :data:`repro.pipeline.registry.PROCESSORS` promises the
engine a :class:`~repro.engine.protocol.StreamProcessor` — and, when
its registry metadata says ``mergeable``, the full mergeable-summary
surface (``split``/``merge``/``shard_routing``) that sharded execution
and sliding/decay windows fold over.  The runtime only discovers a
broken promise mid-run (``ensure_stream_processor`` raises inside a
worker); these checks surface the same contract at lint time, against
the *class* behind each registry entry:

* ``protocol/missing-method`` — the class lacks a callable
  ``process_batch`` or ``finalize``.
* ``protocol/metadata-mismatch`` — the registry metadata contradicts
  the class: ``mergeable=True`` without ``split``/``merge``/
  ``shard_routing``, ``mergeable=False`` on a class that implements
  the pair, or a declared ``routing`` that disagrees with the class's
  own ``shard_routing`` attribute.
* ``protocol/signature-arity`` — the methods exist but cannot be
  called the way the engine calls them (``process_batch(a, b, sign)``,
  ``finalize()``, ``split(n_shards)``, ``merge(other)``).

Diagnostics anchor at the class definition line of the implementing
file, so suppression pragmas (rare — prefer fixing the metadata) live
next to the class.  Entries whose factory is not a class cannot be
checked structurally and are left to the runtime auditor
(:mod:`repro.analysis.audit`), which instantiates every entry anyway.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic

__all__ = ["check_protocol"]

_MISSING = object()

#: method name -> number of required arguments after ``self``.
_REQUIRED_ARITY: Tuple[Tuple[str, int], ...] = (
    ("process_batch", 2),
    ("finalize", 0),
)

_MERGEABLE_ARITY: Tuple[Tuple[str, int], ...] = (
    ("split", 1),
    ("merge", 1),
)


def _class_location(cls: type, root: Optional[Path]) -> Tuple[str, int]:
    try:
        file = inspect.getsourcefile(cls)
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return f"<{cls.__name__}>", 0
    if file is None:
        return f"<{cls.__name__}>", 0
    path = Path(file)
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix(), line
        except ValueError:
            pass
    return path.as_posix(), line


def _required_arity_ok(cls: type, method: str, required: int) -> Optional[str]:
    """None when callable with the engine's calling convention, else a
    problem string."""
    function = inspect.getattr_static(cls, method, _MISSING)
    if function is _MISSING or not callable(function):
        return None  # presence is reported separately
    try:
        signature = inspect.signature(getattr(cls, method))
    except (ValueError, TypeError):
        return None
    parameters = [
        parameter
        for parameter in signature.parameters.values()
        if parameter.name != "self"
    ]
    if any(
        parameter.kind is inspect.Parameter.VAR_POSITIONAL
        for parameter in parameters
    ):
        return None
    positional = [
        parameter
        for parameter in parameters
        if parameter.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    ]
    required_count = sum(
        1
        for parameter in parameters
        if parameter.default is inspect.Parameter.empty
        and parameter.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    )
    if required_count > required:
        return (
            f"{method} requires {required_count} argument(s); the engine "
            f"passes {required}"
        )
    if len(positional) < required:
        return (
            f"{method} accepts only {len(positional)} positional "
            f"argument(s); the engine passes {required}"
        )
    return None


def _assigns_shard_routing(cls: type) -> bool:
    """True when some method of the class source assigns
    ``self.shard_routing`` (instance-level routing, e.g. chosen from a
    constructor parameter)."""
    try:
        tree = ast.parse(inspect.getsource(cls))
    except (OSError, TypeError, SyntaxError):
        return False
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "shard_routing"
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return True
    return False


def check_protocol(
    registry: Optional[Any] = None, root: Optional[Path] = None
) -> List[Diagnostic]:
    """Structural findings for every class-backed registry entry."""
    if registry is None:
        from repro.pipeline.registry import PROCESSORS

        registry = PROCESSORS
    findings: List[Diagnostic] = []
    for entry in registry.entries():
        cls = entry.resolved_class
        if cls is None:
            continue
        path, line = _class_location(cls, root)

        def report(rule: str, problem: str, hint: str) -> None:
            findings.append(
                Diagnostic(
                    rule=rule,
                    path=path,
                    line=line,
                    problem=f"processor {entry.name!r} ({cls.__name__}): "
                    f"{problem}",
                    hint=hint,
                )
            )

        missing = [
            method
            for method, _ in _REQUIRED_ARITY
            if not callable(inspect.getattr_static(cls, method, None))
        ]
        for method in missing:
            report(
                "protocol/missing-method",
                f"no callable {method}()",
                "every registered processor implements the StreamProcessor "
                "surface (engine/protocol.py): process_batch(a, b, sign) "
                "and finalize()",
            )
        for method, required in _REQUIRED_ARITY:
            problem = _required_arity_ok(cls, method, required)
            if problem is not None:
                report(
                    "protocol/signature-arity",
                    problem,
                    "match the engine calling convention: "
                    "process_batch(self, a, b, sign=None), finalize(self)",
                )

        has_split = callable(inspect.getattr_static(cls, "split", None))
        has_merge = callable(inspect.getattr_static(cls, "merge", None))
        routing_attr = inspect.getattr_static(cls, "shard_routing", _MISSING)
        has_routing = routing_attr is not _MISSING or _assigns_shard_routing(
            cls
        )
        if entry.mergeable:
            for name, present in (
                ("split", has_split),
                ("merge", has_merge),
                ("shard_routing", has_routing),
            ):
                if not present:
                    report(
                        "protocol/metadata-mismatch",
                        f"registered mergeable=True but the class defines "
                        f"no {name}",
                        "implement the mergeable-summary surface "
                        "(split/merge/shard_routing) or register the "
                        "entry with mergeable=False",
                    )
            for method, required in _MERGEABLE_ARITY:
                problem = _required_arity_ok(cls, method, required)
                if problem is not None:
                    report(
                        "protocol/signature-arity",
                        problem,
                        "match the mergeable-summary calling convention: "
                        "split(self, n_shards), merge(self, other)",
                    )
        elif has_split and has_merge:
            report(
                "protocol/metadata-mismatch",
                "registered mergeable=False but the class implements "
                "split and merge",
                "declare mergeable=True so sharded backends and "
                "sliding/decay windows can use the class",
            )
        if (
            entry.routing is not None
            and isinstance(routing_attr, str)
            and routing_attr != entry.routing
        ):
            report(
                "protocol/metadata-mismatch",
                f"registered routing={entry.routing!r} but the class "
                f"declares shard_routing={routing_attr!r}",
                "align the registry metadata with the class attribute; "
                "ShardedRunner partitions the stream by this value",
            )
    return findings
