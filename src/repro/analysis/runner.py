"""Drive the analyzer: discover files, run rules, apply suppression.

:func:`analyze` is the one entry point behind ``repro analyze``:

* static pass — every ``*.py`` under the requested paths goes through
  the three AST rule families (determinism, fork safety, hot-path
  shape) plus per-file pragma hygiene;
* registry pass — protocol-conformance checks over the live
  :data:`~repro.pipeline.registry.PROCESSORS` entries, and (unless
  disabled) the runtime contract auditor;
* suppression — a finding whose file carries a matching
  ``# repro: allow-…`` pragma (same line or the line above) is
  dropped; registry findings suppress through the pragma index of the
  *implementing* file when that file is part of the scan.

``--diff <rev>`` mode (:func:`changed_files`) restricts the static
pass to files changed since ``<rev>`` (committed or not), giving large
refactors fast incremental feedback; the registry passes are skipped
there because they are whole-registry properties, not per-file ones.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.determinism import check_determinism
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.forksafe import check_forksafe
from repro.analysis.hotpath import check_hotpath
from repro.analysis.protocol import check_protocol
from repro.analysis.source import ModuleSource

__all__ = ["AnalysisReport", "analyze", "changed_files", "iter_python_files"]

_STATIC_CHECKS = (check_determinism, check_forksafe, check_hotpath)


@dataclass
class AnalysisReport:
    """Everything one ``repro analyze`` run found."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.advisory]

    @property
    def advisories(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.advisory]

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 findings (advisories only fail under strict)."""
        if self.errors:
            return 1
        if strict and self.diagnostics:
            return 1
        return 0


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``*.py`` file under ``paths`` (files or directories)."""
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def changed_files(rev: str, repo_dir: Path) -> Set[Path]:
    """Absolute paths of files changed since ``rev`` (plus untracked)."""
    toplevel = Path(
        subprocess.run(
            ["git", "-C", str(repo_dir), "rev-parse", "--show-toplevel"],
            check=True,
            capture_output=True,
            text=True,
        ).stdout.strip()
    )
    changed = subprocess.run(
        ["git", "-C", str(repo_dir), "diff", "--name-only", rev, "--"],
        check=True,
        capture_output=True,
        text=True,
    ).stdout.splitlines()
    untracked = subprocess.run(
        [
            "git", "-C", str(repo_dir),
            "ls-files", "--others", "--exclude-standard",
        ],
        check=True,
        capture_output=True,
        text=True,
    ).stdout.splitlines()
    return {
        (toplevel / name).resolve()
        for name in (*changed, *untracked)
        if name
    }


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def analyze(
    paths: Sequence[Path],
    *,
    root: Optional[Path] = None,
    audit: bool = True,
    registry: Optional[Any] = None,
    diff_rev: Optional[str] = None,
) -> AnalysisReport:
    """Run the full analysis over ``paths``; see the module docstring."""
    report = AnalysisReport()
    files = iter_python_files(paths)
    if diff_rev is not None:
        repo_dir = root if root is not None else Path.cwd()
        changed = changed_files(diff_rev, repo_dir)
        files = [f for f in files if f.resolve() in changed]

    sources: Dict[Path, ModuleSource] = {}
    for file in files:
        display = _display_path(file, root)
        try:
            source = ModuleSource.load(file, display)
        except SyntaxError as error:
            report.diagnostics.append(
                Diagnostic(
                    rule="parse/syntax-error",
                    path=display,
                    line=error.lineno or 0,
                    problem=f"file does not parse: {error.msg}",
                    hint="fix the syntax error; no other rule ran here",
                )
            )
            continue
        sources[file.resolve()] = source
        report.files_scanned += 1
        for check in _STATIC_CHECKS:
            for diagnostic in check(source):
                if not source.pragmas.suppresses(
                    diagnostic.rule, diagnostic.line
                ):
                    report.diagnostics.append(diagnostic)

    if diff_rev is None:
        registry_findings = check_protocol(registry, root=root)
        if audit:
            from repro.analysis.audit import audit_registry

            registry_findings += audit_registry(registry, root=root)
        by_display = {
            source.display_path: source for source in sources.values()
        }
        for diagnostic in registry_findings:
            source_for = by_display.get(diagnostic.path)
            if source_for is not None and source_for.pragmas.suppresses(
                diagnostic.rule, diagnostic.line
            ):
                continue
            report.diagnostics.append(diagnostic)

    for source in sources.values():
        report.diagnostics.extend(
            source.pragmas.hygiene_diagnostics(source.display_path)
        )
    report.diagnostics.sort(key=Diagnostic.sort_key)
    return report
