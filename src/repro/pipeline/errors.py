"""Pipeline error taxonomy: every failure names its fix.

The pipeline subsystem diagnoses problems *eagerly* — at registry
lookup, spec deserialization, or :class:`~repro.pipeline.Pipeline`
construction — rather than mid-run, in the spirit of consistency-based
configuration diagnosis (CoreDiag, Felfernig et al.): an invalid spec
is reported as the set of conflicting assignments, each with the field
that must change, instead of as the first downstream crash it would
eventually cause.

All pipeline errors subclass :class:`PipelineError`; the registry and
spec layers additionally subclass :class:`ValueError` so existing
``except ValueError`` call sites keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


class PipelineError(Exception):
    """Base class of every pipeline-layer failure."""


class RegistryError(PipelineError, ValueError):
    """A registry lookup or parameter binding failed."""


class UnknownNameError(RegistryError):
    """An unregistered name was requested; carries close-match hints."""

    def __init__(
        self, message: str, name: str, suggestions: Sequence[str] = ()
    ) -> None:
        super().__init__(message)
        self.name = name
        self.suggestions = tuple(suggestions)


class ParamError(RegistryError):
    """A registry entry was given unknown, missing, or mistyped params."""


class SpecError(PipelineError, ValueError):
    """A spec cannot be built, serialized, or deserialized."""


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding: the spec field at fault, what conflicts,
    and (when known) what to change."""

    field: str
    problem: str
    hint: str = ""

    def __str__(self) -> str:
        text = f"{self.field}: {self.problem}"
        if self.hint:
            text += f" ({self.hint})"
        return text


class PipelineValidationError(SpecError):
    """A spec failed cross-field validation.

    Carries *every* diagnostic found, not just the first — a spec
    edited from the message should build on the next attempt.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        lines = "\n".join(f"  - {diagnostic}" for diagnostic in self.diagnostics)
        count = len(self.diagnostics)
        noun = "conflict" if count == 1 else "conflicts"
        super().__init__(f"invalid pipeline spec ({count} {noun}):\n{lines}")
